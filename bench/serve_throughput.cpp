// Serving throughput sweep: workers x max-batch-tokens over a fixed
// closed-loop workload, reporting aggregate tokens/s and latency
// percentiles per cell as machine-readable JSON (one object on stdout),
// plus the headline scaling number: aggregate throughput at 4 workers
// vs 1 worker on the same workload.
//
// The default mode is `paced`: each shard's outputs are computed by the
// hardware-exact kernel, then the worker blocks for the modeled device
// service time (--device-ns per token, default 10 us — a deliberately
// slow engine so device time dominates host compute). This isolates the
// quantity the runtime owns — how well N parallel engines are kept
// saturated — from the benchmark machine's core count. `kernel` mode
// measures raw host-side software throughput instead (scales with
// cores), `simulate` runs the full event-driven macro.
//
// The result is written as one JSON object to --out (default
// BENCH_serve.json) and echoed to stdout. The artifact records the
// machine (CPU model, logical cores) because worker scaling in kernel
// and simulate modes is meaningless without it — the CI container has a
// single CPU, so only paced mode shows >1x there.
//
// A second sweep measures registry-dispatch overhead: the same fixed
// (workers, batch) cell served single-model vs two-model interleaved
// (clients alternate between two identically-shaped registered models
// request by request). The multi_model.overhead_frac field is the
// fractional throughput cost of multi-model dispatch — the v2 API's
// acceptance gate is <= 2%.
//
// A third cell is the trace-overhead guard: when span tracing is
// compiled in (SSMA_TRACE=ON), the dispatch cell is re-run with the
// collector enabled vs disabled and the fractional throughput cost is
// recorded as telemetry.trace_overhead_frac — the observability
// acceptance gate is <= 3% enabled, and exactly 0 when compiled out.
// With --trace-out=PATH the bench also serves a 2-stage pipeline model
// under tracing and writes the Chrome trace-event JSON (load it at
// ui.perfetto.dev) so every artifact run leaves a sample span tree.
//
// A fourth cell (paced mode only) is the overload cell: the TCP front
// door driven through loopback NetClients at 2x the sustainable token
// rate by two tenants — "gold" (high priority, 0.7x capacity) and
// "free" (low priority, 1.3x capacity) — against a small admission
// queue. It records per-tenant offered/ok/shed counts and ok-latency
// percentiles. The SLO story it must show: gold keeps a bounded p99
// and is essentially never shed, free absorbs the overload as typed
// kQueueFull rejections, and every request gets exactly one ack.
// --overload-gate turns those properties into a hard exit code for CI.
//
// A fifth cell (kernel backend regardless of --mode) is the fused
// execution plan cell: a 3-stage chained dense stack registered as one
// pipeline model and served end-to-end, with the engine's fused
// in-register stage handoff (EngineOptions::fused_pipeline) on vs off.
// Alongside throughput it records the pipeline's accuracy — relative
// Frobenius error of the served (dequantized) outputs against the exact
// float chain relu(relu(x W0) W1) W2 — because a fusion that changed
// numerics would be a bug: both walks are asserted bit-exact against
// pipeline_reference_apply before timing. --fused-gate turns the
// committed fused-vs-unfused speedup into a hard >= 1.3x exit code.
//
// A sixth cell serves a whole trained CNN end-to-end: a MaddnessNetwork
// is registered via engine::register_network and every substituted
// conv's patch matmul is routed through the server (forward_served),
// reporting images/s next to the top-1 agreement with the exact float
// network — accuracy next to latency for a real multi-layer workload.
//
// A seventh cell is the shadow-rollout overhead guard: the dispatch
// cell re-run with a RolloutManager mirroring the serving traffic
// through an identically-trained staged bank on a spare engine. The
// hot path only pays the try-lock batch tap, so the committed budget
// is tight: shadow.overhead_frac must stay <= 5% (--shadow-gate turns
// that, plus zero drift on the identical bank, into an exit code).
//
// An eighth, gate-only check (--failover-gate) runs the distributed-HA
// pair once: a sync-acked leader with journal + checkpoints +
// ReplicationLog, a ReplicaApplier follower, a short load, then
// promotion — the gate passes iff promote() completes with a clean
// audit (no CRC mismatches, no replay failures) and the first
// post-promotion response is bit-exact against the fault-free
// reference. The full cadence x ack-mode sweep lives in
// bench/replication_failover.cpp; this is the cheap CI smoke.
//
//   build/bench/serve_throughput [--mode=paced|kernel|simulate]
//                                [--device-ns=N]
//                                [--requests=N] [--rows=N]
//                                [--out=BENCH_serve.json]
//                                [--trace-out=serve.trace.json]
//                                [--overload-gate] [--fused-gate]
//                                [--shadow-gate] [--failover-gate]
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_env.hpp"
#include "engine/execution_engine.hpp"
#include "engine/pipeline.hpp"
#include "maddness/amm.hpp"
#include "nn/dataset.hpp"
#include "nn/maddness_network.hpp"
#include "nn/network.hpp"
#include "nn/trainer.hpp"
#include "net/server.hpp"
#include "net/wire_protocol.hpp"
#include "serve/admission.hpp"
#include "serve/load_generator.hpp"
#include "serve/recovery/checkpoint.hpp"
#include "serve/recovery/journal.hpp"
#include "serve/replication/replica_applier.hpp"
#include "serve/replication/replication.hpp"
#include "serve/rollout/rollout.hpp"
#include "serve/server.hpp"
#include "telemetry/telemetry.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

using namespace ssma;

namespace {

struct Cell {
  int workers = 0;
  std::size_t max_batch = 0;
  serve::LoadReport load;
  serve::MetricsSnapshot metrics;
};

/// One tenant's side of the overload cell: everything it sent and
/// everything the wire acked back, plus ok-latency percentiles.
struct TenantRun {
  std::string tenant;
  double target_rps = 0.0;
  std::size_t sent = 0;
  std::size_t ok = 0;
  std::array<std::uint64_t, serve::kNumRejectReasons> rejects{};
  std::size_t other_status = 0;  ///< internal errors (should be 0)
  std::size_t acked = 0;         ///< responses received, any status
  double actual_rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;

  std::uint64_t total_rejects() const {
    std::uint64_t n = 0;
    for (const std::uint64_t r : rejects) n += r;
    return n;
  }
  std::string json() const {
    char buf[256];
    std::string s = "{\"tenant\":\"" + tenant + "\"";
    std::snprintf(buf, sizeof(buf),
                  ",\"target_rps\":%.1f,\"actual_rps\":%.1f,\"sent\":%zu,"
                  "\"acked\":%zu,\"ok\":%zu,\"internal_errors\":%zu",
                  target_rps, actual_rps, sent, acked, ok, other_status);
    s += buf;
    s += ",\"rejects\":{";
    for (std::size_t r = 0; r < serve::kNumRejectReasons; ++r) {
      if (r) s += ",";
      s += "\"";
      s += serve::reject_reason_name(static_cast<serve::RejectReason>(r));
      s += "\":" + std::to_string(rejects[r]);
    }
    std::snprintf(buf, sizeof(buf),
                  "},\"ok_p50_ms\":%.3f,\"ok_p99_ms\":%.3f}", p50_ms,
                  p99_ms);
    s += buf;
    return s;
  }
};

/// Open-loop tenant driver over one pipelined NetClient connection:
/// a paced sender thread plus a receiver thread that classifies every
/// ack by wire status. Latency is measured send()-to-ack per
/// correlation id, so it includes queueing — the quantity the SLO
/// bounds.
void drive_tenant(std::uint16_t port, const std::string& tenant,
                  std::uint8_t wire_priority, double rps, std::size_t n,
                  std::size_t rows,
                  const std::vector<std::uint8_t>& codes, TenantRun* out) {
  using SteadyClock = std::chrono::steady_clock;
  out->tenant = tenant;
  out->target_rps = rps;

  net::NetClient cli;
  cli.connect("127.0.0.1", port);
  // Release/acquire pairs on each slot order the timestamp write
  // (before send) with the receiver's read (after the ack round-trip).
  std::vector<std::atomic<std::int64_t>> sent_ns(n);
  std::vector<double> ok_lat;
  ok_lat.reserve(n);

  std::thread rx([&] {
    for (std::size_t i = 0; i < n; ++i) {
      net::RpcResponse resp;
      if (!cli.recv_response(&resp)) return;  // lost acks -> acked < sent
      const std::int64_t now_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              SteadyClock::now().time_since_epoch())
              .count();
      out->acked++;
      if (resp.status == net::kStatusOk) {
        out->ok++;
        const std::int64_t t0 =
            sent_ns[resp.correlation_id].load(std::memory_order_acquire);
        ok_lat.push_back(static_cast<double>(now_ns - t0) / 1e6);
      } else if (resp.status >= 1 &&
                 resp.status <= serve::kNumRejectReasons) {
        out->rejects[resp.status - 1]++;
      } else {
        out->other_status++;
      }
    }
  });

  const auto start = SteadyClock::now();
  const auto interval = std::chrono::nanoseconds(
      static_cast<std::int64_t>(1e9 / rps));
  for (std::size_t i = 0; i < n; ++i) {
    std::this_thread::sleep_until(
        start + interval * static_cast<std::int64_t>(i));
    net::RpcRequest req;
    req.correlation_id = i;
    req.tenant = tenant;
    req.model_ref = "m";
    req.priority = wire_priority;
    req.rows = rows;
    req.codes = codes;
    sent_ns[i].store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                         SteadyClock::now().time_since_epoch())
                         .count(),
                     std::memory_order_release);
    cli.send(req);
    out->sent++;
  }
  rx.join();
  const double dur =
      std::chrono::duration<double>(SteadyClock::now() - start).count();
  out->actual_rps = dur > 0.0 ? static_cast<double>(out->sent) / dur : 0.0;
  std::sort(ok_lat.begin(), ok_lat.end());
  const auto pct = [&](double p) {
    if (ok_lat.empty()) return 0.0;
    const std::size_t idx = std::min(
        ok_lat.size() - 1,
        static_cast<std::size_t>(p * static_cast<double>(ok_lat.size())));
    return ok_lat[idx];
  };
  out->p50_ms = pct(0.50);
  out->p99_ms = pct(0.99);
  cli.close();
}

maddness::Amm train_operator(Rng& rng, int ncodebooks, int nout) {
  const std::size_t d = static_cast<std::size_t>(ncodebooks) * 9;
  Matrix train(512, d);
  for (std::size_t i = 0; i < train.size(); ++i)
    train.data()[i] = static_cast<float>(rng.next_double(0, 220));
  Matrix w(d, static_cast<std::size_t>(nout));
  for (std::size_t i = 0; i < w.size(); ++i)
    w.data()[i] = static_cast<float>(rng.next_gaussian(0, 0.08));
  maddness::Config cfg;
  cfg.ncodebooks = ncodebooks;
  return maddness::Amm::train(cfg, train, w);
}

}  // namespace

int main(int argc, char** argv) {
  engine::Backend mode = engine::Backend::kDevicePaced;
  std::size_t total_requests = 1024;
  std::size_t rows_per_request = 16;
  double device_ns = 10'000.0;
  std::string out_path = "BENCH_serve.json";
  std::string trace_out;
  bool overload_gate = false;
  bool fused_gate = false;
  bool shadow_gate = false;
  bool failover_gate = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--mode=simulate") == 0)
      mode = engine::Backend::kSimulate;
    else if (std::strcmp(argv[i], "--mode=kernel") == 0)
      mode = engine::Backend::kKernel;
    else if (std::strcmp(argv[i], "--mode=paced") == 0)
      mode = engine::Backend::kDevicePaced;
    else if (std::strncmp(argv[i], "--device-ns=", 12) == 0)
      device_ns = std::strtod(argv[i] + 12, nullptr);
    else if (std::strncmp(argv[i], "--requests=", 11) == 0)
      total_requests = static_cast<std::size_t>(
          std::strtoull(argv[i] + 11, nullptr, 10));
    else if (std::strncmp(argv[i], "--rows=", 7) == 0)
      rows_per_request = static_cast<std::size_t>(
          std::strtoull(argv[i] + 7, nullptr, 10));
    else if (std::strncmp(argv[i], "--out=", 6) == 0)
      out_path = argv[i] + 6;
    else if (std::strncmp(argv[i], "--trace-out=", 12) == 0)
      trace_out = argv[i] + 12;
    else if (std::strcmp(argv[i], "--overload-gate") == 0)
      overload_gate = true;
    else if (std::strcmp(argv[i], "--fused-gate") == 0)
      fused_gate = true;
    else if (std::strcmp(argv[i], "--shadow-gate") == 0)
      shadow_gate = true;
    else if (std::strcmp(argv[i], "--failover-gate") == 0)
      failover_gate = true;
    else {
      std::fprintf(stderr, "unknown arg: %s\n", argv[i]);
      return 1;
    }
  }
  const bool simulate = mode == engine::Backend::kSimulate;
  const bool paced = mode == engine::Backend::kDevicePaced;
  const char* mode_name =
      simulate ? "simulate" : (paced ? "paced" : "kernel");
  if (simulate) {
    // The event-driven macro is orders of magnitude slower per token;
    // shrink the default workload so the sweep stays interactive.
    if (total_requests == 1024) total_requests = 64;
    if (rows_per_request == 16) rows_per_request = 4;
  }

  // Kernel mode uses a serving-sized operator (32 channels, D=288 -> 64
  // outputs: ~2k table-lookup adds per token) so a 16-row request is a
  // meaningful work quantum. Paced mode uses a lighter operator so host
  // compute stays well below the modeled device time.
  Rng rng(2026);
  const int ncodebooks = simulate ? 4 : (paced ? 8 : 32);
  const int nout = simulate ? 8 : (paced ? 16 : 64);
  const maddness::Amm amm = train_operator(rng, ncodebooks, nout);

  const std::size_t d = static_cast<std::size_t>(ncodebooks) * 9;
  Matrix fresh(512, d);
  for (std::size_t i = 0; i < fresh.size(); ++i)
    fresh.data()[i] = static_cast<float>(rng.next_double(0, 220));
  const maddness::QuantizedActivations pool =
      maddness::quantize_activations(fresh, amm.activation_scale());

  serve::LoadSpec spec;
  spec.total_requests = total_requests;
  spec.rows_per_request = rows_per_request;

  const std::vector<int> worker_counts{1, 2, 4, 8};
  const std::vector<std::size_t> batch_sizes{16, 64, 256};
  constexpr int kClients = 16;

  std::vector<Cell> cells;
  for (const int workers : worker_counts)
    for (const std::size_t max_batch : batch_sizes) {
      serve::ServerOptions opts;
      opts.num_workers = workers;
      opts.queue_capacity = 1024;
      opts.engine.backend = mode;
      opts.batcher.max_batch_tokens = max_batch;
      opts.batcher.max_wait = std::chrono::microseconds(200);
      if (simulate) {
        opts.engine.accel.ns = 4;
        opts.engine.accel.ndec = 8;
      }
      if (paced) opts.engine.device_ns_per_token = device_ns;
      serve::InferenceServer server(opts);
      server.register_model("m", amm);
      serve::LoadSpec cell_spec = spec;
      cell_spec.model_refs = {"m@latest"};
      serve::LoadGenerator gen(pool, cell_spec);
      Cell cell;
      cell.workers = workers;
      cell.max_batch = max_batch;
      cell.load = gen.run_closed_loop(server, kClients);
      server.shutdown();
      cell.metrics = server.metrics();
      cells.push_back(cell);
      std::fprintf(stderr,
                   "workers=%d batch=%zu  %.0f tokens/s  p50 %.2f ms  "
                   "p99 %.2f ms  mean-batch %.1f\n",
                   workers, max_batch, cell.load.tokens_per_sec,
                   cell.load.p50_ms, cell.load.p99_ms,
                   cell.metrics.mean_batch_tokens);
    }

  // Headline: best tokens/s across batch sizes per worker count.
  auto best = [&](int workers) {
    double b = 0.0;
    for (const Cell& c : cells)
      if (c.workers == workers && c.load.tokens_per_sec > b)
        b = c.load.tokens_per_sec;
    return b;
  };
  const double speedup_4w = best(1) > 0.0 ? best(4) / best(1) : 0.0;
  std::fprintf(stderr, "\naggregate speedup: 4 workers vs 1 = %.2fx\n",
               speedup_4w);

  // ---- registry-dispatch overhead: single-model vs 2-model interleave
  // Same workload, same fixed cell; the interleaved run registers two
  // identically-shaped banks and alternates refs request by request, so
  // any extra cost is pure registry resolution + per-model batching.
  const auto dispatch_cell = [&](const std::vector<std::string>& refs,
                                 serve::InferenceServer& server) {
    serve::LoadSpec mspec = spec;
    mspec.model_refs = refs;
    serve::LoadGenerator gen(pool, mspec);
    // Twice the sweep's client pool: the interleaved run needs enough
    // in-flight requests PER MODEL to fill model-affine batches, or the
    // cell measures pool depth, not dispatch cost.
    serve::LoadReport r = gen.run_closed_loop(server, 2 * kClients);
    server.shutdown();
    return r;
  };
  serve::ServerOptions mopts;
  mopts.num_workers = 4;
  mopts.queue_capacity = 1024;
  mopts.engine.backend = mode;
  mopts.batcher.max_batch_tokens = 64;
  mopts.batcher.max_wait = std::chrono::microseconds(200);
  if (simulate) {
    mopts.engine.accel.ns = 4;
    mopts.engine.accel.ndec = 8;
  }
  if (paced) mopts.engine.device_ns_per_token = device_ns;

  // Best-of-5 per variant, alternating order: these are ~50 ms runs on
  // a shared host, so a single sample is scheduler noise, not dispatch
  // cost.
  serve::LoadReport single_rep, multi_rep;
  for (int rep = 0; rep < 5; ++rep) {
    {
      serve::InferenceServer server(mopts);
      server.register_model("m0", amm);
      const serve::LoadReport r = dispatch_cell({"m0@latest"}, server);
      if (r.tokens_per_sec > single_rep.tokens_per_sec) single_rep = r;
    }
    {
      serve::InferenceServer server(mopts);
      server.register_model("m0", amm);
      server.register_model("m1", amm);
      const serve::LoadReport r =
          dispatch_cell({"m0@latest", "m1@latest"}, server);
      if (r.tokens_per_sec > multi_rep.tokens_per_sec) multi_rep = r;
    }
  }
  const double overhead_frac =
      single_rep.tokens_per_sec > 0.0
          ? 1.0 - multi_rep.tokens_per_sec / single_rep.tokens_per_sec
          : 0.0;
  std::fprintf(stderr,
               "registry dispatch: single %.0f tok/s, 2-model "
               "interleaved %.0f tok/s, overhead %.2f%%\n",
               single_rep.tokens_per_sec, multi_rep.tokens_per_sec,
               overhead_frac * 100.0);

  // ---- trace-overhead guard: the dispatch cell re-run with the span
  // collector on vs off. Best-of-3 per variant for the same reason as
  // the dispatch sweep; the clamp at zero absorbs scheduler jitter when
  // the two variants are within noise of each other.
  double trace_overhead_frac = 0.0;
#if defined(SSMA_TRACE_ENABLED)
  {
    auto& trace = telemetry::TraceSession::instance();
    serve::LoadReport on_rep, off_rep;
    for (int rep = 0; rep < 3; ++rep) {
      for (int traced = 0; traced < 2; ++traced) {
        if (traced) trace.enable();
        serve::InferenceServer server(mopts);
        server.register_model("m0", amm);
        const serve::LoadReport r = dispatch_cell({"m0@latest"}, server);
        if (traced) {
          trace.disable();
          trace.clear();
          if (r.tokens_per_sec > on_rep.tokens_per_sec) on_rep = r;
        } else if (r.tokens_per_sec > off_rep.tokens_per_sec) {
          off_rep = r;
        }
      }
    }
    if (off_rep.tokens_per_sec > 0.0)
      trace_overhead_frac = std::max(
          0.0, 1.0 - on_rep.tokens_per_sec / off_rep.tokens_per_sec);
    std::fprintf(stderr,
                 "trace overhead: off %.0f tok/s, on %.0f tok/s, "
                 "overhead %.2f%%\n",
                 off_rep.tokens_per_sec, on_rep.tokens_per_sec,
                 trace_overhead_frac * 100.0);
  }

  // ---- sample trace: serve a 2-stage pipeline under tracing so the
  // exported span tree shows the full request lifecycle including the
  // inter-stage epilogue (requantization handoff between stages).
  if (!trace_out.empty()) {
    maddness::Config c1;
    c1.ncodebooks = 4;
    const std::size_t d1 = static_cast<std::size_t>(c1.total_dims());
    Matrix calib(256, d1);
    for (std::size_t i = 0; i < calib.size(); ++i)
      calib.data()[i] = static_cast<float>(rng.next_double(0, 220));
    // Stage 1's output width must equal stage 2's input width.
    Matrix w1(d1, d1);
    for (std::size_t i = 0; i < w1.size(); ++i)
      w1.data()[i] = static_cast<float>(rng.next_gaussian(0, 0.08));
    Matrix mid;
    const maddness::Amm s1 =
        engine::train_chained_stage(c1, calib, w1, &mid);
    maddness::Config c2;
    c2.ncodebooks = 4;
    Matrix w2(d1, 16);
    for (std::size_t i = 0; i < w2.size(); ++i)
      w2.data()[i] = static_cast<float>(rng.next_gaussian(0, 0.08));
    const maddness::Amm s2 =
        engine::train_chained_stage(c2, mid, w2, nullptr);

    Matrix traffic(256, d1);
    for (std::size_t i = 0; i < traffic.size(); ++i)
      traffic.data()[i] = static_cast<float>(rng.next_double(0, 220));
    const maddness::QuantizedActivations tpool =
        maddness::quantize_activations(traffic, s1.activation_scale());

    auto& trace = telemetry::TraceSession::instance();
    trace.clear();
    trace.set_ring_capacity(1 << 16);
    trace.enable();
    {
      serve::InferenceServer server(mopts);
      server.register_pipeline("pipe", {&s1, &s2});
      serve::LoadSpec tspec;
      tspec.total_requests = 256;
      tspec.rows_per_request = rows_per_request;
      tspec.model_refs = {"pipe@latest"};
      serve::LoadGenerator tgen(tpool, tspec);
      tgen.run_closed_loop(server, 8);
      server.shutdown();
    }
    trace.disable();
    std::ofstream os(trace_out);
    if (!os.is_open()) {
      std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
      return 1;
    }
    os << trace.render_chrome_json();
    trace.clear();
    std::fprintf(stderr, "wrote %s\n", trace_out.c_str());
  }
#else
  if (!trace_out.empty())
    std::fprintf(stderr,
                 "--trace-out ignored: built with -DSSMA_TRACE=OFF\n");
#endif

  // ---- shadow-rollout overhead: the dispatch cell re-run with a
  // RolloutManager mirroring every served batch through an
  // identically-trained staged bank on a spare engine. Only the
  // try-lock batch tap rides the hot path, so the committed budget is
  // tight (<= 5%). min_shadow_rows is effectively infinite: the cell
  // measures steady-state mirroring cost, never the promote path. The
  // identical bank doubles as a correctness probe — any drift row means
  // the shadow compare itself is broken.
  //
  // This cell decides a 5% gate, so it needs more statistical care than
  // the ranking sweeps: each run is ~30x the sweep workload (a
  // milliseconds-long run on a shared host is a scheduler lottery), 7
  // alternating reps per variant, and the committed number is the gap
  // between the per-variant MEDIANS, clamped at zero — medians because
  // the heavily oversubscribed closed loop leaves every individual run
  // with fat tails in both directions. Simulate mode keeps its shrunken
  // workload — the event-driven macro is too slow to scale up.
  const auto shadow_cell = [&](serve::InferenceServer& server) {
    serve::LoadSpec sspec = spec;
    if (!simulate)
      sspec.total_requests =
          std::max<std::size_t>(8 * total_requests, 8192);
    sspec.model_refs = {"m0@latest"};
    serve::LoadGenerator gen(pool, sspec);
    const serve::LoadReport r = gen.run_closed_loop(server, 2 * kClients);
    server.shutdown();
    return r;
  };
  serve::LoadReport shadow_base_rep, shadow_on_rep;
  serve::rollout::RolloutReport shadow_rollout_rep;
  std::vector<double> shadow_base_tps, shadow_on_tps;
  for (int rep = 0; rep < 7; ++rep) {
    {
      serve::InferenceServer server(mopts);
      server.register_model("m0", amm);
      const serve::LoadReport r = shadow_cell(server);
      shadow_base_tps.push_back(r.tokens_per_sec);
      if (r.tokens_per_sec > shadow_base_rep.tokens_per_sec)
        shadow_base_rep = r;
    }
    {
      serve::InferenceServer server(mopts);
      server.register_model("m0", amm);
      const std::uint64_t staged =
          server.stage_model("m0", amm.save_string());
      serve::rollout::RolloutOptions ropts;
      ropts.shadow_every = 1;
      ropts.min_shadow_rows = ~std::size_t{0} >> 1;
      ropts.engine = mopts.engine;
      serve::rollout::RolloutManager mgr(server, ropts);
      mgr.shadow_existing("m0", staged);
      mgr.start();
      const serve::LoadReport r = shadow_cell(server);
      mgr.stop();
      const serve::rollout::RolloutReport rr = mgr.report("m0");
      shadow_on_tps.push_back(r.tokens_per_sec);
      if (r.tokens_per_sec > shadow_on_rep.tokens_per_sec) {
        shadow_on_rep = r;
        shadow_rollout_rep = rr;
      }
    }
  }
  const auto median = [](std::vector<double>& v) {
    std::sort(v.begin(), v.end());
    return v.empty() ? 0.0 : v[v.size() / 2];
  };
  const double shadow_base_med = median(shadow_base_tps);
  const double shadow_on_med = median(shadow_on_tps);
  const double shadow_overhead_frac =
      shadow_base_med > 0.0
          ? std::max(0.0, 1.0 - shadow_on_med / shadow_base_med)
          : 0.0;
  std::fprintf(stderr,
               "shadow rollout: plain %.0f tok/s, mirrored %.0f tok/s "
               "(medians), overhead %.2f%%  (%zu rows shadowed, "
               "%zu drifted)\n",
               shadow_base_med, shadow_on_med,
               shadow_overhead_frac * 100.0, shadow_rollout_rep.shadow_rows,
               shadow_rollout_rep.drift_rows);

  // ---- overload cell: the TCP front door at 2x sustainable load.
  // Paced mode only — it needs a known device capacity to overdrive.
  // Capacity with the fixed pacing below: 2 workers x 1e9/100us =
  // 20k tokens/s = 1250 req/s at 16 rows. Gold offers 0.7x that as the
  // high-priority tenant, free offers 1.3x as low priority, against a
  // 64-deep queue whose watermarks shed low traffic at depth 32 — so
  // the queue (and gold's queueing delay) stays bounded no matter how
  // hard free pushes.
  TenantRun gold, free_tier;
  bool overload_ran = false;
  if (paced) {
    constexpr double kOverloadDeviceNs = 100'000.0;
    constexpr int kOverloadWorkers = 2;
    constexpr std::size_t kOverloadRows = 16;
    constexpr double kDurationS = 1.2;
    const double capacity_rps = kOverloadWorkers * 1e9 /
                                (kOverloadDeviceNs *
                                 static_cast<double>(kOverloadRows));
    const double gold_rps = 0.7 * capacity_rps;
    const double free_rps = 1.3 * capacity_rps;

    serve::ServerOptions oopts;
    oopts.num_workers = kOverloadWorkers;
    oopts.queue_capacity = 64;
    oopts.engine.backend = engine::Backend::kDevicePaced;
    oopts.engine.device_ns_per_token = kOverloadDeviceNs;
    oopts.batcher.max_batch_tokens = 64;
    oopts.batcher.max_wait = std::chrono::microseconds(200);
    serve::InferenceServer server(oopts);
    server.register_model("m", amm);

    net::NetServerOptions nopts;
    nopts.admission.tenants["gold"] =
        serve::TenantConfig{0.0, 0.0, serve::Priority::kHigh};
    nopts.admission.tenants["free"] =
        serve::TenantConfig{0.0, 0.0, serve::Priority::kLow};
    net::NetServer net(server, nopts);

    // All requests reuse one payload; the cell measures admission and
    // scheduling, not encode bandwidth.
    std::vector<std::uint8_t> codes(
        pool.row(0), pool.row(0) + kOverloadRows * pool.cols);
    std::thread gold_thread(
        drive_tenant, net.port(), "gold",
        static_cast<std::uint8_t>(serve::Priority::kHigh), gold_rps,
        static_cast<std::size_t>(gold_rps * kDurationS), kOverloadRows,
        codes, &gold);
    drive_tenant(net.port(), "free",
                 static_cast<std::uint8_t>(serve::Priority::kLow),
                 free_rps, static_cast<std::size_t>(free_rps * kDurationS),
                 kOverloadRows, codes, &free_tier);
    gold_thread.join();
    net.stop();
    server.shutdown();
    overload_ran = true;

    std::fprintf(stderr,
                 "overload: gold %zu sent, %zu ok, %llu shed, p99 %.1f ms"
                 " | free %zu sent, %zu ok, %llu shed\n",
                 gold.sent, gold.ok,
                 static_cast<unsigned long long>(gold.total_rejects()),
                 gold.p99_ms, free_tier.sent, free_tier.ok,
                 static_cast<unsigned long long>(
                     free_tier.total_rejects()));
  }

  // ---- fused execution plan cell: a 3-stage chained stack (ncb=32,
  // 288-wide interior boundaries, 128 final outputs) registered as one
  // pipeline model and served through the kernel backend with
  // EngineOptions::fused_pipeline on vs off. Best-of-3 alternating, like
  // the dispatch sweep. Before timing, one request per variant is
  // checked bit-exact against pipeline_reference_apply — the fusion
  // claim is "same bits, fewer memory trips", so a numeric drift here
  // must fail loudly, not show up as a benchmark delta.
  double fused_speedup = 0.0;
  double fused_rel_err = 0.0;
  serve::LoadReport fused_rep, unfused_rep;
  constexpr std::size_t kFusedRows = 64;
  constexpr std::size_t kFusedRequests = 256;
  {
    Rng frng(777);
    maddness::Config fcfg;
    fcfg.ncodebooks = 32;
    const std::size_t fd = static_cast<std::size_t>(fcfg.total_dims());
    Matrix fcalib(384, fd);
    for (std::size_t i = 0; i < fcalib.size(); ++i)
      fcalib.data()[i] = static_cast<float>(frng.next_double(0, 200));
    Matrix fw0(fd, fd), fw1(fd, fd), fw2(fd, 128);
    for (Matrix* w : {&fw0, &fw1, &fw2})
      for (std::size_t i = 0; i < w->size(); ++i)
        w->data()[i] = static_cast<float>(frng.next_gaussian(0, 0.08));
    Matrix mid0, mid1;
    const maddness::Amm fs0 =
        engine::train_chained_stage(fcfg, fcalib, fw0, &mid0);
    const maddness::Amm fs1 =
        engine::train_chained_stage(fcfg, mid0, fw1, &mid1);
    const maddness::Amm fs2 =
        engine::train_chained_stage(fcfg, mid1, fw2, nullptr);

    Matrix ffresh(512, fd);
    for (std::size_t i = 0; i < ffresh.size(); ++i)
      ffresh.data()[i] = static_cast<float>(frng.next_double(0, 200));
    const maddness::QuantizedActivations fpool =
        maddness::quantize_activations(ffresh, fs0.activation_scale());

    // Accuracy: served outputs (the final stage's dequantized
    // accumulators) vs the exact float chain on the same inputs. The
    // number includes the input-quantization step — the honest
    // end-to-end approximation error a client of this model sees.
    const engine::ModelRef fref =
        engine::ModelHandle::from_stages("mlp", 1, {&fs0, &fs1, &fs2});
    const std::vector<std::int16_t> facc =
        engine::pipeline_reference_apply(*fref, fpool);
    const Matrix fdeq = fs2.dequantize_result(facc, fpool.rows);
    Matrix h0, h1, fexact;
    gemm(ffresh, fw0, h0);
    for (std::size_t i = 0; i < h0.size(); ++i)
      h0.data()[i] = std::max(0.0f, h0.data()[i]);
    gemm(h0, fw1, h1);
    for (std::size_t i = 0; i < h1.size(); ++i)
      h1.data()[i] = std::max(0.0f, h1.data()[i]);
    gemm(h1, fw2, fexact);
    fused_rel_err = frobenius_diff(fdeq, fexact) / frobenius(fexact);

    serve::ServerOptions fopts;
    fopts.num_workers = 2;
    fopts.queue_capacity = 1024;
    fopts.engine.backend = engine::Backend::kKernel;
    fopts.batcher.max_batch_tokens = 256;
    fopts.batcher.max_wait = std::chrono::microseconds(200);

    // One-request bit-exactness probe per variant.
    const std::size_t probe_rows = kFusedRows;
    maddness::QuantizedActivations probe;
    probe.rows = probe_rows;
    probe.cols = fpool.cols;
    probe.scale = fpool.scale;
    probe.codes.assign(fpool.row(0), fpool.row(0) + probe_rows * fpool.cols);
    const std::vector<std::int16_t> probe_want =
        engine::pipeline_reference_apply(*fref, probe);
    for (const bool fused_on : {true, false}) {
      fopts.engine.fused_pipeline = fused_on;
      serve::InferenceServer server(fopts);
      server.register_pipeline("mlp", {&fs0, &fs1, &fs2});
      auto fut = server.submit("mlp@latest", probe.codes, probe_rows);
      const serve::InferenceResult got = fut.get();
      server.shutdown();
      if (got.outputs != probe_want) {
        std::fprintf(stderr,
                     "fused cell: %s walk diverged from "
                     "pipeline_reference_apply\n",
                     fused_on ? "fused" : "unfused");
        return 1;
      }
    }

    const auto fused_cell = [&](bool fused_on) {
      fopts.engine.fused_pipeline = fused_on;
      serve::InferenceServer server(fopts);
      server.register_pipeline("mlp", {&fs0, &fs1, &fs2});
      serve::LoadSpec fspec;
      fspec.total_requests = kFusedRequests;
      fspec.rows_per_request = kFusedRows;
      fspec.model_refs = {"mlp@latest"};
      serve::LoadGenerator gen(fpool, fspec);
      const serve::LoadReport r = gen.run_closed_loop(server, kClients);
      server.shutdown();
      return r;
    };
    for (int rep = 0; rep < 3; ++rep) {
      const serve::LoadReport f = fused_cell(true);
      if (f.tokens_per_sec > fused_rep.tokens_per_sec) fused_rep = f;
      const serve::LoadReport u = fused_cell(false);
      if (u.tokens_per_sec > unfused_rep.tokens_per_sec) unfused_rep = u;
    }
    fused_speedup = unfused_rep.tokens_per_sec > 0.0
                        ? fused_rep.tokens_per_sec /
                              unfused_rep.tokens_per_sec
                        : 0.0;
    std::fprintf(stderr,
                 "fused plan: 3-stage ncb=32  fused %.0f tok/s  unfused "
                 "%.0f tok/s  speedup %.2fx  rel-err vs float %.4f\n",
                 fused_rep.tokens_per_sec, unfused_rep.tokens_per_sec,
                 fused_speedup, fused_rel_err);
  }

  // ---- CNN end-to-end cell: a trained MaddnessNetwork registered via
  // engine::register_network, every substituted conv's patch matmul
  // served (forward_served), images/s next to accuracy. The served path
  // must be bit-exact vs the local LUT path; top-1 agreement vs the
  // exact float network is the accuracy that sits beside the latency.
  double cnn_images_per_s = 0.0;
  double cnn_top1_agreement = 0.0;
  std::size_t cnn_images = 0;
  std::size_t cnn_segments = 0;
  {
    Rng crng(1);
    nn::Dataset data = nn::make_synthetic_dataset(crng, 60, 8, 8);
    nn::Network net;
    net.emplace<nn::Conv2d>(3, 8, 3, 1, 1, crng);
    net.emplace<nn::BatchNorm2d>(8);
    net.emplace<nn::ReLU>();
    net.emplace<nn::Conv2d>(8, 8, 3, 1, 1, crng);
    net.emplace<nn::BatchNorm2d>(8);
    net.emplace<nn::ReLU>();
    net.emplace<nn::Flatten>();
    net.emplace<nn::Linear>(8 * 8 * 8, 10, crng);
    nn::TrainConfig tc;
    tc.epochs = 4;
    tc.batch_size = 20;
    Rng trng(55);
    nn::train(net, data, tc, trng);
    std::vector<std::size_t> cidx(30);
    for (std::size_t i = 0; i < cidx.size(); ++i) cidx[i] = i;
    const nn::Tensor ccalib = nn::take_batch(data, cidx).first;
    const nn::MaddnessNetwork mnet(net, ccalib);

    auto registry = std::make_shared<engine::ModelRegistry>();
    const std::vector<std::string> names =
        engine::register_network(*registry, "cnn", mnet);
    cnn_segments = names.size();
    // Conv stacks don't shape-chain (the im2col hop is the client's),
    // so segments map 1:1 onto substituted convs here.
    if (names.size() != mnet.num_substituted_convs()) {
      std::fprintf(stderr, "cnn cell: unexpected segment layout\n");
      return 1;
    }
    serve::ServerOptions copts;
    copts.num_workers = 2;
    copts.queue_capacity = 1024;
    copts.engine.backend = engine::Backend::kKernel;
    copts.batcher.max_batch_tokens = 256;
    copts.batcher.max_wait = std::chrono::microseconds(200);
    serve::InferenceServer server(registry, copts);
    const nn::MaddnessNetwork::ConvExecutor exec =
        [&](std::size_t conv,
            const maddness::QuantizedActivations& q) {
          auto fut = server.submit(names[conv] + "@latest", q.codes,
                                   q.rows);
          return fut.get().outputs;
        };

    const std::size_t kImages = 20;
    const auto argmax = [](const nn::Tensor& t) {
      std::size_t best = 0;
      for (std::size_t i = 1; i < t.size(); ++i)
        if (t[i] > t[best]) best = i;
      return best;
    };
    std::size_t agree = 0;
    bool bit_exact = true;
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<nn::Tensor> served(kImages);
    for (std::size_t i = 0; i < kImages; ++i) {
      std::vector<std::size_t> one{i};
      const nn::Tensor x = nn::take_batch(data, one).first;
      served[i] = mnet.forward_served(x, exec);
    }
    const double serve_s = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
    for (std::size_t i = 0; i < kImages; ++i) {
      std::vector<std::size_t> one{i};
      const nn::Tensor x = nn::take_batch(data, one).first;
      const nn::Tensor local = mnet.forward(x, /*use_amm=*/true);
      for (std::size_t k = 0; k < local.size(); ++k)
        if (served[i][k] != local[k]) bit_exact = false;
      const nn::Tensor exact = mnet.forward(x, /*use_amm=*/false);
      if (argmax(served[i]) == argmax(exact)) ++agree;
    }
    server.shutdown();
    if (!bit_exact) {
      std::fprintf(stderr,
                   "cnn cell: served network diverged from the local "
                   "LUT forward pass\n");
      return 1;
    }
    cnn_images = kImages;
    cnn_images_per_s =
        serve_s > 0.0 ? static_cast<double>(kImages) / serve_s : 0.0;
    cnn_top1_agreement =
        static_cast<double>(agree) / static_cast<double>(kImages);
    std::fprintf(stderr,
                 "cnn serve: %zu images via %zu served segments  %.1f "
                 "images/s  top-1 agreement vs float %.2f\n",
                 cnn_images, cnn_segments, cnn_images_per_s,
                 cnn_top1_agreement);
  }

  // Machine-readable result: one JSON object, written to the BENCH
  // artifact and echoed on stdout.
  std::string out = "{\"bench\":\"serve_throughput\",";
  out += benchenv::machine_json();
  out += ",\"mode\":\"";
  out += mode_name;
  out += "\"";
  if (paced) {
    char dev[48];
    std::snprintf(dev, sizeof(dev), ",\"device_ns_per_token\":%.1f",
                  device_ns);
    out += dev;
  }
  out += ",\"total_requests\":" + std::to_string(total_requests) +
         ",\"rows_per_request\":" + std::to_string(rows_per_request) +
         ",\"clients\":" + std::to_string(kClients) + ",\"cells\":[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out += ",";
    out += "{\"workers\":" + std::to_string(cells[i].workers) +
           ",\"max_batch_tokens\":" + std::to_string(cells[i].max_batch) +
           ",\"load\":" + cells[i].load.json() +
           ",\"server\":" + cells[i].metrics.json() + "}";
  }
  char tail[64];
  std::snprintf(tail, sizeof(tail), "],\"speedup_4w_vs_1w\":%.3f",
                speedup_4w);
  out += tail;
  out += ",\"multi_model\":{\"workers\":4,\"max_batch_tokens\":64";
  out += ",\"single\":" + single_rep.json();
  out += ",\"interleaved_2_models\":" + multi_rep.json();
  char ov[48];
  std::snprintf(ov, sizeof(ov), ",\"overhead_frac\":%.4f}",
                overhead_frac);
  out += ov;
  char tf[96];
  std::snprintf(tf, sizeof(tf),
                ",\"telemetry\":{\"trace_compiled_in\":%s,"
                "\"trace_overhead_frac\":%.4f}",
#if defined(SSMA_TRACE_ENABLED)
                "true",
#else
                "false",
#endif
                trace_overhead_frac);
  out += tf;
  char sh[192];
  std::snprintf(sh, sizeof(sh),
                ",\"shadow\":{\"workers\":4,\"max_batch_tokens\":64,"
                "\"shadow_rows\":%zu,\"shadow_batches\":%zu,"
                "\"drift_rows\":%zu,\"overhead_frac\":%.4f",
                shadow_rollout_rep.shadow_rows,
                shadow_rollout_rep.shadow_batches,
                shadow_rollout_rep.drift_rows, shadow_overhead_frac);
  out += sh;
  out += ",\"baseline\":" + shadow_base_rep.json();
  out += ",\"mirrored\":" + shadow_on_rep.json() + "}";
  if (overload_ran) {
    out += ",\"overload\":{\"queue_capacity\":64,\"workers\":2"
           ",\"device_ns_per_token\":100000.0,\"rows_per_request\":16"
           ",\"tenants\":[" +
           gold.json() + "," + free_tier.json() + "]}";
  } else {
    out += ",\"overload\":null";
  }
  char fcell[160];
  std::snprintf(fcell, sizeof(fcell),
                ",\"fused_pipeline\":{\"stages\":3,\"ncodebooks\":32,"
                "\"inter_cols\":288,\"nout\":128,\"workers\":2,"
                "\"requests\":%zu,\"rows_per_request\":%zu",
                kFusedRequests, kFusedRows);
  out += fcell;
  out += ",\"fused\":" + fused_rep.json();
  out += ",\"unfused\":" + unfused_rep.json();
  std::snprintf(fcell, sizeof(fcell),
                ",\"speedup\":%.3f,\"relative_error_vs_float\":%.5f,"
                "\"served_bit_exact_vs_reference\":true}",
                fused_speedup, fused_rel_err);
  out += fcell;
  std::snprintf(fcell, sizeof(fcell),
                ",\"cnn_serve\":{\"images\":%zu,\"segments\":%zu,"
                "\"images_per_s\":%.2f,\"top1_agreement_vs_float\":%.3f,"
                "\"served_bit_exact_vs_local_amm\":true}",
                cnn_images, cnn_segments, cnn_images_per_s,
                cnn_top1_agreement);
  out += fcell;
  out += "}";
  if (!benchenv::write_artifact(out_path, out)) return 1;

  // ---- overload gate: turn the cell's SLO story into an exit code.
  if (overload_gate) {
    if (!overload_ran) {
      std::fprintf(stderr,
                   "overload gate: FAIL (cell only runs in paced mode)\n");
      return 1;
    }
    bool ok = true;
    const auto fail = [&](const char* what) {
      std::fprintf(stderr, "overload gate: FAIL — %s\n", what);
      ok = false;
    };
    // No lost acks, no untyped failures, on either tenant.
    for (const TenantRun* t : {&gold, &free_tier}) {
      if (t->acked != t->sent) fail("a tenant lost acks");
      if (t->ok + t->total_rejects() != t->acked)
        fail("acks do not partition into ok + typed rejections");
      if (t->other_status != 0) fail("internal errors on the wire");
    }
    // Gold's SLO holds under 2x overload...
    if (gold.sent == 0 ||
        static_cast<double>(gold.ok) <
            0.95 * static_cast<double>(gold.sent))
      fail("gold ok-rate below 95%");
    if (gold.p99_ms > 100.0) fail("gold ok p99 above 100 ms");
    // ...because free absorbed the overload as typed sheds.
    if (free_tier.rejects[static_cast<std::size_t>(
            serve::RejectReason::kQueueFull)] == 0)
      fail("free tier was never shed at the watermark");
    std::fprintf(stderr, "overload gate: %s\n", ok ? "PASS" : "FAIL");
    if (!ok) return 1;
  }

  // ---- fused gate: the fused execution plan must hold its committed
  // advantage over the materializing walk on the served multi-stage
  // cell (the bit-exactness probes above already hard-failed earlier).
  if (fused_gate) {
    if (fused_speedup < 1.3) {
      std::fprintf(stderr,
                   "fused gate: FAIL — served fused/unfused %.2fx, "
                   "floor 1.3x\n",
                   fused_speedup);
      return 1;
    }
    std::fprintf(stderr, "fused gate: PASS (%.2fx)\n", fused_speedup);
  }

  // ---- shadow gate: mirroring a canary must not tax the serving path,
  // and an identically-trained candidate must compare drift-free.
  if (shadow_gate) {
    bool ok = true;
    const auto fail = [&](const char* what) {
      std::fprintf(stderr, "shadow gate: FAIL — %s\n", what);
      ok = false;
    };
    if (shadow_rollout_rep.shadow_rows == 0)
      fail("shadow executor never mirrored a batch");
    if (shadow_rollout_rep.drift_rows != 0)
      fail("identical staged bank reported drift");
    if (shadow_overhead_frac > 0.05)
      fail("mirroring overhead above the 5% budget");
    std::fprintf(stderr, "shadow gate: %s (overhead %.2f%%)\n",
                 ok ? "PASS" : "FAIL", shadow_overhead_frac * 100.0);
    if (!ok) return 1;
  }

  // ---- failover gate: one sync-acked leader/follower pair, promoted
  // after a short load; promotion must audit clean and the first
  // post-promotion response must be bit-exact. Kernel backend — the
  // gate checks the HA protocol, not device pacing.
  if (failover_gate) {
    namespace repl = serve::replication;
    const auto scratch =
        std::filesystem::temp_directory_path() /
        ("ssma-failover-gate-" + std::to_string(::getpid()));
    std::filesystem::create_directories(scratch);
    bool ok = true;
    {
      serve::recovery::CheckpointManager ckpts(
          (scratch / "leader-ckpts").string());
      serve::recovery::RequestJournal journal(
          (scratch / "leader.jnl").string());
      repl::ReplicationOptions ropts;
      ropts.ack_mode = repl::AckMode::kSync;
      ropts.ack_timeout = std::chrono::milliseconds(10000);
      repl::ReplicationLog log(journal, &ckpts, ropts);

      serve::ServerOptions gopts;
      gopts.num_workers = 2;
      gopts.queue_capacity = 1024;
      gopts.engine.backend = engine::Backend::kKernel;
      gopts.recovery.journal = &journal;
      gopts.recovery.checkpoints = &ckpts;
      gopts.recovery.checkpoint_every = 8;
      gopts.recovery.replication = &log;
      serve::InferenceServer leader(gopts);
      leader.register_model("m", amm);

      repl::ApplierOptions aopts;
      aopts.leader_port = log.port();
      aopts.dir = (scratch / "follower").string();
      aopts.server = gopts;
      aopts.checkpoint_every = 8;
      repl::ReplicaApplier applier(aopts);
      if (!log.wait_follower(1, std::chrono::milliseconds(10000))) {
        std::fprintf(stderr, "failover gate: follower never connected\n");
        ok = false;
      }
      constexpr std::size_t kGateRows = 4;
      std::vector<std::uint8_t> gate_codes(
          pool.row(0), pool.row(0) + kGateRows * pool.cols);
      maddness::QuantizedActivations gq;
      gq.rows = kGateRows;
      gq.cols = pool.cols;
      gq.scale = pool.scale;
      gq.codes = gate_codes;
      const std::vector<std::int16_t> gate_want = amm.apply_int16(gq);
      if (ok) {
        for (std::size_t i = 0; i < 32; ++i)
          leader.submit("m", gate_codes, kGateRows).get();
        leader.shutdown();
        if (!applier.wait_caught_up(journal.durable_seq(),
                                    std::chrono::milliseconds(10000))) {
          std::fprintf(stderr, "failover gate: follower never caught up\n");
          ok = false;
        }
      }
      if (ok) {
        log.stop();
        repl::PromotionReport rep;
        std::unique_ptr<serve::InferenceServer> promoted =
            applier.promote(&rep);
        if (rep.crc_mismatches != 0 || rep.replay_failures != 0) {
          std::fprintf(stderr, "failover gate: promotion audit failed\n");
          ok = false;
        }
        const serve::InferenceResult first =
            promoted->submit("m", gate_codes, kGateRows).get();
        promoted->shutdown();
        if (first.outputs != gate_want) {
          std::fprintf(
              stderr,
              "failover gate: first promoted response not bit-exact\n");
          ok = false;
        }
      }
    }
    std::error_code ec;
    std::filesystem::remove_all(scratch, ec);
    std::fprintf(stderr, "failover gate: %s\n", ok ? "PASS" : "FAIL");
    if (!ok) return 1;
  }
  return 0;
}
