// Reproduces Table II: comparison of the proposed macro (Ndec=16, NS=32,
// at 0.5 V and 0.8 V) against the prior MADDNESS accelerators [21] and
// [22], with area efficiency normalized to 22nm, plus a conventional
// MAC-array reference row for context. Frequencies of the proposed
// column come from event-driven simulation.
#include <cstdio>

#include "baselines/exact_mac_model.hpp"
#include "core/experiments.hpp"
#include "util/table.hpp"

int main() {
  using namespace ssma;

  std::printf("== Table II: comparison to prior accelerators ==\n\n");

  const auto prior = core::table2_prior_work();
  const auto ours05 = core::run_table2_proposed(0.5);
  const auto ours08 = core::run_table2_proposed(0.8);

  TextTable t({"metric", prior[0].label, prior[1].label,
               "Proposed @0.5V", "Proposed @0.8V"});
  t.add_row({"operation mode", prior[0].mode, prior[1].mode, ours05.mode,
             ours08.mode});
  t.add_row({"process [nm]", prior[0].process, prior[1].process,
             ours05.process, ours08.process});
  t.add_row({"supply [V]", prior[0].supply, prior[1].supply, ours05.supply,
             ours08.supply});
  t.add_row({"area [mm2]", TextTable::num(prior[0].area_mm2, 2),
             TextTable::num(prior[1].area_mm2, 2),
             TextTable::num(ours05.area_mm2, 2),
             TextTable::num(ours08.area_mm2, 2)});
  t.add_row({"frequency [MHz]", prior[0].freq_mhz, prior[1].freq_mhz,
             ours05.freq_mhz, ours08.freq_mhz});
  t.add_row({"throughput [TOPS]", prior[0].throughput_tops,
             prior[1].throughput_tops, ours05.throughput_tops,
             ours08.throughput_tops});
  t.add_row({"energy eff. [TOPS/W]", prior[0].tops_per_w,
             prior[1].tops_per_w, ours05.tops_per_w, ours08.tops_per_w});
  t.add_row({"area eff. [TOPS/mm2]", prior[0].tops_per_mm2,
             prior[1].tops_per_mm2, ours05.tops_per_mm2,
             ours08.tops_per_mm2});
  t.add_row({"encoder [fJ/op]", prior[0].encoder_fj, prior[1].encoder_fj,
             ours05.encoder_fj, ours08.encoder_fj});
  t.add_row({"decoder [fJ/op]", prior[0].decoder_fj, prior[1].decoder_fj,
             ours05.decoder_fj, ours08.decoder_fj});
  t.add_row({"ResNet9 acc. (see accuracy_cnn)", prior[0].accuracy,
             prior[1].accuracy, "== [22] (bit-exact MADDNESS)",
             "== [22] (bit-exact MADDNESS)"});
  std::printf("%s\n", t.render().c_str());

  std::printf("Paper reference row: 31.2-56.2 / 144-353 MHz, 0.28-0.51 /\n"
              "1.33-3.26 TOPS, 174 / 75.1 TOPS/W, 2.01 / 11.34 TOPS/mm2.\n\n");

  // Headline ratios the abstract quotes.
  const double ours_w = 174.0;
  std::printf("Headline ratios (@0.5 V): %.1fx energy efficiency and %.1fx\n"
              "22nm-normalized area efficiency vs [21] (paper: 2.5x / 5x).\n\n",
              ours_w / 69.0, 2.01 / 0.40);

  // Context: a conventional 8-bit MAC array at the same node/VDD.
  baselines::MacBaselineModel mac;
  std::printf("Context: conventional INT8 MAC array @22nm (Horowitz-model):\n"
              "  %.1f TOPS/W with weight fetch, %.1f TOPS/W arithmetic only\n"
              "  -> the LUT-based approach's advantage comes from removing\n"
              "  both the multiplier and the per-MAC weight fetch.\n",
              mac.tops_per_w(22.0, 0.5, true),
              mac.tops_per_w(22.0, 0.5, false));
  return 0;
}
