// Extension experiment: the paper reports only the best/worst encoder
// latency envelope (Fig. 6/7). Because the macro is self-timed, real
// throughput depends on where actual activations resolve in the DLCs.
// This bench measures the full block-latency distribution on (a) uniform
// random operands and (b) activations of the trained CNN, locating real
// workloads inside the paper's envelope.
#include <cstdio>

#include "maddness/amm.hpp"
#include "nn/dataset.hpp"
#include "nn/layers.hpp"
#include "nn/maddness_conv.hpp"
#include "ppa/delay_model.hpp"
#include "sim/macro.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace ssma;

namespace {

sim::MacroRunResult run_stream(
    const std::vector<maddness::HashTree>& trees,
    const std::vector<std::vector<sim::Subvec>>& inputs, int ndec) {
  const int ns = static_cast<int>(trees.size());
  sim::MacroConfig mc;
  mc.ndec = ndec;
  mc.ns = ns;
  sim::Macro macro(mc);
  Rng rng(3);
  std::vector<std::vector<std::array<std::int8_t, 16>>> luts(
      ns, std::vector<std::array<std::int8_t, 16>>(ndec));
  for (auto& b : luts)
    for (auto& tb : b)
      for (auto& e : tb) e = static_cast<std::int8_t>(rng.next_int(-127, 127));
  macro.program(trees, luts, std::vector<std::int16_t>(ndec, 0));
  return macro.run(inputs);
}

}  // namespace

int main() {
  const int ndec = 4;
  const int tokens = 48;

  std::printf(
      "== Extension: block-latency distribution on real activations ==\n"
      "The paper gives best/worst bounds; the self-timed macro actually\n"
      "runs at the data's speed. Ndec=%d, 0.5 V TTG.\n\n",
      ndec);

  ppa::DelayModel delay(ppa::nominal_05v());
  std::printf("Envelope: best %.1f ns / worst %.1f ns per block\n\n",
              delay.block_latency_best_ns(ndec),
              delay.block_latency_worst_ns(ndec));

  TextTable t({"workload", "min [ns]", "mean [ns]", "p95 [ns]", "max [ns]",
               "mean vs worst-case"});

  // (a) Uniform random operands against random thresholds.
  {
    Rng rng(11);
    const int ns = 4;
    std::vector<maddness::HashTree> trees(ns);
    for (auto& tr : trees) {
      for (int l = 0; l < 4; ++l) tr.set_split_dim(l, rng.next_int(0, 8));
      for (int l = 0; l < 4; ++l)
        for (int n = 0; n < (1 << l); ++n)
          tr.set_threshold(l, n,
                           static_cast<std::uint8_t>(rng.next_int(1, 254)));
    }
    std::vector<std::vector<sim::Subvec>> inputs(
        tokens, std::vector<sim::Subvec>(ns));
    for (auto& tok : inputs)
      for (auto& sv : tok)
        for (auto& v : sv) v = static_cast<std::uint8_t>(rng.next_int(0, 255));
    const auto res = run_stream(trees, inputs, ndec);
    const auto& s = res.stats.output_interval_ns;
    t.add_row({"uniform random", TextTable::num(s.min(), 2),
               TextTable::num(s.mean(), 2), TextTable::num(s.percentile(95), 2),
               TextTable::num(s.max(), 2),
               TextTable::num(s.mean() / delay.block_latency_worst_ns(ndec),
                              2)});
  }

  // (b) Trained-CNN activations: train a small conv layer's MADDNESS
  // substitution on synthetic data, then stream its real quantized
  // activations with its learned thresholds.
  {
    Rng rng(13);
    nn::Dataset data = nn::make_synthetic_dataset(rng, 24, 8, 8);
    nn::Conv2d conv(4, ndec, 3, 1, 1, rng);
    // Calibration from a projection of the dataset into 4 channels.
    nn::Conv2d stem(3, 4, 3, 1, 1, rng);
    nn::ReLU relu;
    const nn::Tensor feats =
        relu.forward(stem.forward(data.images, false), false);
    nn::MaddnessConv2d mconv(conv, feats);

    // Stream real im2col rows through the macro with the learned trees.
    const Matrix cols = nn::im2col(feats, 3, 1, 1);
    const auto q = maddness::quantize_activations(
        cols, mconv.amm().activation_scale());
    const int ns = 4;
    std::vector<std::vector<sim::Subvec>> inputs;
    for (std::size_t k = 0; k < std::min<std::size_t>(q.rows, tokens); ++k) {
      std::vector<sim::Subvec> tok(ns);
      for (int b = 0; b < ns; ++b)
        for (int j = 0; j < 9; ++j)
          tok[b][j] = q.at(k, static_cast<std::size_t>(b) * 9 + j);
      inputs.push_back(std::move(tok));
    }
    const auto res = run_stream(mconv.amm().trees(), inputs, ndec);
    const auto& s = res.stats.output_interval_ns;
    t.add_row({"CNN activations", TextTable::num(s.min(), 2),
               TextTable::num(s.mean(), 2), TextTable::num(s.percentile(95), 2),
               TextTable::num(s.max(), 2),
               TextTable::num(s.mean() / delay.block_latency_worst_ns(ndec),
                              2)});
  }

  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Real activations resolve most comparisons in the upper bits, so\n"
      "sustained throughput sits much closer to the best case than the\n"
      "worst case — extra headroom the paper's envelope reporting leaves\n"
      "on the table (only a self-timed design can collect it).\n");
  return 0;
}
