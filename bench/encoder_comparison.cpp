// Reproduces the Sec. II-B design-space discussion: the encoding function
// is the differentiator of the MADDNESS-accelerator lineage. Compares
//   * BDT (MADDNESS / proposed hardware): 4 sequential 8-bit compares
//   * Manhattan full-search (PECAN): K x D subtract-accumulate
//   * Euclidean full-search (LUT-NN): K x D multiply-accumulate
// on (a) assignment quality / AMM error and (b) encoding cost in
// hardware-relevant operation counts — showing the trade the paper's
// encoder choice makes.
#include <algorithm>
#include <cstdio>

#include "maddness/alt_encoders.hpp"
#include "maddness/amm.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace ssma;

int main() {
  std::printf(
      "== Encoding-function comparison (Sec. II-B design space) ==\n\n");

  // Workload: clustered activations (4 codebooks x 9 dims) and a weight
  // matrix; identical for all encoders.
  Rng rng(99);
  const int M = 4, nout = 8;
  Matrix centers(20, 36);
  for (std::size_t i = 0; i < centers.size(); ++i)
    centers.data()[i] = static_cast<float>(rng.next_double(10, 240));
  Matrix x(1200, 36);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const int k = rng.next_int(0, 19);
    for (std::size_t j = 0; j < 36; ++j)
      x(i, j) = static_cast<float>(std::clamp(
          centers(k, j) + rng.next_gaussian(0, 8.0), 0.0, 255.0));
  }
  Matrix w(36, nout);
  for (std::size_t i = 0; i < w.size(); ++i)
    w.data()[i] = static_cast<float>(rng.next_gaussian(0, 0.05));
  Matrix exact;
  gemm(x, w, exact);

  maddness::Config cfg;
  cfg.ncodebooks = M;
  const maddness::Amm amm = maddness::Amm::train(cfg, x, w);
  const auto q = maddness::quantize_activations(x, amm.activation_scale());

  // --- BDT error.
  const double bdt_err = maddness::relative_error(amm.apply(x), exact);

  // --- Full-search errors: same prototypes, distance-based assignment,
  // float LUT reconstruction (upper bound for those designs).
  auto full_search_error = [&](maddness::DistanceKind kind) {
    Matrix approx(x.rows(), nout);
    for (std::size_t n = 0; n < x.rows(); ++n) {
      for (int o = 0; o < nout; ++o) approx(n, o) = 0.0f;
      for (int c = 0; c < M; ++c) {
        // Prototypes of codebook c over its own dims.
        Matrix protos(16, 9);
        for (int k = 0; k < 16; ++k)
          for (int j = 0; j < 9; ++j)
            protos(k, j) = amm.prototypes().row(c, k)[9 * c + j];
        float sub[9];
        for (int j = 0; j < 9; ++j)
          sub[j] = static_cast<float>(q.at(n, 9 * c + j)) * q.scale;
        const int k = maddness::full_search_encode(protos, sub, kind);
        for (int o = 0; o < nout; ++o)
          approx(n, o) +=
              static_cast<float>(amm.lut().at(c, k, o)) * amm.lut().scale(o);
      }
    }
    return maddness::relative_error(approx, exact);
  };
  const double man_err = full_search_error(maddness::DistanceKind::kManhattan);
  const double euc_err = full_search_error(maddness::DistanceKind::kEuclidean);

  // --- Encoding cost per subvector (hardware-relevant op counts).
  TextTable t({"encoder", "AMM rel. error", "compares", "add/sub ops",
               "multiplies", "hardware note"});
  t.add_row({"BDT (proposed / MADDNESS)", TextTable::num(bdt_err, 3), "4",
             "0", "0", "4 DLC evaluations, self-timed"});
  t.add_row({"Manhattan full-search (PECAN)", TextTable::num(man_err, 3),
             "15", std::to_string(16 * 9 * 2), "0",
             "16 parallel distance chains ([21]'s analog DTC)"});
  t.add_row({"Euclidean full-search (LUT-NN)", TextTable::num(euc_err, 3),
             "15", std::to_string(16 * 9), std::to_string(16 * 9),
             "needs multipliers — defeats the purpose in HW"});
  std::printf("%s\n", t.render().c_str());

  std::printf(
      "The full-search encoders assign slightly better (lower error) but\n"
      "cost 1-2 orders of magnitude more encoding work per subvector —\n"
      "and Euclidean reintroduces multiplication. The BDT's 4 dynamic\n"
      "comparisons are why the proposed encoder reaches 0.054 fJ/op\n"
      "(Table II) vs 7.47 fJ/op for [21]'s analog distance race.\n");
  return 0;
}
