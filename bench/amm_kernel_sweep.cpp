// Old-vs-new sweep of the LUT accumulation hot path. For each
// (rows, ncodebooks, nout) cell it measures:
//   * ref    — the pre-rewrite path: row-major encode + naive
//              row->codebook->output accumulation over the proto-major
//              layout (apply_lut_reference),
//   * packed — the rewritten path: one codebook-major encode + the
//              packed output-major kernel at the runtime-selected tier,
//   * each individually available tier on a prebuilt encode cache, so
//     the dispatch levels can be compared in one artifact.
// Every cell also asserts bit-exactness of packed vs ref before timing —
// a perf artifact from a wrong kernel is worse than none.
//
//   build/bench/amm_kernel_sweep [--smoke] [--out=BENCH_amm_kernel.json]
//                                [--min-ms=N]
//
// --smoke shrinks the workload to seconds (for the sanitizer CI job),
// checks exactness on every tier and writes no artifact. The full run
// writes one JSON object (see README "LUT kernel architecture" for how
// to read it); the headline cell is (rows=256, ncodebooks=32, nout=128).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_env.hpp"
#include "maddness/amm.hpp"
#include "maddness/lut_kernel.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

using namespace ssma;
using Clock = std::chrono::steady_clock;

namespace {

volatile std::int16_t g_sink = 0;  // defeat dead-code elimination

template <class F>
double seconds_per_call(F&& f, double min_ms) {
  f();  // warm caches, fault pages
  const Clock::time_point t0 = Clock::now();
  int iters = 0;
  double elapsed_s = 0.0;
  do {
    f();
    ++iters;
    elapsed_s = std::chrono::duration<double>(Clock::now() - t0).count();
  } while (elapsed_s * 1000.0 < min_ms);
  return elapsed_s / iters;
}

maddness::Amm train_operator(Rng& rng, int ncodebooks, int nout) {
  const std::size_t d = static_cast<std::size_t>(ncodebooks) * 9;
  Matrix train(256, d);
  for (std::size_t i = 0; i < train.size(); ++i)
    train.data()[i] = static_cast<float>(rng.next_double(0, 220));
  Matrix w(d, static_cast<std::size_t>(nout));
  for (std::size_t i = 0; i < w.size(); ++i)
    w.data()[i] = static_cast<float>(rng.next_gaussian(0, 0.08));
  maddness::Config cfg;
  cfg.ncodebooks = ncodebooks;
  return maddness::Amm::train(cfg, train, w);
}

struct Measure {
  double rows_per_s = 0.0;
  double lut_gbps = 0.0;  // one gathered LUT byte per (row, codebook, out)
};

std::string measure_json(const Measure& m) {
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "{\"rows_per_s\":%.0f,\"lut_gbps\":%.3f}", m.rows_per_s,
                m.lut_gbps);
  return buf;
}

Measure make_measure(std::size_t rows, int ncb, int nout, double sec) {
  Measure m;
  m.rows_per_s = static_cast<double>(rows) / sec;
  m.lut_gbps = static_cast<double>(rows) * ncb * nout / sec / 1e9;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_amm_kernel.json";
  double min_ms = 150.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      smoke = true;
    else if (std::strncmp(argv[i], "--out=", 6) == 0)
      out_path = argv[i] + 6;
    else if (std::strncmp(argv[i], "--min-ms=", 9) == 0)
      min_ms = std::strtod(argv[i] + 9, nullptr);
    else {
      std::fprintf(stderr, "unknown arg: %s\n", argv[i]);
      return 1;
    }
  }
  if (smoke) min_ms = 2.0;

  std::vector<maddness::KernelTier> tiers{maddness::KernelTier::kScalar};
  if (maddness::kernel_tier_available(maddness::KernelTier::kSsse3))
    tiers.push_back(maddness::KernelTier::kSsse3);
  if (maddness::kernel_tier_available(maddness::KernelTier::kAvx2))
    tiers.push_back(maddness::KernelTier::kAvx2);

  struct CellSpec {
    std::size_t rows;
    int ncodebooks;
    int nout;
  };
  std::vector<CellSpec> specs;
  if (smoke) {
    specs = {{33, 4, 8}, {64, 4, 17}};
  } else {
    for (const int ncb : {8, 32})
      for (const int nout : {16, 128})
        for (const std::size_t rows : {std::size_t{64}, std::size_t{256},
                                       std::size_t{1024}})
          specs.push_back({rows, ncb, nout});
  }

  Rng rng(2026);
  std::string cells_json;
  double headline_speedup = 0.0;
  int trained_ncb = -1, trained_nout = -1;
  maddness::Amm amm;  // reused across row counts of one (ncb, nout) pair
  for (const CellSpec& spec : specs) {
    if (spec.ncodebooks != trained_ncb || spec.nout != trained_nout) {
      amm = train_operator(rng, spec.ncodebooks, spec.nout);
      trained_ncb = spec.ncodebooks;
      trained_nout = spec.nout;
    }
    const std::size_t d = static_cast<std::size_t>(spec.ncodebooks) * 9;
    Matrix x(spec.rows, d);
    for (std::size_t i = 0; i < x.size(); ++i)
      x.data()[i] = static_cast<float>(rng.next_double(0, 220));
    const maddness::QuantizedActivations q =
        maddness::quantize_activations(x, amm.activation_scale());

    // Correctness gate: the packed kernel must be bit-exact vs the
    // reference on this cell (all tiers) before any number is recorded.
    const auto ref_out = amm.apply_int16_reference(q);
    const maddness::EncodedBatch enc = amm.encode_batch(q);
    for (const maddness::KernelTier tier : tiers) {
      const auto got =
          maddness::apply_lut_packed(amm.packed_lut(), enc, tier);
      if (got != ref_out) {
        std::fprintf(stderr,
                     "MISMATCH: tier %s differs from reference at "
                     "rows=%zu ncb=%d nout=%d\n",
                     maddness::kernel_tier_name(tier), spec.rows,
                     spec.ncodebooks, spec.nout);
        return 2;
      }
    }

    // End-to-end old vs new (both include their encode step).
    const double ref_s = seconds_per_call(
        [&] {
          const auto out = amm.apply_int16_reference(q);
          g_sink = static_cast<std::int16_t>(g_sink + out[0]);
        },
        min_ms);
    const double packed_s = seconds_per_call(
        [&] {
          const auto out = amm.apply_int16(q);
          g_sink = static_cast<std::int16_t>(g_sink + out[0]);
        },
        min_ms);
    const Measure ref_m =
        make_measure(spec.rows, spec.ncodebooks, spec.nout, ref_s);
    const Measure packed_m =
        make_measure(spec.rows, spec.ncodebooks, spec.nout, packed_s);
    const double speedup = ref_s / packed_s;
    if (spec.rows == 256 && spec.ncodebooks == 32 && spec.nout == 128)
      headline_speedup = speedup;

    // Per-tier kernel-only numbers on the prebuilt encode cache.
    std::string tier_json;
    for (const maddness::KernelTier tier : tiers) {
      const double tier_s = seconds_per_call(
          [&] {
            const auto out =
                maddness::apply_lut_packed(amm.packed_lut(), enc, tier);
            g_sink = static_cast<std::int16_t>(g_sink + out[0]);
          },
          min_ms);
      if (!tier_json.empty()) tier_json += ",";
      tier_json += std::string("\"") + maddness::kernel_tier_name(tier) +
                   "\":" +
                   measure_json(make_measure(spec.rows, spec.ncodebooks,
                                             spec.nout, tier_s));
    }

    if (!cells_json.empty()) cells_json += ",";
    cells_json += "{\"rows\":" + std::to_string(spec.rows) +
                  ",\"ncodebooks\":" + std::to_string(spec.ncodebooks) +
                  ",\"nout\":" + std::to_string(spec.nout) +
                  ",\"ref\":" + measure_json(ref_m) +
                  ",\"packed\":" + measure_json(packed_m) + ",";
    char sp[48];
    std::snprintf(sp, sizeof(sp), "\"speedup\":%.2f,", speedup);
    cells_json += sp;
    cells_json += "\"kernel_only\":{" + tier_json + "}}";
    std::fprintf(stderr,
                 "rows=%4zu ncb=%2d nout=%3d  ref %.0f rows/s  packed "
                 "%.0f rows/s  speedup %.2fx\n",
                 spec.rows, spec.ncodebooks, spec.nout, ref_m.rows_per_s,
                 packed_m.rows_per_s, speedup);
  }

  if (smoke) {
    std::fprintf(stderr, "smoke ok (tiers:");
    for (const maddness::KernelTier tier : tiers)
      std::fprintf(stderr, " %s", maddness::kernel_tier_name(tier));
    std::fprintf(stderr, ")\n");
    return 0;
  }

  std::string tiers_json;
  for (const maddness::KernelTier tier : tiers) {
    if (!tiers_json.empty()) tiers_json += ",";
    tiers_json +=
        std::string("\"") + maddness::kernel_tier_name(tier) + "\"";
  }
  char headline[64];
  std::snprintf(headline, sizeof(headline),
                "\"headline_speedup_256x32x128\":%.2f", headline_speedup);
  const std::string json =
      std::string("{\"bench\":\"amm_kernel_sweep\",") +
      benchenv::machine_json() + ",\"tier_selected\":\"" +
      maddness::kernel_tier_name(maddness::select_kernel_tier()) +
      "\",\"tiers_available\":[" + tiers_json + "]," + headline +
      ",\"cells\":[" + cells_json + "]}";
  return benchenv::write_artifact(out_path, json) ? 0 : 1;
}
