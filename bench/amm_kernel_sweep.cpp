// Old-vs-new sweep of the AMM hot path. For each
// (rows, ncodebooks, nout) cell it measures:
//   * ref     — the pre-rewrite path: per-row tree-walk encode + naive
//               row->codebook->output accumulation over the proto-major
//               layout (apply_lut_reference),
//   * scalar_encode — the PR 3 shape: scalar codebook-major tree walk
//               (encode_all_codebook_major) feeding the packed kernel —
//               the "old" end-to-end the vectorized encoder replaces,
//   * packed  — the current serving path: vectorized batch encode into
//               reusable scratch + the packed output-major kernel, both
//               at their runtime-selected tiers,
//   * kernel_only — each available accumulation tier on a prebuilt
//               encode cache,
//   * encoder — each available encoder tier, encode only, plus the
//               cell's encode_fraction: the share of the new end-to-end
//               time spent encoding (how much of the encode/kernel gap
//               remains).
// Every cell also asserts bit-exactness (encoder tiers vs the per-row
// HashTree walk, packed kernel vs the reference accumulation) before
// timing — a perf artifact from a wrong kernel is worse than none.
//
// A final fusion cell times a 3-stage chained pipeline through
// engine::run_plan with the fused epilogue on and off (both checked
// bit-exact vs pipeline_reference_apply on every tier first) and lands
// in BENCH_roofline.json as the "fusion" object, including the
// intermediate bytes per row the fused walk never writes.
//
//   build/bench/amm_kernel_sweep [--smoke] [--out=BENCH_amm_kernel.json]
//                                [--min-ms=N]
//
// --smoke shrinks the workload to seconds (for the sanitizer CI job),
// checks exactness on every tier and writes no artifact. The full run
// writes one JSON object (see README "Encoder kernel architecture" for
// how to read it); the headline cell is (rows=256, ncodebooks=32,
// nout=128) with two speedups: headline_speedup_256x32x128 (vs the
// naive reference) and e2e_speedup_256x32x128 (vs the PR 3
// scalar-encode + packed-kernel end-to-end).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_env.hpp"
#include "engine/execution_plan.hpp"
#include "engine/model_registry.hpp"
#include "engine/pipeline.hpp"
#include "maddness/amm.hpp"
#include "maddness/encoder_kernel.hpp"
#include "maddness/lut_kernel.hpp"
#include "maddness/prototypes.hpp"
#include "telemetry/kernel_profile.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

using namespace ssma;
using Clock = std::chrono::steady_clock;

namespace {

volatile std::int16_t g_sink = 0;  // defeat dead-code elimination

template <class F>
double seconds_per_call(F&& f, double min_ms) {
  f();  // warm caches, fault pages
  const Clock::time_point t0 = Clock::now();
  int iters = 0;
  double elapsed_s = 0.0;
  do {
    f();
    ++iters;
    elapsed_s = std::chrono::duration<double>(Clock::now() - t0).count();
  } while (elapsed_s * 1000.0 < min_ms);
  return elapsed_s / iters;
}

maddness::Amm train_operator(Rng& rng, int ncodebooks, int nout) {
  const std::size_t d = static_cast<std::size_t>(ncodebooks) * 9;
  Matrix train(256, d);
  for (std::size_t i = 0; i < train.size(); ++i)
    train.data()[i] = static_cast<float>(rng.next_double(0, 220));
  Matrix w(d, static_cast<std::size_t>(nout));
  for (std::size_t i = 0; i < w.size(); ++i)
    w.data()[i] = static_cast<float>(rng.next_gaussian(0, 0.08));
  maddness::Config cfg;
  cfg.ncodebooks = ncodebooks;
  return maddness::Amm::train(cfg, train, w);
}

struct Measure {
  double rows_per_s = 0.0;
  double lut_gbps = 0.0;  // one gathered LUT byte per (row, codebook, out)
};

std::string measure_json(const Measure& m) {
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "{\"rows_per_s\":%.0f,\"lut_gbps\":%.3f}", m.rows_per_s,
                m.lut_gbps);
  return buf;
}

Measure make_measure(std::size_t rows, int ncb, int nout, double sec) {
  Measure m;
  m.rows_per_s = static_cast<double>(rows) / sec;
  m.lut_gbps = static_cast<double>(rows) * ncb * nout / sec / 1e9;
  return m;
}

/// Fused-vs-unfused pipeline cell: a 3-stage chained dense stack
/// (d -> d -> d -> nout, widths chained so every interior boundary is
/// ncb*9 wide) through engine::run_plan. Both walks are first checked
/// bit-exact vs pipeline_reference_apply on every available LUT tier;
/// the full run then times the runtime-selected tier and fills
/// `fusion`. Returns false on a mismatch.
bool run_fusion_cell(bool smoke, double min_ms,
                     const std::vector<maddness::KernelTier>& tiers,
                     telemetry::FusionRoofline& fusion) {
  Rng rng(777);
  const int ncb = smoke ? 4 : 32;
  const std::size_t rows = smoke ? 48 : 512;
  const std::size_t d = static_cast<std::size_t>(ncb) * 9;
  const std::size_t last_nout = smoke ? 16 : 128;

  Matrix calib(384, d);
  for (std::size_t i = 0; i < calib.size(); ++i)
    calib.data()[i] = static_cast<float>(rng.next_double(0, 200));
  auto gauss = [&rng](std::size_t r, std::size_t c) {
    Matrix m(r, c);
    for (std::size_t i = 0; i < m.size(); ++i)
      m.data()[i] = static_cast<float>(rng.next_gaussian(0, 0.08));
    return m;
  };
  maddness::Config cfg;
  cfg.ncodebooks = ncb;
  std::vector<maddness::Amm> stages;
  stages.reserve(3);  // the plan points into this vector: no realloc
  Matrix mid0, mid1;
  stages.push_back(
      engine::train_chained_stage(cfg, calib, gauss(d, d), &mid0));
  stages.push_back(
      engine::train_chained_stage(cfg, mid0, gauss(d, d), &mid1));
  stages.push_back(
      engine::train_chained_stage(cfg, mid1, gauss(d, last_nout), nullptr));
  const engine::ExecutionPlan plan = engine::ExecutionPlan::compile(stages);

  Matrix fresh(rows, d);
  for (std::size_t i = 0; i < fresh.size(); ++i)
    fresh.data()[i] = static_cast<float>(rng.next_double(0, 200));
  const maddness::QuantizedActivations q =
      maddness::quantize_activations(fresh, stages[0].activation_scale());

  const engine::ModelRef model = engine::ModelHandle::from_stages(
      "fusion", 1, {&stages[0], &stages[1], &stages[2]});
  const std::vector<std::int16_t> want =
      engine::pipeline_reference_apply(*model, q);

  engine::PlanScratch scratch;
  std::vector<std::int16_t> out;
  for (const maddness::KernelTier tier : tiers) {
    for (const bool fused : {true, false}) {
      engine::run_plan(plan, q, scratch, out, fused, tier);
      if (out != want) {
        std::fprintf(stderr,
                     "FUSION MISMATCH: %s walk on tier %s differs from "
                     "pipeline_reference_apply\n",
                     fused ? "fused" : "unfused",
                     maddness::kernel_tier_name(tier));
        return false;
      }
    }
  }
  if (smoke) return true;

  const maddness::KernelTier sel = maddness::select_kernel_tier();
  const double fused_s = seconds_per_call(
      [&] {
        engine::run_plan(plan, q, scratch, out, /*fused=*/true, sel);
        g_sink = static_cast<std::int16_t>(g_sink + out[0]);
      },
      min_ms);
  const double unfused_s = seconds_per_call(
      [&] {
        engine::run_plan(plan, q, scratch, out, /*fused=*/false, sel);
        g_sink = static_cast<std::int16_t>(g_sink + out[0]);
      },
      min_ms);
  fusion.stages = 3;
  fusion.tier = maddness::kernel_tier_name(sel);
  fusion.rows = rows;
  fusion.ncodebooks = static_cast<std::uint64_t>(ncb);
  fusion.inter_cols = d;
  fusion.bytes_avoided_per_row = plan.fused_bytes_avoided_per_row();
  fusion.fused_rows_per_s = static_cast<double>(rows) / fused_s;
  fusion.unfused_rows_per_s = static_cast<double>(rows) / unfused_s;
  fusion.speedup = unfused_s / fused_s;
  std::fprintf(stderr,
               "fusion 3-stage ncb=%d inter=%zu rows=%zu  fused %.0f "
               "rows/s  unfused %.0f rows/s  speedup %.2fx  "
               "bytes-avoided/row %zu\n",
               ncb, d, rows, fusion.fused_rows_per_s,
               fusion.unfused_rows_per_s, fusion.speedup,
               plan.fused_bytes_avoided_per_row());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_amm_kernel.json";
  std::string roofline_path = "BENCH_roofline.json";
  double min_ms = 150.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      smoke = true;
    else if (std::strncmp(argv[i], "--out=", 6) == 0)
      out_path = argv[i] + 6;
    else if (std::strncmp(argv[i], "--roofline-out=", 15) == 0)
      roofline_path = argv[i] + 15;
    else if (std::strncmp(argv[i], "--min-ms=", 9) == 0)
      min_ms = std::strtod(argv[i] + 9, nullptr);
    else {
      std::fprintf(stderr, "unknown arg: %s\n", argv[i]);
      return 1;
    }
  }
  if (smoke) min_ms = 2.0;

  std::vector<maddness::KernelTier> tiers{maddness::KernelTier::kScalar};
  if (maddness::kernel_tier_available(maddness::KernelTier::kSsse3))
    tiers.push_back(maddness::KernelTier::kSsse3);
  if (maddness::kernel_tier_available(maddness::KernelTier::kAvx2))
    tiers.push_back(maddness::KernelTier::kAvx2);
  std::vector<maddness::KernelTier> enc_tiers{maddness::KernelTier::kScalar};
  if (maddness::encoder_tier_available(maddness::KernelTier::kSsse3))
    enc_tiers.push_back(maddness::KernelTier::kSsse3);
  if (maddness::encoder_tier_available(maddness::KernelTier::kAvx2))
    enc_tiers.push_back(maddness::KernelTier::kAvx2);

  struct CellSpec {
    std::size_t rows;
    int ncodebooks;
    int nout;
  };
  std::vector<CellSpec> specs;
  if (smoke) {
    specs = {{33, 4, 8}, {64, 4, 17}};
  } else {
    for (const int ncb : {8, 32})
      for (const int nout : {16, 128})
        for (const std::size_t rows : {std::size_t{64}, std::size_t{256},
                                       std::size_t{1024}})
          specs.push_back({rows, ncb, nout});
  }

  Rng rng(2026);
  std::string cells_json;
  double headline_speedup = 0.0;
  double e2e_speedup = 0.0;
  // Headline-cell per-tier timings, fed into the roofline self-model.
  std::vector<std::pair<maddness::KernelTier, double>> roof_lut_s;
  std::vector<std::pair<maddness::KernelTier, double>> roof_enc_s;
  int trained_ncb = -1, trained_nout = -1;
  maddness::Amm amm;  // reused across row counts of one (ncb, nout) pair
  for (const CellSpec& spec : specs) {
    if (spec.ncodebooks != trained_ncb || spec.nout != trained_nout) {
      amm = train_operator(rng, spec.ncodebooks, spec.nout);
      trained_ncb = spec.ncodebooks;
      trained_nout = spec.nout;
    }
    const std::size_t d = static_cast<std::size_t>(spec.ncodebooks) * 9;
    Matrix x(spec.rows, d);
    for (std::size_t i = 0; i < x.size(); ++i)
      x.data()[i] = static_cast<float>(rng.next_double(0, 220));
    const maddness::QuantizedActivations q =
        maddness::quantize_activations(x, amm.activation_scale());

    // Correctness gates before any number is recorded: every encoder
    // tier must reproduce the per-row HashTree walk to the bit, and
    // every accumulation tier must match the reference decode.
    const auto ref_codes =
        maddness::encode_all_codebook_major(amm.cfg(), amm.trees(), q);
    maddness::EncodeScratch scratch;
    maddness::EncodedBatch enc;
    for (const maddness::KernelTier tier : enc_tiers) {
      maddness::encode_batch_packed(amm.encoder_bank(), q, tier, scratch,
                                    enc);
      if (enc.codes != ref_codes) {
        std::fprintf(stderr,
                     "ENCODER MISMATCH: tier %s differs from "
                     "HashTree::encode at rows=%zu ncb=%d\n",
                     maddness::kernel_tier_name(tier), spec.rows,
                     spec.ncodebooks);
        return 2;
      }
    }
    const auto ref_out = amm.apply_int16_reference(q);
    for (const maddness::KernelTier tier : tiers) {
      const auto got =
          maddness::apply_lut_packed(amm.packed_lut(), enc, tier);
      if (got != ref_out) {
        std::fprintf(stderr,
                     "MISMATCH: tier %s differs from reference at "
                     "rows=%zu ncb=%d nout=%d\n",
                     maddness::kernel_tier_name(tier), spec.rows,
                     spec.ncodebooks, spec.nout);
        return 2;
      }
    }

    // End-to-end: naive reference, the PR 3 scalar-encode + packed
    // kernel shape, and the current serving path (vectorized encode
    // into reusable scratch + packed kernel).
    std::vector<std::int16_t> out;
    const double ref_s = seconds_per_call(
        [&] {
          const auto r = amm.apply_int16_reference(q);
          g_sink = static_cast<std::int16_t>(g_sink + r[0]);
        },
        min_ms);
    const double scalar_enc_s = seconds_per_call(
        [&] {
          maddness::EncodedBatch old_enc;
          old_enc.rows = q.rows;
          old_enc.ncodebooks = amm.cfg().ncodebooks;
          old_enc.codes =
              maddness::encode_all_codebook_major(amm.cfg(), amm.trees(), q);
          amm.apply_int16(old_enc, out);
          g_sink = static_cast<std::int16_t>(g_sink + out[0]);
        },
        min_ms);
    const double packed_s = seconds_per_call(
        [&] {
          amm.encode_batch(q, scratch, enc);
          amm.apply_int16(enc, out);
          g_sink = static_cast<std::int16_t>(g_sink + out[0]);
        },
        min_ms);
    const Measure ref_m =
        make_measure(spec.rows, spec.ncodebooks, spec.nout, ref_s);
    const Measure scalar_enc_m =
        make_measure(spec.rows, spec.ncodebooks, spec.nout, scalar_enc_s);
    const Measure packed_m =
        make_measure(spec.rows, spec.ncodebooks, spec.nout, packed_s);
    const double speedup = ref_s / packed_s;
    const double cell_e2e_speedup = scalar_enc_s / packed_s;
    if (spec.rows == 256 && spec.ncodebooks == 32 && spec.nout == 128) {
      headline_speedup = speedup;
      e2e_speedup = cell_e2e_speedup;
    }

    // Per-tier kernel-only numbers on the prebuilt encode cache.
    std::string tier_json;
    for (const maddness::KernelTier tier : tiers) {
      const double tier_s = seconds_per_call(
          [&] {
            maddness::apply_lut_packed(amm.packed_lut(), enc, tier, out);
            g_sink = static_cast<std::int16_t>(g_sink + out[0]);
          },
          min_ms);
      if (spec.rows == 256 && spec.ncodebooks == 32 && spec.nout == 128)
        roof_lut_s.emplace_back(tier, tier_s);
      if (!tier_json.empty()) tier_json += ",";
      tier_json += std::string("\"") + maddness::kernel_tier_name(tier) +
                   "\":" +
                   measure_json(make_measure(spec.rows, spec.ncodebooks,
                                             spec.nout, tier_s));
    }

    // Per-tier encoder-only numbers (scratch reused, as serving does),
    // plus the selected-tier encode time for the encode_fraction.
    std::string enc_json;
    double enc_selected_s = 0.0;
    for (const maddness::KernelTier tier : enc_tiers) {
      const double tier_s = seconds_per_call(
          [&] {
            maddness::encode_batch_packed(amm.encoder_bank(), q, tier,
                                          scratch, enc);
            g_sink = static_cast<std::int16_t>(g_sink + enc.codes[0]);
          },
          min_ms);
      if (spec.rows == 256 && spec.ncodebooks == 32 && spec.nout == 128)
        roof_enc_s.emplace_back(tier, tier_s);
      if (tier == maddness::select_encoder_tier()) enc_selected_s = tier_s;
      if (!enc_json.empty()) enc_json += ",";
      char ebuf[64];
      std::snprintf(ebuf, sizeof(ebuf), "{\"rows_per_s\":%.0f}",
                    static_cast<double>(spec.rows) / tier_s);
      enc_json += std::string("\"") + maddness::kernel_tier_name(tier) +
                  "\":" + ebuf;
    }
    // Share of the new end-to-end spent encoding: what remains of the
    // encode/kernel gap at this cell.
    const double encode_fraction =
        packed_s > 0.0 ? enc_selected_s / packed_s : 0.0;

    if (!cells_json.empty()) cells_json += ",";
    cells_json += "{\"rows\":" + std::to_string(spec.rows) +
                  ",\"ncodebooks\":" + std::to_string(spec.ncodebooks) +
                  ",\"nout\":" + std::to_string(spec.nout) +
                  ",\"ref\":" + measure_json(ref_m) +
                  ",\"scalar_encode\":" + measure_json(scalar_enc_m) +
                  ",\"packed\":" + measure_json(packed_m) + ",";
    char sp[96];
    std::snprintf(sp, sizeof(sp),
                  "\"speedup\":%.2f,\"e2e_speedup\":%.2f,"
                  "\"encode_fraction\":%.3f,",
                  speedup, cell_e2e_speedup, encode_fraction);
    cells_json += sp;
    cells_json += "\"kernel_only\":{" + tier_json + "},\"encoder\":{" +
                  enc_json + "}}";
    std::fprintf(stderr,
                 "rows=%4zu ncb=%2d nout=%3d  ref %.0f rows/s  "
                 "scalar-enc %.0f rows/s  packed %.0f rows/s  "
                 "speedup %.2fx  e2e %.2fx  enc-frac %.2f\n",
                 spec.rows, spec.ncodebooks, spec.nout, ref_m.rows_per_s,
                 scalar_enc_m.rows_per_s, packed_m.rows_per_s, speedup,
                 cell_e2e_speedup, encode_fraction);
  }

  telemetry::FusionRoofline fusion;
  if (!run_fusion_cell(smoke, min_ms, tiers, fusion)) return 2;

  if (smoke) {
    std::fprintf(stderr, "smoke ok (kernel tiers:");
    for (const maddness::KernelTier tier : tiers)
      std::fprintf(stderr, " %s", maddness::kernel_tier_name(tier));
    std::fprintf(stderr, "; encoder tiers:");
    for (const maddness::KernelTier tier : enc_tiers)
      std::fprintf(stderr, " %s", maddness::kernel_tier_name(tier));
    std::fprintf(stderr, ")\n");
    return 0;
  }

  std::string tiers_json;
  for (const maddness::KernelTier tier : tiers) {
    if (!tiers_json.empty()) tiers_json += ",";
    tiers_json +=
        std::string("\"") + maddness::kernel_tier_name(tier) + "\"";
  }
  std::string enc_tiers_json;
  for (const maddness::KernelTier tier : enc_tiers) {
    if (!enc_tiers_json.empty()) enc_tiers_json += ",";
    enc_tiers_json +=
        std::string("\"") + maddness::kernel_tier_name(tier) + "\"";
  }
  // Roofline self-model from the headline cell (rows=256, ncb=32,
  // nout=128): achieved vs theoretical GB/s per tier for both kernels,
  // in the style of an operations/data-movement analysis. The dense
  // shape the AMM replaces is (rows x d) @ (d x nout) with d = ncb*9.
  telemetry::RooflineReport roof;
  roof.cpu_ghz = telemetry::estimate_cpu_ghz();
  roof.headline_cell = "rows=256 ncb=32 nout=128";
  constexpr std::uint64_t kRoofRows = 256, kRoofNcb = 32, kRoofNout = 128;
  constexpr std::uint64_t kRoofD = kRoofNcb * 9;
  for (const auto& [tier, sec] : roof_lut_s) {
    roof.entries.push_back(telemetry::make_roofline_entry(
        "lut_accumulate", static_cast<int>(tier), kRoofRows, kRoofNcb,
        kRoofNout, kRoofD,
        static_cast<double>(kRoofRows * kRoofNcb * kRoofNout), sec,
        roof.cpu_ghz));
  }
  for (const auto& [tier, sec] : roof_enc_s) {
    // d=0: MACs-avoided is a property of the LUT substitution, not the
    // encoder — report it as zero here rather than a fabricated count.
    roof.entries.push_back(telemetry::make_roofline_entry(
        "encode", static_cast<int>(tier), kRoofRows, kRoofNcb, kRoofD,
        /*d=*/0, static_cast<double>(kRoofRows * kRoofNcb * 4), sec,
        roof.cpu_ghz));
  }
  roof.fusion = fusion;
  if (!benchenv::write_artifact(roofline_path, roof.json())) return 1;

  // Summary of the selected tiers' roofline position for the main
  // artifact.
  double lut_frac = 0.0, enc_frac = 0.0, lut_gbps = 0.0, enc_gbps = 0.0;
  const char* sel_lut =
      maddness::kernel_tier_name(maddness::select_kernel_tier());
  const char* sel_enc =
      maddness::kernel_tier_name(maddness::select_encoder_tier());
  for (const telemetry::RooflineEntry& e : roof.entries) {
    if (e.kernel == "lut_accumulate" && e.tier == sel_lut) {
      lut_frac = e.frac_of_peak;
      lut_gbps = e.achieved_gbps;
    }
    if (e.kernel == "encode" && e.tier == sel_enc) {
      enc_frac = e.frac_of_peak;
      enc_gbps = e.achieved_gbps;
    }
  }
  char roofsum[256];
  std::snprintf(roofsum, sizeof(roofsum),
                "\"roofline\":{\"cpu_ghz\":%.3f,"
                "\"lut_achieved_gbps\":%.3f,\"lut_frac_of_peak\":%.4f,"
                "\"encode_achieved_gbps\":%.3f,"
                "\"encode_frac_of_peak\":%.4f}",
                roof.cpu_ghz, lut_gbps, lut_frac, enc_gbps, enc_frac);

  char headline[128];
  std::snprintf(headline, sizeof(headline),
                "\"headline_speedup_256x32x128\":%.2f,"
                "\"e2e_speedup_256x32x128\":%.2f",
                headline_speedup, e2e_speedup);
  const std::string json =
      std::string("{\"bench\":\"amm_kernel_sweep\",") +
      benchenv::machine_json() + ",\"tier_selected\":\"" +
      maddness::kernel_tier_name(maddness::select_kernel_tier()) +
      "\",\"tiers_available\":[" + tiers_json +
      "],\"encoder_tier_selected\":\"" +
      maddness::kernel_tier_name(maddness::select_encoder_tier()) +
      "\",\"encoder_tiers_available\":[" + enc_tiers_json + "]," +
      headline + "," + roofsum + ",\"cells\":[" + cells_json + "]}";
  return benchenv::write_artifact(out_path, json) ? 0 : 1;
}
