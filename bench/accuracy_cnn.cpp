// Reproduces the Table II accuracy row. The paper reports ResNet9 on
// CIFAR-10: 89.0% for the analog [21], 92.6% for both the digital [22]
// and the proposed macro — i.e. the all-digital MADDNESS substitution
// preserves the MADDNESS-network accuracy exactly, because the hardware
// computes the same INT8/int16 arithmetic bit-for-bit.
//
// CIFAR-10 is not available offline, so the experiment runs on the
// synthetic 10-class dataset (DESIGN.md §3): train a ResNet9-style CNN
// from scratch, substitute every 3x3 conv with MADDNESS LUTs, and report
//   float accuracy  vs  MADDNESS-software  vs  MADDNESS-on-simulated-HW
// (the last via the event-driven macro on a sample, asserting
// bit-exactness). Set SSMA_FULL=1 for the larger configuration.
#include <cstdio>
#include <cstdlib>

#include "core/accelerator.hpp"
#include "nn/dataset.hpp"
#include "nn/loss.hpp"
#include "nn/maddness_network.hpp"
#include "nn/resnet.hpp"
#include "nn/trainer.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace ssma;

namespace {

double accuracy_via(const nn::MaddnessNetwork& mnet, const nn::Dataset& ds,
                    bool use_amm) {
  std::size_t correct = 0;
  const std::size_t batch = 32;
  for (std::size_t start = 0; start < ds.size(); start += batch) {
    const std::size_t end = std::min(ds.size(), start + batch);
    std::vector<std::size_t> idx;
    for (std::size_t i = start; i < end; ++i) idx.push_back(i);
    auto [x, labels] = nn::take_batch(ds, idx);
    const auto preds = nn::predict(mnet.forward(x, use_amm));
    for (std::size_t i = 0; i < preds.size(); ++i)
      correct += (preds[i] == labels[i]);
  }
  return static_cast<double>(correct) / static_cast<double>(ds.size());
}

}  // namespace

int main() {
  const bool full = std::getenv("SSMA_FULL") != nullptr;
  const std::size_t img = full ? 16 : 8;
  const std::size_t width = full ? 12 : 8;
  const std::size_t ntrain = full ? 2000 : 600;
  const std::size_t ntest = full ? 600 : 300;
  const std::size_t epochs = full ? 8 : 6;

  std::printf(
      "== Table II accuracy row: CNN accuracy under MADDNESS substitution "
      "==\n"
      "Substitute dataset: synthetic 10-class images %zux%zu (CIFAR-10 is\n"
      "not available offline; the claim under test is *relative*).\n"
      "ResNet9-style width=%zu, %zu train / %zu test, %zu epochs.%s\n\n",
      img, img, width, ntrain, ntest, epochs,
      full ? "" : " (set SSMA_FULL=1 for the larger run)");

  Rng rng(20250611);
  nn::Dataset train_set = nn::make_synthetic_dataset(rng, ntrain, img, img);
  nn::Dataset test_set = nn::make_synthetic_dataset(rng, ntest, img, img);

  nn::ResnetConfig rc;
  rc.width = width;
  rc.img_h = img;
  rc.img_w = img;
  nn::Network net = nn::make_resnet9(rc, rng);
  std::printf("Training float baseline (%zu parameters)...\n",
              net.num_parameters());

  nn::TrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = 32;
  tc.lr_max = 0.02;
  tc.verbose = true;
  Rng trng(7);
  nn::train(net, train_set, tc, trng);
  const double float_acc = nn::evaluate(net, test_set);

  std::printf("\nSubstituting all 3x3 convs with MADDNESS LUTs...\n");
  // Calibration: a training subset.
  std::vector<std::size_t> calib_idx;
  for (std::size_t i = 0; i < std::min<std::size_t>(128, ntrain); ++i)
    calib_idx.push_back(i);
  auto [calib, calib_labels] = nn::take_batch(train_set, calib_idx);
  (void)calib_labels;
  nn::MaddnessNetwork mnet(net, calib);
  std::printf("Substituted %zu conv layers.\n",
              mnet.num_substituted_convs());

  const double folded_acc = accuracy_via(mnet, test_set, /*use_amm=*/false);
  const double amm_raw_acc = accuracy_via(mnet, test_set, /*use_amm=*/true);

  // Codebook-aware recovery: the MADDNESS line of work trains *with* the
  // quantization in the loop; the cheap equivalent is re-fitting the
  // final classifier on substituted features.
  std::printf("Fine-tuning the final classifier on substituted features...\n");
  mnet.fine_tune_classifier(train_set.images, train_set.labels,
                            /*epochs=*/40, /*lr=*/0.05);
  const double amm_acc = accuracy_via(mnet, test_set, /*use_amm=*/true);

  // Hardware consistency: drive the event-driven macro with the first
  // substituted conv on a sample and check bit-exactness against the
  // software AMM path — this is why HW accuracy == SW accuracy.
  bool hw_bit_exact = true;
  {
    const nn::MaddnessConv2d& mc = mnet.substituted_conv(0);
    const maddness::Amm& amm = mc.amm();
    std::vector<std::size_t> sample_idx = {0, 1};
    auto [x, l] = nn::take_batch(test_set, sample_idx);
    (void)l;
    const Matrix cols = nn::im2col(x, 3, mc.stride(), mc.pad());
    Matrix probe(std::min<std::size_t>(cols.rows(), 24), cols.cols());
    for (std::size_t r = 0; r < probe.rows(); ++r)
      for (std::size_t c = 0; c < probe.cols(); ++c)
        probe(r, c) = cols(r, c);
    const auto q =
        maddness::quantize_activations(probe, amm.activation_scale());
    core::AcceleratorOptions ao;
    ao.ndec = 8;
    ao.ns = 4;
    core::Accelerator acc(ao);
    const auto hw = acc.run(amm, q);
    hw_bit_exact = (hw.outputs == amm.apply_int16(q));
  }

  std::printf("\n");
  TextTable t({"model", "test accuracy", "paper analogue"});
  t.add_row({"float CNN (baseline)", TextTable::pct(float_acc),
             "ResNet9 float ~93-94%"});
  t.add_row({"BN-folded exact", TextTable::pct(folded_acc),
             "== float (fold is exact)"});
  t.add_row({"MADDNESS (no retraining)", TextTable::pct(amm_raw_acc),
             "post-hoc PQ, pre-recovery"});
  t.add_row({"MADDNESS + classifier fine-tune", TextTable::pct(amm_acc),
             "[22] digital: 92.6%"});
  t.add_row({"MADDNESS on simulated macro",
             std::string(hw_bit_exact ? "== software (bit-exact)" : "MISMATCH!"),
             "proposed: 92.6% (== [22])"});
  std::printf("%s\n", t.render().c_str());

  std::printf(
      "Claim reproduced: the all-digital macro loses *zero* accuracy vs\n"
      "software MADDNESS (bit-exact arithmetic: %s), and the MADDNESS\n"
      "substitution costs %.1f points vs float on this task (paper's\n"
      "CIFAR-10 analogue: 92.6%% vs float baseline).\n",
      hw_bit_exact ? "verified" : "FAILED",
      (float_acc - amm_acc) * 100.0);
  return hw_bit_exact ? 0 : 1;
}
