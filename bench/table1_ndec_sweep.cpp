// Reproduces Table I: energy and area efficiency for Ndec in {4,8,16,32}
// at NS=32, TTG, 25 degC, for 0.5 V and 0.8 V, with the paper's values
// and the improvement-over-Ndec=4 percentages the paper quotes.
#include <cstdio>

#include "core/experiments.hpp"
#include "util/table.hpp"

int main() {
  using namespace ssma;

  std::printf(
      "== Table I: performance for different Ndec (NS=32, TTG, 25C) ==\n\n");

  const auto rows = core::run_table1_sweep();
  const auto golden = core::table1_paper_values();

  auto improvement = [](double v, double base) {
    return "+" + TextTable::num((v / base - 1.0) * 100.0, 1) + "%";
  };

  std::printf("Energy efficiency [TOPS/W]\n");
  TextTable tw({"voltage", "Ndec=4", "Ndec=8", "Ndec=16", "Ndec=32"});
  tw.add_row({"0.5V (ours)", TextTable::num(rows[0].eff_05v_tops_per_w, 1),
              TextTable::num(rows[1].eff_05v_tops_per_w, 1) + " (" +
                  improvement(rows[1].eff_05v_tops_per_w,
                              rows[0].eff_05v_tops_per_w) + ")",
              TextTable::num(rows[2].eff_05v_tops_per_w, 1) + " (" +
                  improvement(rows[2].eff_05v_tops_per_w,
                              rows[0].eff_05v_tops_per_w) + ")",
              TextTable::num(rows[3].eff_05v_tops_per_w, 1) + " (" +
                  improvement(rows[3].eff_05v_tops_per_w,
                              rows[0].eff_05v_tops_per_w) + ")"});
  tw.add_row({"0.5V (paper)", "167.5", "171.8 (+2.6%)", "174.0 (+3.9%)",
              "174.9 (+4.4%)"});
  tw.add_row({"0.8V (ours)", TextTable::num(rows[0].eff_08v_tops_per_w, 1),
              TextTable::num(rows[1].eff_08v_tops_per_w, 1),
              TextTable::num(rows[2].eff_08v_tops_per_w, 1),
              TextTable::num(rows[3].eff_08v_tops_per_w, 1)});
  tw.add_row({"0.8V (paper)", "73.0", "74.4 (+1.0%)", "75.1 (+1.0%)",
              "75.4 (+1.0%)"});
  std::printf("%s\n", tw.render().c_str());

  std::printf("Area efficiency [TOPS/mm2]\n");
  TextTable ta({"voltage", "Ndec=4", "Ndec=8", "Ndec=16", "Ndec=32"});
  ta.add_row({"0.5V (ours)",
              TextTable::num(rows[0].eff_05v_tops_per_mm2, 2),
              TextTable::num(rows[1].eff_05v_tops_per_mm2, 2),
              TextTable::num(rows[2].eff_05v_tops_per_mm2, 2),
              TextTable::num(rows[3].eff_05v_tops_per_mm2, 2)});
  ta.add_row({"0.5V (paper)", "1.4", "1.8 (+28.6%)", "2.0 (+42.9%)",
              "2.0 (+42.9%)"});
  ta.add_row({"0.8V (ours)",
              TextTable::num(rows[0].eff_08v_tops_per_mm2, 2),
              TextTable::num(rows[1].eff_08v_tops_per_mm2, 2),
              TextTable::num(rows[2].eff_08v_tops_per_mm2, 2),
              TextTable::num(rows[3].eff_08v_tops_per_mm2, 2)});
  ta.add_row({"0.8V (paper)", "8.7", "10.8 (+24.1%)", "11.3 (+29.9%)",
              "11.5 (+32.2%)"});
  std::printf("%s\n", ta.render().c_str());

  // The paper's design recommendation follows from the same data:
  const double gain_32_16 =
      (rows[3].eff_05v_tops_per_w / rows[2].eff_05v_tops_per_w - 1.0) * 100.0;
  std::printf(
      "Gain from Ndec=16 -> 32 is only %.1f%% (paper: 0-2%%): with larger\n"
      "Ndec increasingly exposed to local variation, Ndec=16 is the\n"
      "recommended balance — see the ablation_variation bench.\n",
      gain_32_16);
  return 0;
}
