// Google-benchmark microbenchmarks of the software kernels: exact GEMM vs
// MADDNESS approximate matmul (encode + lookup-accumulate), hash-tree
// encoding, and the event-driven simulator's token rate — the software
// cost picture that motivates hardware acceleration in the first place
// (GPUs lack PQ/lookup primitives; Sec. I).
#include <benchmark/benchmark.h>

#include "maddness/amm.hpp"
#include "sim/macro.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

using namespace ssma;

namespace {

Matrix random_activations(Rng& rng, std::size_t n, std::size_t d) {
  Matrix x(n, d);
  for (std::size_t i = 0; i < x.size(); ++i)
    x.data()[i] = static_cast<float>(rng.next_double(0, 200));
  return x;
}

Matrix random_weights(Rng& rng, std::size_t d, std::size_t o) {
  Matrix w(d, o);
  for (std::size_t i = 0; i < w.size(); ++i)
    w.data()[i] = static_cast<float>(rng.next_gaussian(0, 0.05));
  return w;
}

void BM_ExactGemm(benchmark::State& state) {
  const std::size_t n = state.range(0);
  Rng rng(1);
  const Matrix x = random_activations(rng, n, 144);  // 16ch x 9
  const Matrix w = random_weights(rng, 144, 16);
  Matrix y;
  for (auto _ : state) {
    gemm(x, w, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * n * 144 * 16 * 2);
}
BENCHMARK(BM_ExactGemm)->Arg(256)->Arg(1024);

void BM_MaddnessApply(benchmark::State& state) {
  // Full decode through the packed, tier-dispatched kernel (encode +
  // lookup-accumulate). Compare against BM_MaddnessApplyReference for
  // the cost of the pre-rewrite naive accumulation.
  const std::size_t n = state.range(0);
  Rng rng(2);
  maddness::Config cfg;
  cfg.ncodebooks = 16;
  const Matrix x = random_activations(rng, n, 144);
  const Matrix w = random_weights(rng, 144, 16);
  const auto amm = maddness::Amm::train(cfg, x, w);
  const auto q = maddness::quantize_activations(x, amm.activation_scale());
  for (auto _ : state) {
    auto y = amm.apply_int16(q);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * n * 144 * 16 * 2);
}
BENCHMARK(BM_MaddnessApply)->Arg(256)->Arg(1024);

void BM_MaddnessApplyReference(benchmark::State& state) {
  const std::size_t n = state.range(0);
  Rng rng(2);
  maddness::Config cfg;
  cfg.ncodebooks = 16;
  const Matrix x = random_activations(rng, n, 144);
  const Matrix w = random_weights(rng, 144, 16);
  const auto amm = maddness::Amm::train(cfg, x, w);
  const auto q = maddness::quantize_activations(x, amm.activation_scale());
  for (auto _ : state) {
    auto y = amm.apply_int16_reference(q);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * n * 144 * 16 * 2);
}
BENCHMARK(BM_MaddnessApplyReference)->Arg(256)->Arg(1024);

void BM_PackedLutKernel(benchmark::State& state) {
  // Accumulation only, on a prebuilt encode cache, at a fixed dispatch
  // tier (0 = scalar, 1 = ssse3, 2 = avx2); unavailable tiers skip.
  const auto tier = static_cast<maddness::KernelTier>(state.range(0));
  if (!maddness::kernel_tier_available(tier)) {
    state.SkipWithError("tier not available on this build/CPU");
    return;
  }
  const std::size_t n = 1024;
  Rng rng(5);
  maddness::Config cfg;
  cfg.ncodebooks = 32;
  const Matrix x = random_activations(rng, n, 32 * 9);
  const Matrix w = random_weights(rng, 32 * 9, 128);
  const auto amm = maddness::Amm::train(cfg, x, w);
  const auto q = maddness::quantize_activations(x, amm.activation_scale());
  const maddness::EncodedBatch enc = amm.encode_batch(q);
  for (auto _ : state) {
    auto y = maddness::apply_lut_packed(amm.packed_lut(), enc, tier);
    benchmark::DoNotOptimize(y.data());
  }
  // One gathered LUT byte per (row, codebook, output).
  state.SetBytesProcessed(state.iterations() * n * 32 * 128);
  state.SetLabel(maddness::kernel_tier_name(tier));
}
BENCHMARK(BM_PackedLutKernel)->Arg(0)->Arg(1)->Arg(2);

void BM_TreeEncode(benchmark::State& state) {
  // Per-row reference walk — the scalar baseline BM_BatchEncoder is
  // measured against (and the bit-exactness oracle for all its tiers).
  Rng rng(3);
  maddness::HashTree tree;
  for (int l = 0; l < 4; ++l) tree.set_split_dim(l, rng.next_int(0, 8));
  for (int l = 0; l < 4; ++l)
    for (int nd = 0; nd < (1 << l); ++nd)
      tree.set_threshold(l, nd,
                         static_cast<std::uint8_t>(rng.next_int(1, 254)));
  std::vector<std::uint8_t> data(9 * 4096);
  for (auto& v : data) v = static_cast<std::uint8_t>(rng.next_int(0, 255));
  for (auto _ : state) {
    int acc = 0;
    for (std::size_t i = 0; i < 4096; ++i)
      acc += tree.encode(data.data() + i * 9);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_TreeEncode);

void BM_BatchEncoder(benchmark::State& state) {
  // The vectorized batch encoder at a fixed dispatch tier (0 = scalar,
  // 1 = ssse3, 2 = avx2); unavailable tiers skip. Scratch is reused
  // across iterations, as the serve worker shards do.
  const auto tier = static_cast<maddness::KernelTier>(state.range(0));
  if (!maddness::encoder_tier_available(tier)) {
    state.SkipWithError("tier not available on this build/CPU");
    return;
  }
  const std::size_t n = 1024;
  Rng rng(6);
  maddness::Config cfg;
  cfg.ncodebooks = 32;
  const Matrix x = random_activations(rng, n, 32 * 9);
  const Matrix w = random_weights(rng, 32 * 9, 16);
  const auto amm = maddness::Amm::train(cfg, x, w);
  const auto q = maddness::quantize_activations(x, amm.activation_scale());
  maddness::EncodeScratch scratch;
  maddness::EncodedBatch enc;
  for (auto _ : state) {
    maddness::encode_batch_packed(amm.encoder_bank(), q, tier, scratch,
                                  enc);
    benchmark::DoNotOptimize(enc.codes.data());
  }
  // One leaf code per (row, codebook).
  state.SetItemsProcessed(state.iterations() * n);
  state.SetBytesProcessed(state.iterations() * n * 32);
  state.SetLabel(maddness::kernel_tier_name(tier));
}
BENCHMARK(BM_BatchEncoder)->Arg(0)->Arg(1)->Arg(2);

void BM_EventSimTokens(benchmark::State& state) {
  const int ndec = static_cast<int>(state.range(0));
  const int ns = 4;
  Rng rng(4);
  std::vector<maddness::HashTree> trees(ns);
  for (auto& t : trees) {
    for (int l = 0; l < 4; ++l) t.set_split_dim(l, rng.next_int(0, 8));
    for (int l = 0; l < 4; ++l)
      for (int nd = 0; nd < (1 << l); ++nd)
        t.set_threshold(l, nd,
                        static_cast<std::uint8_t>(rng.next_int(1, 254)));
  }
  std::vector<std::vector<std::array<std::int8_t, 16>>> luts(
      ns, std::vector<std::array<std::int8_t, 16>>(ndec));
  for (auto& b : luts)
    for (auto& tb : b)
      for (auto& e : tb)
        e = static_cast<std::int8_t>(rng.next_int(-127, 127));
  std::vector<std::vector<sim::Subvec>> inputs(
      16, std::vector<sim::Subvec>(ns));
  for (auto& tok : inputs)
    for (auto& sv : tok)
      for (auto& v : sv) v = static_cast<std::uint8_t>(rng.next_int(0, 255));

  for (auto _ : state) {
    sim::MacroConfig mc;
    mc.ndec = ndec;
    mc.ns = ns;
    sim::Macro macro(mc);
    macro.program(trees, luts, std::vector<std::int16_t>(ndec, 0));
    auto res = macro.run(inputs);
    benchmark::DoNotOptimize(res.outputs.data());
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_EventSimTokens)->Arg(4)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
