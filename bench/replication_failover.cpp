// Replication failover bench: the distributed-HA pair measured end to
// end, sweeping checkpoint cadence x acked-write mode.
//
// Each cell runs a full leader/follower pair in-process: a leader
// InferenceServer with journal + checkpoints + ReplicationLog, a
// ReplicaApplier streaming into a warm standby, a serial closed-loop
// load of acked writes, then a failover — the leader stops, the
// follower promotes, and the first post-promotion response is checked
// bit-exact against the fault-free reference. Per cell it records:
//
//   - acked-write latency (mean/p99 us): what the durability contract
//     costs the client. kSync waits for the replication watermark on
//     every ack, kWindow(4) bounds the acked-but-unreplicated run,
//     kAsync never waits — the sweep quantifies the RPO/latency trade.
//   - replication lag at last ack (records/bytes): how far behind a
//     follower may be at the moment a leader dies, per mode.
//   - failover time (ms): promote() call to first bit-exact response
//     from the promoted server, plus the promote-internal
//     seal_to_serving_ms split out.
//
// The headline is the sync-over-async acked-write latency multiple at
// the middle checkpoint cadence — the price of zero RPO.
//
// Results are machine-dependent: both halves of the pair share one
// host, so on the 1-CPU CI container the leader, follower and loopback
// stream all contend for the same core — absolute numbers there bound
// the protocol overhead, not achievable failover time. The artifact
// records the CPU model and logical core count for that reason.
//
//   build/bench/replication_failover [--requests=N] [--rows=N]
//                                    [--out=BENCH_replication.json]
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_env.hpp"
#include "maddness/amm.hpp"
#include "serve/recovery/checkpoint.hpp"
#include "serve/recovery/journal.hpp"
#include "serve/replication/replica_applier.hpp"
#include "serve/replication/replication.hpp"
#include "serve/server.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

using namespace ssma;
using serve::replication::AckMode;

namespace {

/// Self-cleaning scratch directory (the bench's TmpDir — the test
/// helper depends on gtest).
class Scratch {
 public:
  explicit Scratch(const std::string& tag) {
    static int counter = 0;
    path_ = std::filesystem::temp_directory_path() /
            ("ssma-bench-" + tag + "-" + std::to_string(::getpid()) + "-" +
             std::to_string(counter++));
    std::filesystem::create_directories(path_);
  }
  ~Scratch() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  std::filesystem::path path_;
};

struct Operator {
  maddness::Amm amm;
  maddness::QuantizedActivations pool;
};

Operator train_operator(std::uint64_t seed) {
  Rng rng(seed);
  maddness::Config cfg;
  cfg.ncodebooks = 4;
  const std::size_t d = static_cast<std::size_t>(cfg.total_dims());
  Matrix train(512, d);
  for (std::size_t i = 0; i < train.size(); ++i)
    train.data()[i] = static_cast<float>(rng.next_double(0, 220));
  Matrix w(d, 8);
  for (std::size_t i = 0; i < w.size(); ++i)
    w.data()[i] = static_cast<float>(rng.next_gaussian(0, 0.08));
  Operator op{maddness::Amm::train(cfg, train, w), {}};
  Matrix fresh(256, d);
  for (std::size_t i = 0; i < fresh.size(); ++i)
    fresh.data()[i] = static_cast<float>(rng.next_double(0, 220));
  op.pool =
      maddness::quantize_activations(fresh, op.amm.activation_scale());
  return op;
}

std::vector<std::uint8_t> codes_for(const Operator& op, std::size_t id,
                                    std::size_t rows) {
  std::vector<std::uint8_t> codes;
  std::size_t r = id % op.pool.rows;
  for (std::size_t i = 0; i < rows; ++i) {
    codes.insert(codes.end(), op.pool.row(r),
                 op.pool.row(r) + op.pool.cols);
    r = (r + 1) % op.pool.rows;
  }
  return codes;
}

std::vector<std::int16_t> expected_for(
    const Operator& op, const std::vector<std::uint8_t>& codes,
    std::size_t rows) {
  maddness::QuantizedActivations q;
  q.rows = rows;
  q.cols = op.pool.cols;
  q.scale = op.pool.scale;
  q.codes = codes;
  return op.amm.apply_int16(q);
}

struct CellResult {
  std::size_t checkpoint_every = 0;
  std::string ack_mode;
  double acked_us_mean = 0.0;
  double acked_us_p99 = 0.0;
  double tokens_per_sec = 0.0;
  std::uint64_t lag_records_at_last_ack = 0;
  std::uint64_t lag_bytes_at_last_ack = 0;
  std::uint64_t sync_degraded = 0;
  std::uint64_t checkpoints_shipped = 0;
  double failover_ms = 0.0;        ///< promote() call -> first response
  double seal_to_serving_ms = 0.0;
  std::uint64_t durable_seq = 0;
  std::uint64_t applied = 0;
  std::uint64_t backfilled = 0;

  std::string json() const {
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\"checkpoint_every\":%zu,\"ack_mode\":\"%s\","
        "\"acked_us_mean\":%.1f,\"acked_us_p99\":%.1f,"
        "\"tokens_per_sec\":%.0f,"
        "\"lag_records_at_last_ack\":%llu,"
        "\"lag_bytes_at_last_ack\":%llu,"
        "\"sync_degraded\":%llu,\"checkpoints_shipped\":%llu,"
        "\"failover_ms\":%.2f,\"seal_to_serving_ms\":%.2f,"
        "\"durable_seq\":%llu,\"applied\":%llu,\"backfilled\":%llu,"
        "\"first_response_bit_exact\":true}",
        checkpoint_every, ack_mode.c_str(), acked_us_mean, acked_us_p99,
        tokens_per_sec,
        static_cast<unsigned long long>(lag_records_at_last_ack),
        static_cast<unsigned long long>(lag_bytes_at_last_ack),
        static_cast<unsigned long long>(sync_degraded),
        static_cast<unsigned long long>(checkpoints_shipped), failover_ms,
        seal_to_serving_ms, static_cast<unsigned long long>(durable_seq),
        static_cast<unsigned long long>(applied),
        static_cast<unsigned long long>(backfilled));
    return buf;
  }
};

/// One full pair lifecycle. Returns false (and logs) when any
/// correctness invariant breaks — the bench is also a gate.
bool run_cell(const Operator& op, std::size_t checkpoint_every,
              AckMode mode, std::uint64_t window, std::size_t requests,
              std::size_t rows, CellResult* out) {
  using Clock = std::chrono::steady_clock;
  out->checkpoint_every = checkpoint_every;
  out->ack_mode = serve::replication::to_string(mode);
  if (mode == AckMode::kWindow)
    out->ack_mode += "(" + std::to_string(window) + ")";

  Scratch dir("failover");
  serve::recovery::CheckpointManager ckpts(dir.file("leader-ckpts"));
  serve::recovery::RequestJournal journal(dir.file("leader.jnl"));
  serve::replication::ReplicationOptions ropts;
  ropts.ack_mode = mode;
  ropts.window = window;
  ropts.ack_timeout = std::chrono::milliseconds(10000);
  serve::replication::ReplicationLog repl(journal, &ckpts, ropts);

  serve::ServerOptions opts;
  opts.num_workers = 2;
  opts.queue_capacity = 1024;
  opts.recovery.journal = &journal;
  opts.recovery.checkpoints = &ckpts;
  opts.recovery.checkpoint_every = checkpoint_every;
  opts.recovery.replication = &repl;
  serve::InferenceServer server(opts);
  server.register_model("m", op.amm);

  serve::replication::ApplierOptions aopts;
  aopts.leader_port = repl.port();
  aopts.dir = dir.file("follower");
  aopts.server = opts;
  aopts.checkpoint_every = checkpoint_every;
  serve::replication::ReplicaApplier applier(aopts);
  if (!repl.wait_follower(1, std::chrono::milliseconds(10000))) {
    std::fprintf(stderr, "cell %s: follower never handshook\n",
                 out->ack_mode.c_str());
    return false;
  }

  // Serial closed loop: each iteration is one acked write, so the
  // latency sample includes exactly what the ack mode adds.
  std::vector<double> lat_us;
  lat_us.reserve(requests);
  const auto load_t0 = Clock::now();
  for (std::size_t i = 0; i < requests; ++i) {
    const auto t0 = Clock::now();
    auto fut = server.submit("m", codes_for(op, i, rows), rows);
    fut.get();
    lat_us.push_back(
        std::chrono::duration<double, std::micro>(Clock::now() - t0)
            .count());
  }
  const double load_s =
      std::chrono::duration<double>(Clock::now() - load_t0).count();
  const auto st = repl.stats();  // lag as the last ack returned
  out->lag_records_at_last_ack = st.lag_records;
  out->lag_bytes_at_last_ack = st.lag_bytes;
  out->sync_degraded = st.sync_degraded;

  double sum = 0.0;
  for (const double v : lat_us) sum += v;
  out->acked_us_mean = sum / static_cast<double>(lat_us.size());
  std::sort(lat_us.begin(), lat_us.end());
  out->acked_us_p99 =
      lat_us[std::min(lat_us.size() - 1,
                      static_cast<std::size_t>(
                          0.99 * static_cast<double>(lat_us.size())))];
  out->tokens_per_sec =
      load_s > 0.0
          ? static_cast<double>(requests * rows) / load_s
          : 0.0;

  // The leader "dies": graceful here (the crash matrix in
  // test_recovery.cpp covers SIGKILL at every fault site; the bench
  // measures the follower-side promotion cost, which is identical).
  server.shutdown();
  if (!applier.wait_caught_up(journal.durable_seq(),
                              std::chrono::milliseconds(20000))) {
    std::fprintf(stderr, "cell %s: follower never caught up\n",
                 out->ack_mode.c_str());
    return false;
  }
  out->checkpoints_shipped = repl.stats().checkpoints_shipped;
  repl.stop();

  const auto fo_t0 = Clock::now();
  serve::replication::PromotionReport rep;
  std::unique_ptr<serve::InferenceServer> promoted = applier.promote(&rep);
  // First post-promotion response, checked bit-exact against the
  // fault-free reference — promotion that serves wrong bits is a bug,
  // not a data point.
  const std::vector<std::uint8_t> probe = codes_for(op, 0, rows);
  const serve::InferenceResult first =
      promoted->submit("m", probe, rows).get();
  out->failover_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - fo_t0)
          .count();
  out->seal_to_serving_ms = rep.seal_to_serving_ms;
  out->durable_seq = rep.durable_seq;
  out->applied = rep.applied;
  out->backfilled = rep.completed_backfilled;
  promoted->shutdown();

  if (first.outputs != expected_for(op, probe, rows)) {
    std::fprintf(stderr, "cell %s: first promoted response diverged\n",
                 out->ack_mode.c_str());
    return false;
  }
  if (rep.crc_mismatches != 0 || rep.replay_failures != 0) {
    std::fprintf(stderr,
                 "cell %s: promotion audit failed (%llu crc mismatches, "
                 "%llu replay failures)\n",
                 out->ack_mode.c_str(),
                 static_cast<unsigned long long>(rep.crc_mismatches),
                 static_cast<unsigned long long>(rep.replay_failures));
    return false;
  }
  // Sync acks may never run ahead of the watermark: with 2 journal
  // records per request (accept + complete), lag in records at the
  // moment an ack returned is bounded by the in-flight request itself.
  if (mode == AckMode::kSync && out->sync_degraded == 0 &&
      out->lag_records_at_last_ack > 2) {
    std::fprintf(stderr, "cell %s: sync ack ran ahead of the watermark\n",
                 out->ack_mode.c_str());
    return false;
  }
  std::fprintf(stderr,
               "ckpt_every=%-4zu %-10s acked mean %7.1f us  p99 %7.1f us"
               "  lag@ack %3llu rec  failover %6.2f ms  applied %llu\n",
               checkpoint_every, out->ack_mode.c_str(),
               out->acked_us_mean, out->acked_us_p99,
               static_cast<unsigned long long>(
                   out->lag_records_at_last_ack),
               out->failover_ms,
               static_cast<unsigned long long>(out->applied));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t requests = 320;
  std::size_t rows = 4;
  std::string out_path = "BENCH_replication.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--requests=", 11) == 0)
      requests = static_cast<std::size_t>(
          std::strtoull(argv[i] + 11, nullptr, 10));
    else if (std::strncmp(argv[i], "--rows=", 7) == 0)
      rows =
          static_cast<std::size_t>(std::strtoull(argv[i] + 7, nullptr, 10));
    else if (std::strncmp(argv[i], "--out=", 6) == 0)
      out_path = argv[i] + 6;
    else {
      std::fprintf(stderr, "unknown arg: %s\n", argv[i]);
      return 1;
    }
  }

  const Operator op = train_operator(2026);
  const std::vector<std::size_t> cadences{4, 32, 256};
  struct ModeSpec {
    AckMode mode;
    std::uint64_t window;
  };
  const std::vector<ModeSpec> modes{
      {AckMode::kAsync, 0}, {AckMode::kWindow, 4}, {AckMode::kSync, 0}};

  std::vector<CellResult> cells;
  for (const std::size_t cadence : cadences)
    for (const ModeSpec& m : modes) {
      CellResult cell;
      if (!run_cell(op, cadence, m.mode, m.window, requests, rows, &cell))
        return 1;
      cells.push_back(cell);
    }

  // Headline: what zero RPO costs per acked write, at the middle
  // checkpoint cadence (cadence doesn't sit on the ack path; it moves
  // failover time, not ack latency).
  double async_us = 0.0, sync_us = 0.0;
  for (const CellResult& c : cells) {
    if (c.checkpoint_every != 32) continue;
    if (c.ack_mode == "async") async_us = c.acked_us_mean;
    if (c.ack_mode == "sync") sync_us = c.acked_us_mean;
  }
  const double sync_over_async =
      async_us > 0.0 ? sync_us / async_us : 0.0;
  std::fprintf(stderr,
               "\nsync-over-async acked-write latency: %.2fx "
               "(%.1f us vs %.1f us at ckpt_every=32)\n",
               sync_over_async, sync_us, async_us);

  std::string out = "{\"bench\":\"replication_failover\",";
  out += benchenv::machine_json();
  out += ",\"requests\":" + std::to_string(requests) +
         ",\"rows_per_request\":" + std::to_string(rows) + ",\"cells\":[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out += ",";
    out += cells[i].json();
  }
  char tail[96];
  std::snprintf(tail, sizeof(tail),
                "],\"sync_over_async_acked_latency\":%.3f}",
                sync_over_async);
  out += tail;
  if (!benchenv::write_artifact(out_path, out)) return 1;
  return 0;
}
