// Extension ablation: speculative encoding. The paper's schedule is
// serial — each block encodes *after* receiving the upstream partial
// sums, even though the encoder's operand (the block's own subvector) is
// available immediately. Letting the encoder race ahead to token k+1
// while the decoders finish token k hides the encoder-dominated latency
// (Fig. 7B: encoder is 40-70% of the block latency) at zero accuracy
// cost — outputs stay bit-identical.
#include <cstdio>

#include "ppa/delay_model.hpp"
#include "sim/macro.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace ssma;

namespace {

std::vector<maddness::HashTree> uniform_trees(int ns) {
  std::vector<maddness::HashTree> trees(ns);
  for (auto& t : trees) {
    for (int l = 0; l < 4; ++l) t.set_split_dim(l, l);
    for (int l = 0; l < 4; ++l)
      for (int n = 0; n < (1 << l); ++n) t.set_threshold(l, n, 0x80);
  }
  return trees;
}

}  // namespace

int main() {
  const int ndec = 16, ns = 4, tokens = 40;
  Rng rng(23);
  std::vector<std::vector<std::array<std::int8_t, 16>>> luts(
      ns, std::vector<std::array<std::int8_t, 16>>(ndec));
  for (auto& b : luts)
    for (auto& tb : b)
      for (auto& e : tb) e = static_cast<std::int8_t>(rng.next_int(-127, 127));

  std::printf(
      "== Extension ablation: speculative encoding ==\n"
      "Encode token k+1 while decoding token k (the encoder's operand\n"
      "does not depend on upstream partials). Ndec=%d, NS=%d, 0.5 V.\n\n",
      ndec, ns);

  TextTable t({"data regime", "baseline interval [ns]",
               "speculative interval [ns]", "speedup", "bit-exact"});

  for (const std::string regime : {"best", "random", "worst"}) {
    std::vector<std::vector<sim::Subvec>> inputs(
        tokens, std::vector<sim::Subvec>(ns));
    Rng drng(31);
    for (auto& tok : inputs)
      for (auto& sv : tok)
        for (auto& v : sv) {
          if (regime == "best")
            v = 0x00;
          else if (regime == "worst")
            v = 0x80;
          else
            v = static_cast<std::uint8_t>(drng.next_int(0, 255));
        }

    sim::MacroConfig base;
    base.ndec = ndec;
    base.ns = ns;
    sim::Macro m0(base);
    m0.program(uniform_trees(ns), luts, std::vector<std::int16_t>(ndec, 0));
    const auto r0 = m0.run(inputs);

    sim::MacroConfig spec = base;
    spec.speculative_encode = true;
    sim::Macro m1(spec);
    m1.program(uniform_trees(ns), luts, std::vector<std::int16_t>(ndec, 0));
    const auto r1 = m1.run(inputs);

    const double i0 = r0.stats.output_interval_ns.mean();
    const double i1 = r1.stats.output_interval_ns.mean();
    t.add_row({regime, TextTable::num(i0, 2), TextTable::num(i1, 2),
               TextTable::num(i0 / i1, 2) + "x",
               r0.outputs == r1.outputs ? "yes" : "NO (BUG)"});
  }
  std::printf("%s\n", t.render().c_str());

  ppa::DelayModel delay(ppa::nominal_05v());
  std::printf(
      "Bottleneck shifts from enc+dec in series (%.1f-%.1f ns) to\n"
      "max(encoder+precharge, decoder path) = max(%.1f-%.1f, %.1f) ns.\n"
      "Cost: none in the datapath — one extra input-buffer read port and\n"
      "speculation control. A candidate improvement the paper's serial\n"
      "schedule leaves open.\n",
      delay.block_latency_best_ns(ndec), delay.block_latency_worst_ns(ndec),
      delay.encoder_best_ns() + delay.precharge_ns(),
      delay.encoder_worst_ns() + delay.precharge_ns(),
      delay.decoder_path_ns(ndec));
  return 0;
}
