// Ablation for the paper's Sec. IV observation that "larger Ndec values
// make the circuit vulnerable to local variations", which motivates the
// Ndec=16 recommendation. Monte-Carlo sampling of within-die Vth
// mismatch: functional correctness always holds (self-timed RCD), but the
// worst-sampled block latency degrades with Ndec as the max over more
// mismatched columns/wires grows.
#include <cstdio>

#include "sim/macro.hpp"
#include "sim/monte_carlo.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace ssma;

namespace {

std::vector<maddness::HashTree> mid_trees(int ns) {
  std::vector<maddness::HashTree> trees(ns);
  for (auto& t : trees) {
    for (int l = 0; l < 4; ++l) t.set_split_dim(l, l);
    for (int l = 0; l < 4; ++l)
      for (int n = 0; n < (1 << l); ++n) t.set_threshold(l, n, 0x80);
  }
  return trees;
}

}  // namespace

int main() {
  const int ns = 4;
  const int dies = 12;
  const int tokens = 12;

  std::printf(
      "== Ablation: local (within-die) variation vs Ndec ==\n"
      "Monte-Carlo Vth mismatch (sigma = 18 mV) on DLCs and SRAM read\n"
      "paths; NS=%d, 0.5 V TTG, worst-case data. %d dies per point.\n\n",
      ns, dies);

  TextTable t({"Ndec", "nominal interval [ns]", "MC mean [ns]",
               "MC worst die [ns]", "slowdown (worst/nominal)",
               "outputs corrupted"});

  for (int ndec : {4, 8, 16, 32}) {
    Rng rng(100 + static_cast<std::uint64_t>(ndec));
    std::vector<std::vector<std::array<std::int8_t, 16>>> luts(
        ns, std::vector<std::array<std::int8_t, 16>>(ndec));
    for (auto& b : luts)
      for (auto& tb : b)
        for (auto& e : tb)
          e = static_cast<std::int8_t>(rng.next_int(-127, 127));

    sim::Subvec sv;
    sv.fill(0x80);  // worst case: every comparison ripples fully
    const std::vector<std::vector<sim::Subvec>> inputs(
        tokens, std::vector<sim::Subvec>(ns, sv));

    sim::MacroConfig mc;
    mc.ndec = ndec;
    mc.ns = ns;
    sim::Macro nominal(mc);
    nominal.program(mid_trees(ns), luts,
                    std::vector<std::int16_t>(ndec, 0));
    const auto nom = nominal.run(inputs);
    const double nom_interval = nom.stats.output_interval_ns.mean();

    RunningStats mc_interval;
    bool corrupted = false;
    for (int die = 0; die < dies; ++die) {
      Rng vrng(5000 + static_cast<std::uint64_t>(die) * 31 +
               static_cast<std::uint64_t>(ndec));
      sim::Macro m(mc);
      m.set_variation(
          sim::sample_variation(ns, ndec, sim::VariationConfig{}, vrng));
      m.program(mid_trees(ns), luts, std::vector<std::int16_t>(ndec, 0));
      const auto res = m.run(inputs);
      mc_interval.add(res.stats.output_interval_ns.mean());
      corrupted |= (res.outputs != nom.outputs);
    }

    t.add_row({std::to_string(ndec), TextTable::num(nom_interval, 2),
               TextTable::num(mc_interval.mean(), 2),
               TextTable::num(mc_interval.max(), 2),
               TextTable::num(mc_interval.max() / nom_interval, 3) + "x",
               corrupted ? "YES (BUG)" : "none"});
  }
  std::printf("%s\n", t.render().c_str());

  std::printf(
      "Self-timed completion detection keeps every die functionally\n"
      "correct; the cost of variation appears purely as latency. The\n"
      "worst-die slowdown grows with Ndec (max over more mismatched\n"
      "columns + longer RWL wire), while Table I showed the Ndec=16->32\n"
      "efficiency gain is ~0-2%% — hence the paper's Ndec=16 choice.\n");
  return 0;
}
