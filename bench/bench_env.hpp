// Shared helpers for bench harnesses that emit BENCH_*.json artifacts:
// machine identification (CPU model, logical core count) so a recorded
// number can be read in context — in particular the 1-CPU CI container
// caveat from the serving benchmarks is visible in the data itself.
#pragma once

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

namespace ssma::benchenv {

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out += c;
    }
  }
  return out;
}

inline unsigned nproc() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

/// "model name" from /proc/cpuinfo, or "unknown" off Linux.
inline std::string cpu_model() {
  std::ifstream info("/proc/cpuinfo");
  std::string line;
  while (std::getline(info, line)) {
    const auto key = line.find("model name");
    if (key == std::string::npos) continue;
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::size_t start = colon + 1;
    while (start < line.size() && line[start] == ' ') ++start;
    return line.substr(start);
  }
  return "unknown";
}

/// `"machine":{"cpu_model":...,"nproc":N}` fragment (no surrounding
/// braces/comma handling — caller splices it into its object).
inline std::string machine_json() {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%u", nproc());
  return std::string("\"machine\":{\"cpu_model\":\"") +
         json_escape(cpu_model()) + "\",\"nproc\":" + buf + "}";
}

/// Writes `json` (one object) to `path` and echoes it to stdout.
inline bool write_artifact(const std::string& path,
                           const std::string& json) {
  std::ofstream os(path);
  if (!os.is_open()) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  os << json << "\n";
  std::printf("%s\n", json.c_str());
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return true;
}

}  // namespace ssma::benchenv
