// Reproduces Fig. 7: (A) energy, (B) latency, (C) area breakdown of the
// macro at 0.5 V for Ndec = 4 and 16 (paper: NS=32). Energy shares are
// measured with the event-driven simulator on random data; latency/area
// come from the calibrated component models.
#include <cstdio>

#include "core/experiments.hpp"
#include "util/table.hpp"

int main() {
  using namespace ssma;

  std::printf(
      "== Fig. 7: energy / latency / area breakdown (0.5 V, TTG) ==\n\n");

  const core::Fig7Breakdown b4 = core::run_fig7_breakdown(4);
  const core::Fig7Breakdown b16 = core::run_fig7_breakdown(16);

  std::printf("(A) Energy breakdown (event-simulated, random data)\n");
  TextTable ta({"component", "Ndec=4", "Ndec=16", "paper (4 / 16)"});
  ta.add_row({"decoder (SRAM+CSA+latch+RCD)",
              TextTable::pct(b4.energy_decoder_share),
              TextTable::pct(b16.energy_decoder_share), "94.2% / 97.7%"});
  ta.add_row({"encoder (DLC+buffer)",
              TextTable::pct(b4.energy_encoder_share, 2),
              TextTable::pct(b16.energy_encoder_share, 2), "~3.6% / ~0.9%"});
  ta.add_row({"other (ctrl+output+leak)",
              TextTable::pct(b4.energy_other_share),
              TextTable::pct(b16.energy_other_share), "remainder"});
  std::printf("%s\n", ta.render().c_str());

  std::printf("(B) Latency per compute block [ns]\n");
  TextTable tb({"case", "Ndec=4", "Ndec=16", "paper (4 / 16)"});
  tb.add_row({"best", TextTable::num(b4.latency_best_ns, 1),
              TextTable::num(b16.latency_best_ns, 1), "16.1 / 17.8"});
  tb.add_row({"worst", TextTable::num(b4.latency_worst_ns, 1),
              TextTable::num(b16.latency_worst_ns, 1), "30.4 / 32.1"});
  tb.add_row({"encoder share (best)",
              TextTable::pct(b4.encoder_latency_share_best),
              TextTable::pct(b16.encoder_latency_share_best),
              "45.8% / 41.5%"});
  tb.add_row({"encoder share (worst)",
              TextTable::pct(b4.encoder_latency_share_worst),
              TextTable::pct(b16.encoder_latency_share_worst),
              "71.3% / 67.5%"});
  std::printf("%s\n", tb.render().c_str());

  std::printf("(C) Area breakdown (NS=32)\n");
  TextTable tc({"component", "Ndec=4", "Ndec=16", "paper (4 / 16)"});
  tc.add_row({"decoder", TextTable::pct(b4.area_decoder_share),
              TextTable::pct(b16.area_decoder_share), "56.9% / 82.9%"});
  tc.add_row({"encoder", TextTable::pct(b4.area_encoder_share),
              TextTable::pct(b16.area_encoder_share), "-"});
  tc.add_row({"other", TextTable::pct(b4.area_other_share),
              TextTable::pct(b16.area_other_share), "-"});
  std::printf("%s\n", tc.render().c_str());

  std::printf(
      "Trends reproduced: decoder dominates energy (>94%%) and its share\n"
      "grows with Ndec; the encoder dominates latency (40-70%%); decoder\n"
      "area share rises from ~57%% to ~83%% between Ndec=4 and 16.\n");
  return 0;
}
