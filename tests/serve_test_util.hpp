// Shared helpers for the serving/recovery test suites: a small trained
// operator + request pool, a self-cleaning temp directory, and the
// deterministic-seed plumbing (every randomized test derives its
// randomness — load generation AND fault injection — from one seed
// that is printed into the failure log, so any flake reproduces with
// SSMA_TEST_SEED=<value>).
#pragma once

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "maddness/amm.hpp"
#include "util/rng.hpp"

namespace ssma::serve {

/// One seed per test binary run: SSMA_TEST_SEED env override, else a
/// fixed default. Tests wrap their bodies in SCOPED_TRACE(seed_trace())
/// so the reproduction command lands in every failure message.
inline std::uint64_t test_seed() {
  if (const char* env = std::getenv("SSMA_TEST_SEED"))
    return std::strtoull(env, nullptr, 0);
  return 0x5eedfa57u;
}

inline std::string seed_trace(std::uint64_t seed) {
  std::ostringstream oss;
  oss << "reproduce with: SSMA_TEST_SEED=" << seed;
  return oss.str();
}

/// A small trained operator + a quantized request pool.
struct ServeFixture {
  maddness::Amm amm;
  maddness::QuantizedActivations pool;

  static ServeFixture make(int ncodebooks = 4, int nout = 8,
                           std::size_t pool_rows = 256,
                           std::uint64_t seed = 7) {
    Rng rng(seed);
    const std::size_t d = static_cast<std::size_t>(ncodebooks) * 9;
    Matrix train(512, d);
    for (std::size_t i = 0; i < train.size(); ++i)
      train.data()[i] = static_cast<float>(rng.next_double(0, 220));
    Matrix w(d, static_cast<std::size_t>(nout));
    for (std::size_t i = 0; i < w.size(); ++i)
      w.data()[i] = static_cast<float>(rng.next_gaussian(0, 0.08));

    maddness::Config cfg;
    cfg.ncodebooks = ncodebooks;
    ServeFixture f{maddness::Amm::train(cfg, train, w), {}};

    Matrix fresh(pool_rows, d);
    for (std::size_t i = 0; i < fresh.size(); ++i)
      fresh.data()[i] = static_cast<float>(rng.next_double(0, 220));
    f.pool =
        maddness::quantize_activations(fresh, f.amm.activation_scale());
    return f;
  }

  /// Payload of the canonical request `id`: one pool row, wrapping.
  std::vector<std::uint8_t> codes_for(std::size_t id) const {
    const std::size_t r = id % pool.rows;
    return std::vector<std::uint8_t>(pool.row(r), pool.row(r) + pool.cols);
  }

  /// Reference outputs for an arbitrary codes payload — the fault-free
  /// single-threaded ground truth every served result must match.
  std::vector<std::int16_t> expected_for(
      const std::vector<std::uint8_t>& codes, std::size_t rows) const {
    maddness::QuantizedActivations q;
    q.rows = rows;
    q.cols = pool.cols;
    q.scale = pool.scale;
    q.codes = codes;
    return amm.apply_int16(q);
  }

  /// Reference outputs for a row slice of the pool (with wraparound).
  std::vector<std::int16_t> expected(std::size_t first_row,
                                     std::size_t rows) const {
    maddness::QuantizedActivations q;
    q.rows = rows;
    q.cols = pool.cols;
    q.scale = pool.scale;
    std::size_t r = first_row;
    for (std::size_t i = 0; i < rows; ++i) {
      q.codes.insert(q.codes.end(), pool.row(r), pool.row(r) + pool.cols);
      r = (r + 1) % pool.rows;
    }
    return amm.apply_int16(q);
  }
};

/// Unique per-test scratch directory, removed on scope exit.
class TmpDir {
 public:
  explicit TmpDir(const std::string& tag) {
    static int counter = 0;
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    std::ostringstream oss;
    oss << "ssma-" << tag << "-" << (info ? info->name() : "x") << "-"
        << ::getpid() << "-" << counter++;
    path_ = std::filesystem::temp_directory_path() / oss.str();
    std::filesystem::create_directories(path_);
  }
  ~TmpDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }
  std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  std::filesystem::path path_;
};

}  // namespace ssma::serve
