// Tests for the telemetry subsystem: LatencyHistogram percentile edge
// cases (p=0 / p=100 / single sample / post-merge, with the ~6%
// mid-range error bound), the seqlock span ring (wrap semantics and
// torn-read freedom under concurrent snapshots — the TSan job hammers
// this), TraceSession lifecycle, the Chrome trace-event and Prometheus
// exporters (the latter against a committed golden file), end-to-end
// span collection from a served 2-stage pipeline under delay chaos,
// replay-after-crash spans, the kernel-profile/roofline math, and the
// simulator's shared-writer Chrome rendering. Every test here passes in
// both -DSSMA_TRACE=ON and OFF builds: the classes are always
// compiled, only the serving-path macros vanish, so the lifecycle
// tests gate their span assertions on SSMA_TRACE_ENABLED.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/pipeline.hpp"
#include "serve/metrics.hpp"
#include "serve/recovery/checkpoint.hpp"
#include "serve/recovery/fault_injector.hpp"
#include "serve/recovery/journal.hpp"
#include "serve/server.hpp"
#include "serve_test_util.hpp"
#include "sim/trace.hpp"
#include "telemetry/kernel_profile.hpp"
#include "telemetry/telemetry.hpp"
#include "util/rng.hpp"

namespace ssma {
namespace {

using serve::LatencyHistogram;
using telemetry::kNoRequestId;
using telemetry::SpanEvent;
using telemetry::SpanRecorder;
using telemetry::Stage;
using telemetry::TraceSession;

// ---------------------------------------------------------------- JSON

/// Structural validity: braces/brackets balance outside strings, string
/// escapes parse. Not a full parser — catches the truncation/comma bugs
/// a hand-rolled writer can produce.
bool json_balanced(const std::string& s) {
  int depth = 0;
  bool in_str = false, esc = false;
  for (char c : s) {
    if (esc) {
      esc = false;
      continue;
    }
    if (in_str) {
      if (c == '\\')
        esc = true;
      else if (c == '"')
        in_str = false;
      continue;
    }
    if (c == '"')
      in_str = true;
    else if (c == '{' || c == '[')
      depth++;
    else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_str;
}

bool contains(const std::string& hay, const std::string& needle) {
  return hay.find(needle) != std::string::npos;
}

// ------------------------------------------------- LatencyHistogram

double exact_percentile(std::vector<double> v, double p) {
  std::sort(v.begin(), v.end());
  const auto rank = std::max<std::size_t>(
      static_cast<std::size_t>(
          std::ceil(p / 100.0 * static_cast<double>(v.size()))),
      1);
  return v[rank - 1];
}

TEST(LatencyHistogramTest, EmptyHistogramIsAllZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean_ns(), 0.0);
  EXPECT_EQ(h.min_ns(), 0.0);
  EXPECT_EQ(h.max_ns(), 0.0);
  EXPECT_EQ(h.percentile_ns(0), 0.0);
  EXPECT_EQ(h.percentile_ns(50), 0.0);
  EXPECT_EQ(h.percentile_ns(100), 0.0);
}

TEST(LatencyHistogramTest, SingleSampleIsExactAtEveryPercentile) {
  LatencyHistogram h;
  h.add(12345.0);
  for (double p : {0.0, 1.0, 50.0, 99.0, 100.0})
    EXPECT_DOUBLE_EQ(h.percentile_ns(p), 12345.0) << "p=" << p;
  EXPECT_DOUBLE_EQ(h.min_ns(), 12345.0);
  EXPECT_DOUBLE_EQ(h.max_ns(), 12345.0);
}

TEST(LatencyHistogramTest, ExtremesAreExact) {
  LatencyHistogram h;
  const std::vector<double> samples{430.0,    91.0,    5'000'000.0,
                                    77'000.0, 12000.0, 310.0};
  for (double s : samples) h.add(s);
  // p=0 is the observed minimum, p=100 the maximum — exactly, not a
  // bucket estimate.
  EXPECT_DOUBLE_EQ(h.percentile_ns(0), 91.0);
  EXPECT_DOUBLE_EQ(h.percentile_ns(100), 5'000'000.0);
}

TEST(LatencyHistogramTest, MidRangeErrorBoundedByBucketRatio) {
  LatencyHistogram h;
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i)
    samples.push_back(1000.0 + 7.0 * static_cast<double>(i));
  for (double s : samples) h.add(s);
  // Geometric buckets with ratio 1.12: the midpoint estimate is within
  // sqrt(1.12)-1 ~ 5.8% of the true nearest-rank value.
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    const double exact = exact_percentile(samples, p);
    const double est = h.percentile_ns(p);
    EXPECT_NEAR(est / exact, 1.0, 0.06) << "p=" << p;
  }
}

TEST(LatencyHistogramTest, MergeFoldsExtremaAndKeepsBounds) {
  LatencyHistogram lo, hi;
  std::vector<double> all;
  for (int i = 0; i < 400; ++i) {
    const double a = 200.0 + 13.0 * i;
    const double b = 50'000.0 + 97.0 * i;
    lo.add(a);
    hi.add(b);
    all.push_back(a);
    all.push_back(b);
  }
  lo.merge(hi);
  EXPECT_EQ(lo.count(), 800u);
  EXPECT_DOUBLE_EQ(lo.percentile_ns(0), 200.0);
  EXPECT_DOUBLE_EQ(lo.percentile_ns(100), 50'000.0 + 97.0 * 399);
  for (double p : {25.0, 50.0, 75.0, 99.0}) {
    const double exact = exact_percentile(all, p);
    EXPECT_NEAR(lo.percentile_ns(p) / exact, 1.0, 0.06) << "p=" << p;
  }
}

TEST(LatencyHistogramTest, MergeIntoEmptyAdoptsOtherMin) {
  LatencyHistogram empty, other;
  other.add(777.0);
  empty.merge(other);
  EXPECT_DOUBLE_EQ(empty.percentile_ns(0), 777.0);
  EXPECT_DOUBLE_EQ(empty.percentile_ns(100), 777.0);
}

// ------------------------------------------------------ SpanRecorder

SpanEvent encoded_event(std::uint64_t i) {
  SpanEvent ev;
  ev.t_begin_ns = i;
  ev.t_end_ns = i + 1;
  ev.id_lo = 2 * i + 1;
  ev.id_hi = 3 * i + 7;
  ev.stage = static_cast<Stage>(i % telemetry::kNumStages);
  return ev;
}

/// Every field is a function of t_begin_ns — a torn read (fields from
/// two different pushes) cannot satisfy all four checks.
bool event_consistent(const SpanEvent& ev) {
  const std::uint64_t i = ev.t_begin_ns;
  return ev.t_end_ns == i + 1 && ev.id_lo == 2 * i + 1 &&
         ev.id_hi == 3 * i + 7 &&
         ev.stage == static_cast<Stage>(i % telemetry::kNumStages);
}

TEST(SpanRecorderTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpanRecorder(1).capacity(), 8u);
  EXPECT_EQ(SpanRecorder(8).capacity(), 8u);
  EXPECT_EQ(SpanRecorder(100).capacity(), 128u);
  EXPECT_EQ(SpanRecorder(1024).capacity(), 1024u);
}

TEST(SpanRecorderTest, SnapshotReturnsEventsOldestFirst) {
  SpanRecorder rec(16);
  for (std::uint64_t i = 0; i < 5; ++i) rec.push(encoded_event(i));
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(events[i].t_begin_ns, i);
    EXPECT_TRUE(event_consistent(events[i]));
  }
  EXPECT_EQ(rec.pushed(), 5u);
}

TEST(SpanRecorderTest, WrapKeepsNewestEventsAndTotalCount) {
  SpanRecorder rec(8);
  constexpr std::uint64_t kPushes = 100;
  for (std::uint64_t i = 0; i < kPushes; ++i) rec.push(encoded_event(i));
  EXPECT_EQ(rec.pushed(), kPushes);
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // The live window is the last capacity() pushes, oldest first.
  for (std::size_t j = 0; j < events.size(); ++j) {
    EXPECT_EQ(events[j].t_begin_ns, kPushes - 8 + j);
    EXPECT_TRUE(event_consistent(events[j]));
  }
}

TEST(SpanRecorderTest, ConcurrentSnapshotsSeeNoTornEvents) {
  SpanRecorder rec(64);
  constexpr std::uint64_t kMinPushes = 50'000;
  constexpr std::uint64_t kMaxPushes = 20'000'000;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> torn{0};
  std::atomic<std::uint64_t> observed{0};
  std::atomic<std::uint64_t> snapshots{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      // Loop until the writer is done AND this reader has seen at
      // least one event: an early snapshot can legitimately catch the
      // ring empty, and on a loaded 1-CPU host a starved reader might
      // not run again until after the writer's final push — a post-done
      // snapshot of the (now static, non-empty) ring always succeeds,
      // so the loop is bounded.
      std::uint64_t mine = 0;
      do {
        const auto events = rec.snapshot();
        mine += events.size();
        observed.fetch_add(events.size(), std::memory_order_relaxed);
        snapshots.fetch_add(1, std::memory_order_relaxed);
        for (const SpanEvent& ev : events)
          if (!event_consistent(ev))
            torn.fetch_add(1, std::memory_order_relaxed);
      } while (!done.load(std::memory_order_acquire) || mine == 0);
    });
  }
  // Keep pushing until both readers have snapshotted live — pushes are
  // far faster than thread spawn, so a fixed count alone can finish
  // before any reader starts (no overlap, nothing tested). Yield
  // periodically so the readers get scheduled against the spin.
  std::uint64_t pushed = 0;
  while (pushed < kMinPushes ||
         (snapshots.load(std::memory_order_relaxed) < 40 &&
          pushed < kMaxPushes)) {
    rec.push(encoded_event(pushed));
    ++pushed;
    if ((pushed & 0xFFF) == 0) std::this_thread::yield();
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GT(observed.load(), 0u);
  EXPECT_EQ(rec.pushed(), pushed);
  EXPECT_GE(pushed, kMinPushes);
}

// ------------------------------------------------------ TraceSession

/// The session is a process-wide singleton; every test that touches it
/// starts from a cleared, disabled state and leaves it that way.
struct SessionGuard {
  SessionGuard() {
    TraceSession::instance().disable();
    TraceSession::instance().clear();
  }
  ~SessionGuard() {
    TraceSession::instance().disable();
    TraceSession::instance().clear();
  }
};

TEST(TraceSessionTest, DisabledSessionRecordsNothing) {
  SessionGuard guard;
  auto& session = TraceSession::instance();
  session.record_span(Stage::kAdmit, 10, 20, 1, 1);
  { telemetry::ScopedSpan span(Stage::kEncode, 2, 2); }
  EXPECT_TRUE(session.collect().empty());
}

TEST(TraceSessionTest, TracksNamedAndEventsOrdered) {
  SessionGuard guard;
  auto& session = TraceSession::instance();
  session.enable();
  session.set_thread_track("alpha");
  session.record_span(Stage::kAdmit, 100, 200, 1, 1);
  session.record_span(Stage::kAck, 300, 400, 1, 4);

  std::thread other([&] {
    session.set_thread_track("beta");
    session.record_span(Stage::kEncode, 150, 250, 2, 2);
  });
  other.join();
  session.disable();

  const auto tracks = session.collect();
  ASSERT_EQ(tracks.size(), 2u);
  const auto* alpha = &tracks[0];
  const auto* beta = &tracks[1];
  if (alpha->track != "alpha") std::swap(alpha, beta);
  ASSERT_EQ(alpha->track, "alpha");
  ASSERT_EQ(beta->track, "beta");
  ASSERT_EQ(alpha->events.size(), 2u);
  EXPECT_EQ(alpha->events[0].stage, Stage::kAdmit);
  EXPECT_EQ(alpha->events[1].stage, Stage::kAck);
  EXPECT_EQ(alpha->events[1].id_hi, 4u);
  ASSERT_EQ(beta->events.size(), 1u);
  EXPECT_EQ(beta->events[0].stage, Stage::kEncode);
}

TEST(TraceSessionTest, ClearDropsRecordersAndThreadsReRegister) {
  SessionGuard guard;
  auto& session = TraceSession::instance();
  session.enable();
  session.record_span(Stage::kAdmit, 1, 2, kNoRequestId, kNoRequestId);
  ASSERT_EQ(session.collect().size(), 1u);
  session.clear();
  EXPECT_TRUE(session.collect().empty());
  // The same thread records again after the wipe: a fresh recorder is
  // registered lazily (generation check), nothing is lost or doubled.
  session.record_span(Stage::kAck, 3, 4, kNoRequestId, kNoRequestId);
  const auto tracks = session.collect();
  ASSERT_EQ(tracks.size(), 1u);
  ASSERT_EQ(tracks[0].events.size(), 1u);
  EXPECT_EQ(tracks[0].events[0].stage, Stage::kAck);
}

TEST(TraceSessionTest, ChromeJsonSchema) {
  SessionGuard guard;
  auto& session = TraceSession::instance();
  session.enable();
  session.set_thread_track("shard-7");
  session.record_span(Stage::kEncode, 1000, 2500, 42, 42);
  session.record_span(Stage::kAck, 3000, 5000, 42, 45);
  session.record_span(Stage::kCheckpoint, 6000, 7000, kNoRequestId,
                      kNoRequestId);
  session.disable();

  const std::string json = session.render_chrome_json();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_TRUE(contains(json, "\"displayTimeUnit\":\"ns\""));
  // Process + thread metadata.
  EXPECT_TRUE(contains(json, "\"process_name\""));
  EXPECT_TRUE(contains(json, "ssma-serve"));
  EXPECT_TRUE(contains(json, "\"thread_name\""));
  EXPECT_TRUE(contains(json, "\"shard-7\""));
  // Complete events with stage names, microsecond ts/dur.
  EXPECT_TRUE(contains(json, "\"ph\":\"X\""));
  EXPECT_TRUE(contains(json, "\"name\":\"encode\""));
  EXPECT_TRUE(contains(json, "\"ts\":1.000"));
  EXPECT_TRUE(contains(json, "\"dur\":1.500"));
  // Request-id args: single id as "req", a range as lo/hi, none on the
  // unattributed checkpoint span.
  EXPECT_TRUE(contains(json, "\"req\":42"));
  EXPECT_TRUE(contains(json, "\"req_lo\":42"));
  EXPECT_TRUE(contains(json, "\"req_hi\":45"));
}

TEST(TraceSessionTest, TaggedSpansRoundTripAndRenderPerStageNames) {
  SessionGuard guard;
  auto& session = TraceSession::instance();
  session.enable();
  session.set_thread_track("shard-0");
  // The fused pipeline walk tags kEncode/kLutAccumulate/kEpilogue with
  // the pipeline stage index; the tag must survive the seqlock word
  // packing next to the stage enum and come back verbatim.
  session.record_span(Stage::kEpilogue, 1000, 2000, 7, 7, /*tag=*/0);
  session.record_span(Stage::kEpilogue, 3000, 4000, 7, 7, /*tag=*/1);
  session.record_span(Stage::kLutAccumulate, 5000, 6000, 7, 7,
                      /*tag=*/2);
  // Largest representable tag (24-bit field minus the sentinel).
  session.record_span(Stage::kEncode, 7000, 8000, 7, 7,
                      telemetry::kNoSpanTag - 1);
  session.record_span(Stage::kAck, 9000, 9500, 7, 7);  // untagged
  session.disable();

  const auto tracks = session.collect();
  ASSERT_EQ(tracks.size(), 1u);
  ASSERT_EQ(tracks[0].events.size(), 5u);
  EXPECT_EQ(tracks[0].events[0].tag, 0u);
  EXPECT_EQ(tracks[0].events[1].tag, 1u);
  EXPECT_EQ(tracks[0].events[2].tag, 2u);
  EXPECT_EQ(tracks[0].events[3].tag, telemetry::kNoSpanTag - 1);
  EXPECT_EQ(tracks[0].events[4].tag, telemetry::kNoSpanTag);

  // Chrome JSON names tagged spans "<stage>/<tag>" (one Perfetto
  // aggregation row per pipeline layer) and duplicates the tag as a
  // numeric arg; untagged spans keep the bare stage name.
  const std::string json = session.render_chrome_json();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_TRUE(contains(json, "\"name\":\"epilogue/0\""));
  EXPECT_TRUE(contains(json, "\"name\":\"epilogue/1\""));
  EXPECT_TRUE(contains(json, "\"name\":\"lut_accumulate/2\""));
  EXPECT_TRUE(contains(json, "\"stage_idx\":1"));
  EXPECT_TRUE(contains(json, "\"name\":\"ack\""));
  EXPECT_FALSE(contains(json, "\"name\":\"ack/"));
}

// --------------------------------------------------- kernel profiling

TEST(KernelProfileTest, DispatchCountersAccumulateAndReset) {
  telemetry::kernel_profile_reset();
  telemetry::record_lut_dispatch(2, 128, 4096, 1000);
  telemetry::record_lut_dispatch(2, 64, 2048, 500);
  telemetry::record_encode_dispatch(0, 128, 512, 300);
  const auto snap = telemetry::kernel_profile_snapshot();
  EXPECT_EQ(snap.lut[2].calls, 2u);
  EXPECT_EQ(snap.lut[2].rows, 192u);
  EXPECT_EQ(snap.lut[2].bytes, 6144u);
  EXPECT_EQ(snap.lut[2].ns, 1500u);
  EXPECT_EQ(snap.encode[0].calls, 1u);
  EXPECT_EQ(snap.lut[0].calls, 0u);
  telemetry::kernel_profile_reset();
  EXPECT_EQ(telemetry::kernel_profile_snapshot().lut[2].calls, 0u);
}

TEST(KernelProfileTest, RooflineEntryMath) {
  // 1e6 bytes in 1e-3 s = 1 GB/s achieved; 1 GHz scalar LUT peak is
  // 1 B/cycle = 1 GB/s, so frac_of_peak is exactly 1.
  const auto e = telemetry::make_roofline_entry(
      "lut_accumulate", /*tier=*/0, /*rows=*/1000, /*ncodebooks=*/32,
      /*nout=*/128, /*d=*/288, /*bytes_per_call=*/1e6,
      /*seconds_per_call=*/1e-3, /*cpu_ghz=*/1.0);
  EXPECT_EQ(e.kernel, "lut_accumulate");
  EXPECT_EQ(e.tier, "scalar");
  EXPECT_NEAR(e.achieved_gbps, 1.0, 1e-9);
  EXPECT_NEAR(e.theoretical_gbps,
              telemetry::lut_peak_bytes_per_cycle(0) * 1.0, 1e-9);
  EXPECT_NEAR(e.frac_of_peak, e.achieved_gbps / e.theoretical_gbps,
              1e-9);
  EXPECT_NEAR(e.bytes_per_row, 1000.0, 1e-9);
  EXPECT_NEAR(e.rows_per_s, 1e6, 1e-3);
  // MACs a dense rows x d x nout GEMM would have issued, per second.
  EXPECT_NEAR(e.macs_avoided_per_s, 1000.0 * 288.0 * 128.0 / 1e-3, 1.0);
  EXPECT_TRUE(json_balanced(e.json()));

  telemetry::RooflineReport report;
  report.cpu_ghz = 1.0;
  report.headline_cell = "rows=1000 ncb=32 nout=128";
  report.entries.push_back(e);
  const std::string json = report.json();
  EXPECT_TRUE(json_balanced(json));
  EXPECT_TRUE(contains(json, "\"cpu_ghz\""));
  EXPECT_TRUE(contains(json, "\"entries\""));
  EXPECT_TRUE(contains(json, "\"frac_of_peak\""));
}

TEST(KernelProfileTest, TierPeaksOrderedAndClockPositive) {
  // Wider SIMD can never have a lower modeled peak.
  EXPECT_GT(telemetry::lut_peak_bytes_per_cycle(1),
            telemetry::lut_peak_bytes_per_cycle(0));
  EXPECT_GT(telemetry::lut_peak_bytes_per_cycle(2),
            telemetry::lut_peak_bytes_per_cycle(1));
  EXPECT_GT(telemetry::encoder_peak_bytes_per_cycle(2),
            telemetry::encoder_peak_bytes_per_cycle(0));
  EXPECT_GT(telemetry::estimate_cpu_ghz(), 0.0);
}

// ----------------------------------------------- Prometheus exporter

void fill_deterministic(serve::Metrics& m) {
  m.set_batch_budget(64);
  m.record_batch("alpha", 12, {1500.0, 2500.0, 4000.0},
                 {9000.0, 12000.0, 20000.0});
  m.record_batch("alpha", 4, {800.0}, {5000.0});
  m.record_batch("beta", 3, {700.0}, {51000.0});
  m.record_batch("", 40, {2000.0, 3000.0}, {30000.0, 40000.0});
  m.record_journal_append(4000.0);
  m.record_journal_append(9000.0);
  // Two shadowed models: one healthy canary, one drifting.
  m.record_shadow("alpha", 8, 1, 37, 64000.0, 52000.0);
  m.record_shadow("alpha", 8, 0, 0, 61000.0, 50000.0);
  m.record_shadow("beta", 4, 4, 32767, 30000.0, 64000.0);
}

serve::PromGauges golden_gauges() {
  serve::PromGauges g;
  g.queue_depth = 3;
  g.queue_capacity = 256;
  g.workers = 4;
  g.worker_respawns = 1;
  g.trace_enabled = false;
  return g;
}

TEST(PrometheusTest, RenderMatchesGoldenFile) {
  // The kernel counters are process-global; zero them so the exposition
  // is identical no matter which tests (or build config) ran before.
  telemetry::kernel_profile_reset();
  serve::Metrics m;
  fill_deterministic(m);
  const std::string text = m.render_prometheus(golden_gauges());

  const std::string golden_path =
      std::string(SSMA_TEST_DATA_DIR) + "/prometheus_golden.txt";
  if (std::getenv("SSMA_REGEN_GOLDEN")) {
    std::ofstream os(golden_path);
    ASSERT_TRUE(os.is_open()) << golden_path;
    os << text;
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  std::ifstream is(golden_path);
  ASSERT_TRUE(is.is_open())
      << golden_path
      << " missing — regenerate with SSMA_REGEN_GOLDEN=1";
  std::stringstream buf;
  buf << is.rdbuf();
  EXPECT_EQ(text, buf.str())
      << "Prometheus exposition drifted from the golden file. If the "
         "change is intentional, regenerate with SSMA_REGEN_GOLDEN=1.";
}

TEST(PrometheusTest, ExpositionShape) {
  telemetry::kernel_profile_reset();
  serve::Metrics m;
  fill_deterministic(m);
  const std::string text = m.render_prometheus(golden_gauges());

  // Counters and gauges (7 requests across the 4 recorded batches).
  EXPECT_TRUE(contains(text, "ssma_requests_total 7\n"));
  EXPECT_TRUE(contains(text, "ssma_tokens_total 59\n"));
  EXPECT_TRUE(contains(text, "ssma_batches_total 4\n"));
  EXPECT_TRUE(contains(text, "ssma_queue_depth 3\n"));
  EXPECT_TRUE(contains(text, "ssma_queue_capacity 256\n"));
  EXPECT_TRUE(contains(text, "ssma_workers 4\n"));
  EXPECT_TRUE(contains(text, "ssma_worker_respawns_total 1\n"));
  EXPECT_TRUE(contains(text, "ssma_trace_enabled 0\n"));
  EXPECT_TRUE(contains(text, "ssma_batch_budget_tokens 64\n"));
  // Histograms: cumulative buckets end at +Inf == count.
  EXPECT_TRUE(
      contains(text, "ssma_request_latency_seconds_bucket{le=\"+Inf\"} 7"));
  EXPECT_TRUE(contains(text, "ssma_request_latency_seconds_count 7"));
  EXPECT_TRUE(contains(text, "ssma_journal_append_seconds_count 2"));
  // Batch-occupancy histogram: 4 batches, tokens 12/4/3/40 -> two in
  // le=4, one in le=16, one in le=64.
  EXPECT_TRUE(contains(text, "ssma_batch_tokens_bucket{le=\"4\"} 2\n"));
  EXPECT_TRUE(contains(text, "ssma_batch_tokens_bucket{le=\"+Inf\"} 4\n"));
  EXPECT_TRUE(contains(text, "ssma_batch_tokens_count 4\n"));
  // Per-model slices with queue/service split.
  EXPECT_TRUE(
      contains(text, "ssma_model_requests_total{model=\"alpha\"} 4\n"));
  EXPECT_TRUE(
      contains(text, "ssma_model_requests_total{model=\"beta\"} 1\n"));
  EXPECT_TRUE(contains(
      text, "ssma_model_service_seconds_count{model=\"alpha\"} 4"));
  EXPECT_TRUE(contains(text, "quantile=\"0.99\""));
  // Shadow-rollout block: per-model mirrored rows, drift and the
  // live/shadow latency split.
  EXPECT_TRUE(
      contains(text, "ssma_shadow_rows_total{model=\"alpha\"} 16\n"));
  EXPECT_TRUE(
      contains(text, "ssma_shadow_batches_total{model=\"alpha\"} 2\n"));
  EXPECT_TRUE(
      contains(text, "ssma_shadow_drift_rows_total{model=\"alpha\"} 1\n"));
  EXPECT_TRUE(
      contains(text, "ssma_shadow_drift_rows_total{model=\"beta\"} 4\n"));
  EXPECT_TRUE(
      contains(text, "ssma_shadow_max_abs_drift{model=\"beta\"} 32767\n"));
  EXPECT_TRUE(contains(
      text, "ssma_shadow_seconds_total{model=\"alpha\",side=\"live\"} "));
  EXPECT_TRUE(contains(
      text, "ssma_shadow_seconds_total{model=\"beta\",side=\"shadow\"} "));
  // Kernel tiers statically enumerated even when all-zero.
  EXPECT_TRUE(
      contains(text, "ssma_kernel_lut_calls_total{tier=\"scalar\"} 0"));
  EXPECT_TRUE(
      contains(text, "ssma_kernel_lut_calls_total{tier=\"avx2\"} 0"));
  EXPECT_TRUE(
      contains(text, "ssma_kernel_encode_bytes_total{tier=\"ssse3\"} 0"));
}

TEST(PrometheusTest, ShadowSlicesRoundTripThroughRestore) {
  telemetry::kernel_profile_reset();
  serve::Metrics m;
  fill_deterministic(m);
  const serve::MetricsSnapshot snap = m.snapshot();
  ASSERT_EQ(snap.shadow.size(), 2u);

  // Shadow slices are exact counters, so unlike the latency histograms
  // they restore losslessly (this is what checkpoint restore calls).
  serve::Metrics restored;
  restored.restore(snap.requests, snap.tokens, snap.batches, snap.shadow);
  const serve::MetricsSnapshot rs = restored.snapshot();
  ASSERT_EQ(rs.shadow.size(), snap.shadow.size());
  for (std::size_t i = 0; i < snap.shadow.size(); ++i) {
    EXPECT_EQ(rs.shadow[i].model, snap.shadow[i].model);
    EXPECT_EQ(rs.shadow[i].rows, snap.shadow[i].rows);
    EXPECT_EQ(rs.shadow[i].batches, snap.shadow[i].batches);
    EXPECT_EQ(rs.shadow[i].drift_rows, snap.shadow[i].drift_rows);
    EXPECT_EQ(rs.shadow[i].max_abs_drift, snap.shadow[i].max_abs_drift);
    EXPECT_DOUBLE_EQ(rs.shadow[i].live_ns_sum, snap.shadow[i].live_ns_sum);
    EXPECT_DOUBLE_EQ(rs.shadow[i].shadow_ns_sum,
                     snap.shadow[i].shadow_ns_sum);
  }

  // The restored exposition renders a byte-identical shadow block.
  const auto shadow_block = [](const std::string& text) {
    const std::size_t begin = text.find("# HELP ssma_shadow_rows_total");
    const std::size_t end = text.find("# HELP ssma_kernel_lut_calls_total");
    EXPECT_NE(begin, std::string::npos);
    EXPECT_NE(end, std::string::npos);
    return text.substr(begin, end - begin);
  };
  EXPECT_EQ(shadow_block(m.render_prometheus(golden_gauges())),
            shadow_block(restored.render_prometheus(golden_gauges())));
}

TEST(PrometheusTest, LiveServerExposition) {
  SessionGuard guard;
  serve::ServeFixture f = serve::ServeFixture::make();
  serve::ServerOptions opts;
  opts.num_workers = 2;
  opts.queue_capacity = 64;
  serve::InferenceServer server(opts);
  server.register_model("m", f.amm);
  std::vector<std::future<serve::InferenceResult>> futs;
  for (std::size_t i = 0; i < 8; ++i)
    futs.push_back(server.submit("m@latest", f.codes_for(i), 1));
  for (auto& fut : futs) fut.get();
  // Drain + join before scraping: record_batch runs after the futures
  // resolve, so a pre-shutdown scrape could miss the final batch.
  server.shutdown();

  const std::string text = server.render_prometheus();
  EXPECT_TRUE(contains(text, "ssma_requests_total 8\n"));
  EXPECT_TRUE(contains(text, "ssma_queue_capacity 64\n"));
  EXPECT_TRUE(contains(text, "ssma_workers 2\n"));
  EXPECT_TRUE(contains(text, "ssma_trace_enabled 0\n"));
  EXPECT_TRUE(
      contains(text, "ssma_model_requests_total{model=\"m\"} 8\n"));
}

// ------------------------------------------- served lifecycle spans

#if defined(SSMA_TRACE_ENABLED)

/// Two chained stages so the engine records epilogue (stage-handoff)
/// spans, plus an input pool quantized for stage 1.
struct PipelineFixture {
  maddness::Amm s1, s2;
  maddness::QuantizedActivations pool;

  static PipelineFixture make(std::uint64_t seed) {
    Rng rng(seed);
    maddness::Config c1;
    c1.ncodebooks = 4;
    const std::size_t d = static_cast<std::size_t>(c1.total_dims());
    Matrix calib(256, d);
    for (std::size_t i = 0; i < calib.size(); ++i)
      calib.data()[i] = static_cast<float>(rng.next_double(0, 220));
    Matrix w1(d, d);
    for (std::size_t i = 0; i < w1.size(); ++i)
      w1.data()[i] = static_cast<float>(rng.next_gaussian(0, 0.08));
    Matrix mid;
    PipelineFixture f;
    f.s1 = engine::train_chained_stage(c1, calib, w1, &mid);
    maddness::Config c2;
    c2.ncodebooks = 4;
    Matrix w2(d, 8);
    for (std::size_t i = 0; i < w2.size(); ++i)
      w2.data()[i] = static_cast<float>(rng.next_gaussian(0, 0.08));
    f.s2 = engine::train_chained_stage(c2, mid, w2, nullptr);

    Matrix fresh(64, d);
    for (std::size_t i = 0; i < fresh.size(); ++i)
      fresh.data()[i] = static_cast<float>(rng.next_double(0, 220));
    f.pool =
        maddness::quantize_activations(fresh, f.s1.activation_scale());
    return f;
  }

  std::vector<std::uint8_t> codes_for(std::size_t id) const {
    const std::size_t r = id % pool.rows;
    return std::vector<std::uint8_t>(pool.row(r),
                                     pool.row(r) + pool.cols);
  }
};

TEST(ServeTelemetryTest, LifecycleSpansUnderDelayChaos) {
  const std::uint64_t seed = serve::test_seed();
  SCOPED_TRACE(serve::seed_trace(seed));
  SessionGuard guard;
  auto& session = TraceSession::instance();
  session.enable();
  // Track names stick to the thread; name the client explicitly so a
  // name set by an earlier test in this binary can't masquerade as a
  // shard track.
  session.set_thread_track("client");

  PipelineFixture f = PipelineFixture::make(seed);
  serve::TmpDir dir("telemetry");
  serve::recovery::RequestJournal journal(dir.file("journal.ssjl"));
  serve::recovery::CheckpointManager ckpts(dir.str());
  serve::recovery::FaultInjector inject(seed);
  // Deterministic timing chaos across the queue-push and batch-formed
  // sites: spans must nest and order correctly however the scheduler
  // lands.
  inject.arm_random_delays(6, 40, std::chrono::microseconds(250));

  constexpr std::size_t kRequests = 96;
  {
    serve::ServerOptions opts;
    opts.num_workers = 3;
    opts.queue_capacity = 128;
    opts.batcher.max_batch_tokens = 8;
    opts.batcher.max_wait = std::chrono::microseconds(200);
    opts.recovery.journal = &journal;
    opts.recovery.checkpoints = &ckpts;
    opts.recovery.checkpoint_every = 32;
    opts.recovery.fault = &inject;
    serve::InferenceServer server(opts);
    server.register_pipeline("pipe", {&f.s1, &f.s2});
    std::vector<std::future<serve::InferenceResult>> futs;
    for (std::size_t i = 0; i < kRequests; ++i)
      futs.push_back(server.submit("pipe@latest", f.codes_for(i), 1));
    for (auto& fut : futs) fut.get();
    server.shutdown();
  }
  session.disable();

  const auto tracks = session.collect();
  ASSERT_FALSE(tracks.empty());

  std::set<Stage> stages_seen;
  std::set<std::string> shard_tracks;
  std::vector<bool> queue_wait_covered(kRequests, false);
  std::vector<bool> ack_covered(kRequests, false);
  for (const auto& track : tracks) {
    ASSERT_EQ(track.pushed, track.events.size())
        << "ring wrapped; default capacity should hold this workload";
    std::uint64_t prev_end = 0;
    for (const SpanEvent& ev : track.events) {
      stages_seen.insert(ev.stage);
      EXPECT_LE(ev.t_begin_ns, ev.t_end_ns);
      // Pushes happen at span close on the owner thread, so per-track
      // end times are monotonic — the property Perfetto track
      // reconstruction relies on.
      EXPECT_GE(ev.t_end_ns, prev_end);
      prev_end = ev.t_end_ns;
      if (ev.id_lo == kNoRequestId) continue;
      EXPECT_LE(ev.id_lo, ev.id_hi);
      EXPECT_LT(ev.id_hi, kRequests);
      if (ev.stage == Stage::kQueueWait) {
        EXPECT_EQ(ev.id_lo, ev.id_hi) << "queue_wait is per-request";
        queue_wait_covered[ev.id_lo] = true;
      }
      if (ev.stage == Stage::kAck)
        for (std::uint64_t id = ev.id_lo; id <= ev.id_hi; ++id)
          ack_covered[id] = true;
      // The fused walk tags its kernel-stage spans with the pipeline
      // stage index; a 2-stage pipe only has boundary 0.
      if (ev.stage == Stage::kEpilogue) EXPECT_EQ(ev.tag, 0u);
    }
    if (track.track.rfind("shard-", 0) == 0) {
      shard_tracks.insert(track.track);
      bool has_exec_stage = false;
      for (const SpanEvent& ev : track.events)
        if (ev.stage == Stage::kEncode ||
            ev.stage == Stage::kLutAccumulate)
          has_exec_stage = true;
      EXPECT_TRUE(has_exec_stage)
          << track.track << " recorded no kernel-stage spans";
    }
  }

  // Every lifecycle stage the pipeline exercises must appear.
  for (Stage st :
       {Stage::kAdmit, Stage::kQueueWait, Stage::kBatchForm,
        Stage::kEncode, Stage::kLutAccumulate, Stage::kEpilogue,
        Stage::kAck, Stage::kJournalAppend, Stage::kCheckpoint,
        Stage::kSwap})
    EXPECT_TRUE(stages_seen.count(st))
        << "missing stage " << telemetry::stage_name(st);

  // Span-tree completeness: every request has its own queue-wait span
  // and is covered by some ack-range span.
  for (std::size_t id = 0; id < kRequests; ++id) {
    EXPECT_TRUE(queue_wait_covered[id]) << "request " << id;
    EXPECT_TRUE(ack_covered[id]) << "request " << id;
  }
  EXPECT_FALSE(shard_tracks.empty());

  // The same run renders as loadable Chrome JSON.
  const std::string json = session.render_chrome_json();
  EXPECT_TRUE(json_balanced(json));
  // Epilogue spans come from the fused plan walk and carry the
  // pipeline stage index as their tag: a 2-stage pipe has exactly one
  // interior boundary, so every epilogue span renders as "epilogue/0".
  EXPECT_TRUE(contains(json, "\"name\":\"epilogue/0\""));
  EXPECT_FALSE(contains(json, "\"name\":\"epilogue\""));
  EXPECT_TRUE(contains(json, "\"name\":\"queue_wait\""));
  EXPECT_TRUE(contains(json, "\"shard-0\""));
}

TEST(ServeTelemetryTest, ReplayedRequestsProduceSpans) {
  SessionGuard guard;
  auto& session = TraceSession::instance();

  serve::ServeFixture f = serve::ServeFixture::make();
  serve::ServerOptions opts;
  opts.num_workers = 2;
  serve::InferenceServer server(opts);
  server.register_model("m", f.amm);

  // Journal records as a crashed run would have left them: admitted,
  // never acknowledged.
  std::vector<serve::recovery::AcceptedRecord> records;
  for (std::uint64_t id = 100; id < 105; ++id) {
    serve::recovery::AcceptedRecord rec;
    rec.id = id;
    rec.rows = 1;
    rec.codes = f.codes_for(id);
    rec.model = "m";
    rec.model_version = 1;
    records.push_back(std::move(rec));
  }

  session.enable();
  auto futs = server.replay(records);
  for (auto& fut : futs) fut.get();
  server.shutdown();
  session.disable();

  std::set<Stage> stages_seen;
  std::set<std::uint64_t> replayed_ids;
  for (const auto& track : session.collect())
    for (const SpanEvent& ev : track.events) {
      stages_seen.insert(ev.stage);
      if (ev.stage == Stage::kQueueWait) replayed_ids.insert(ev.id_lo);
    }
  EXPECT_TRUE(stages_seen.count(Stage::kReplay));
  EXPECT_TRUE(stages_seen.count(Stage::kAdmit));
  EXPECT_TRUE(stages_seen.count(Stage::kAck));
  // Replayed spans carry the original journal ids, not fresh ones.
  EXPECT_EQ(replayed_ids,
            (std::set<std::uint64_t>{100, 101, 102, 103, 104}));
}

#endif  // SSMA_TRACE_ENABLED

// ------------------------------------------------- macro compile gate

TEST(TraceMacroTest, MacrosCompileAndAreInertWhenDisabled) {
  SessionGuard guard;  // session disabled
  // In the OFF build these expand to ((void)0); in the ON build the
  // disabled session makes them no-ops. Either way: no spans.
  SSMA_TRACE_SET_THREAD("macro-test");
  {
    SSMA_TRACE_REQUEST_SCOPE(1, 4);
    SSMA_TRACE_SPAN(kEncode);
    SSMA_TRACE_SPAN_IDS(kAck, 1, 4);
  }
  SSMA_TRACE_RECORD(kAdmit, std::uint64_t{0}, std::uint64_t{5},
                    std::uint64_t{1}, std::uint64_t{1});
  EXPECT_TRUE(TraceSession::instance().collect().empty());
}

// ------------------------------------------------------ sim exporter

TEST(SimTraceTest, ChromeJsonFromSignalRecords) {
  sim::TraceSink sink;
  sink.record(0, "lut.req", "idle");
  sink.record(1'000'000, "lut.req", "fire");
  sink.record(500'000, "enc.state", "busy");
  sink.record(3'000'000, "lut.req", "idle");

  const std::string json = sink.render_chrome_json("macro");
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  // One named track per signal.
  EXPECT_TRUE(contains(json, "\"thread_name\""));
  EXPECT_TRUE(contains(json, "\"lut.req\""));
  EXPECT_TRUE(contains(json, "\"enc.state\""));
  EXPECT_TRUE(contains(json, "\"macro\""));
  // Held values become complete events named by the value; the final
  // record of each signal is an instant.
  EXPECT_TRUE(contains(json, "\"ph\":\"X\""));
  EXPECT_TRUE(contains(json, "\"name\":\"fire\""));
  EXPECT_TRUE(contains(json, "\"ph\":\"i\""));
  EXPECT_TRUE(contains(json, "\"name\":\"busy\""));
  // 1e6 ps = 1 us.
  EXPECT_TRUE(contains(json, "\"ts\":1.000"));
}

}  // namespace
}  // namespace ssma
