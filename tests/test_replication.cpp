// Replication tests: the kRepl* wire messages (round-trip + a golden
// on-the-wire fixture), the leader/follower streaming pair (byte-exact
// journal prefix, resume-from-high-water-mark handshake, lag
// watermarks per ack mode), seeded network chaos (drop / torn / dup /
// delay self-heal), typed StaleFollower / ReplicaNotReady rejections,
// in-process promotion across a hot-swap boundary, and NetClient's
// capped-backoff reconnect. The invariant under test everywhere: the
// follower journal is a byte-prefix of the leader's, so a promoted
// follower answers every replicated request bit-identically.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/model_registry.hpp"
#include "maddness/framing.hpp"
#include "net/server.hpp"
#include "net/wire_protocol.hpp"
#include "serve/recovery/checkpoint.hpp"
#include "serve/recovery/fault_injector.hpp"
#include "serve/recovery/journal.hpp"
#include "serve/replication/replica_applier.hpp"
#include "serve/replication/replication.hpp"
#include "serve/server.hpp"
#include "serve_test_util.hpp"
#include "util/check.hpp"

namespace ssma::serve {
namespace {

using recovery::CheckpointManager;
using recovery::FaultInjector;
using recovery::FaultKind;
using recovery::FaultPlan;
using recovery::FaultSite;
using recovery::RequestJournal;
using replication::AckMode;
using replication::ApplierOptions;
using replication::ReplicaApplier;
using replication::ReplicationLog;
using replication::ReplicationOptions;

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.is_open()) << path;
  std::ostringstream oss;
  oss << is.rdbuf();
  return oss.str();
}

std::uint32_t crc_of(const std::vector<std::int16_t>& out) {
  return maddness::crc32(out.data(), out.size() * sizeof(std::int16_t));
}

// ------------------------------------------------- wire round-trips

std::vector<net::ReplMessage> canonical_messages(const std::string& rec) {
  net::ReplMessage hello;
  hello.type = net::MsgType::kReplHello;
  hello.arg = 42;   // follower durable seq
  hello.arg2 = 7;   // follower newest checkpoint version
  net::ReplMessage ckpt;
  ckpt.type = net::MsgType::kReplCheckpoint;
  ckpt.arg = 7;
  ckpt.bytes = "whole checkpoint files ship verbatim; any bytes do";
  net::ReplMessage record;
  record.type = net::MsgType::kReplRecord;
  record.arg = 43;  // journal seq
  record.bytes = rec;
  net::ReplMessage ack;
  ack.type = net::MsgType::kReplAck;
  ack.arg = 43;
  net::ReplMessage reject;
  reject.type = net::MsgType::kReplReject;
  reject.arg = static_cast<std::uint64_t>(RejectReason::kStaleFollower);
  reject.bytes = "resume seq 9 ahead of leader durable 3";
  return {hello, ckpt, record, ack, reject};
}

void expect_messages_equal(const net::ReplMessage& want,
                           const net::ReplMessage& got) {
  EXPECT_EQ(static_cast<int>(want.type), static_cast<int>(got.type));
  EXPECT_EQ(want.arg, got.arg);
  EXPECT_EQ(want.arg2, got.arg2);
  EXPECT_EQ(want.bytes, got.bytes);
}

TEST(ReplWire, EncodeParseRoundTripsEveryMessageType) {
  const auto msgs =
      canonical_messages(std::string("\x00\x01\xff raw", 7));
  for (const net::ReplMessage& m : msgs) {
    const std::string frame = m.encode();
    net::FrameDecoder dec(1u << 20);
    dec.feed(frame.data(), frame.size());
    std::string payload;
    ASSERT_EQ(dec.next(&payload), net::FrameDecoder::Result::kFrame);
    net::ReplMessage out;
    ASSERT_TRUE(net::parse_repl(payload, &out));
    expect_messages_equal(m, out);
    // A truncated payload is a parse failure, never a misparse.
    net::ReplMessage junk;
    EXPECT_FALSE(
        net::parse_repl(payload.substr(0, payload.size() - 1), &junk));
  }
}

TEST(ReplWire, ParseRejectsForeignPreludes) {
  // An infer request is not a replication message and vice versa: the
  // type ranges are disjoint, so a stream mix-up fails loudly.
  net::RpcRequest req;
  req.correlation_id = 9;
  req.model_ref = "m";
  req.rows = 1;
  req.codes = {1, 2, 3, 4};
  const std::string req_frame = req.encode();
  net::ReplMessage repl;
  EXPECT_FALSE(net::parse_repl(req_frame.substr(12), &repl));

  net::ReplMessage ack;
  ack.type = net::MsgType::kReplAck;
  ack.arg = 5;
  net::RpcRequest out;
  EXPECT_FALSE(net::parse_request(ack.encode().substr(12), &out));
}

// ------------------------------------------- golden wire fixture

// Guards the on-the-wire replication format against drift: a committed
// byte stream of one message of every type (the record carrying a real
// v2 journal record payload) must decode to exact field values and
// re-encode byte-identically. Regenerate (deliberate format bumps
// only) with --gtest_also_run_disabled_tests
// --gtest_filter='*RegenerateReplicationWireGolden*'
namespace wire_golden {

std::string path() {
  return std::string(SSMA_TEST_DATA_DIR) + "/replication_wire_golden.bin";
}

/// The canonical record payload: the sole record of a deterministic
/// journal — request 5 pinned m@2, one row of four codes.
std::string record_payload() {
  TmpDir dir("wiregold");
  const std::string p = dir.file("wire.jnl");
  {
    RequestJournal jnl(p);
    jnl.append_accepted(5, "m", 2, 1, {1, 2, 3, 4});
  }
  std::ifstream is(p, std::ios::binary);
  std::string magic(8, '\0');
  is.read(&magic[0], 8);
  return maddness::read_framed_blob(is);
}

}  // namespace wire_golden

TEST(ReplWire, GoldenWireFixtureIsStable) {
  const std::string bytes = slurp(wire_golden::path());
  const auto want = canonical_messages(wire_golden::record_payload());

  net::FrameDecoder dec(1u << 20);
  dec.feed(bytes.data(), bytes.size());
  std::string reencoded;
  std::size_t i = 0;
  std::string payload;
  while (dec.next(&payload) == net::FrameDecoder::Result::kFrame) {
    ASSERT_LT(i, want.size());
    net::ReplMessage got;
    ASSERT_TRUE(net::parse_repl(payload, &got)) << "frame " << i;
    expect_messages_equal(want[i], got);
    reencoded += got.encode();
    i++;
  }
  EXPECT_EQ(i, want.size());
  EXPECT_EQ(reencoded, bytes)
      << "replication wire re-encode changed bytes: format drift";

  // The embedded record payload is itself decodable — a follower can
  // interpret the streamed bytes without re-reading any file.
  recovery::ParsedRecord rec;
  ASSERT_TRUE(RequestJournal::parse_record(want[2].bytes, &rec));
  EXPECT_TRUE(rec.is_accepted);
  EXPECT_EQ(rec.accepted.id, 5u);
  EXPECT_EQ(rec.accepted.model, "m");
  EXPECT_EQ(rec.accepted.model_version, 2u);
  EXPECT_EQ(rec.accepted.rows, 1u);
  EXPECT_EQ(rec.accepted.codes, (std::vector<std::uint8_t>{1, 2, 3, 4}));
}

// Not a test: regenerates the golden fixture after a deliberate wire
// format bump.
TEST(ReplWire, DISABLED_RegenerateReplicationWireGolden) {
  std::ofstream os(wire_golden::path(), std::ios::binary);
  for (const auto& m : canonical_messages(wire_golden::record_payload())) {
    const std::string frame = m.encode();
    os.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  }
}

// ------------------------------------------------ streaming pair

TEST(Replication, StreamKeepsFollowerJournalByteExactAndDrainsLag) {
  const std::uint64_t seed = test_seed();
  SCOPED_TRACE(seed_trace(seed));
  const ServeFixture f = ServeFixture::make();
  TmpDir dir("repl");
  CheckpointManager ckpts(dir.file("leader-ckpts"));
  RequestJournal journal(dir.file("leader.jnl"));
  ReplicationOptions ropts;  // async
  ReplicationLog repl(journal, &ckpts, ropts);

  ServerOptions opts;
  opts.num_workers = 2;
  opts.recovery.journal = &journal;
  opts.recovery.checkpoints = &ckpts;
  opts.recovery.replication = &repl;
  InferenceServer server(opts);
  server.register_model("m", f.amm);

  // With no follower, every durable record is unreplicated and the lag
  // gauges say so (records, bytes and age).
  auto warm = server.submit("m", f.codes_for(0), 1);
  EXPECT_EQ(warm.get().outputs, f.expected(0, 1));
  {
    const auto st = repl.stats();
    EXPECT_GE(st.leader_seq, 1u);
    EXPECT_EQ(st.replicated_seq, 0u);
    EXPECT_EQ(st.followers, 0u);
    EXPECT_EQ(st.lag_records, st.leader_seq);
    EXPECT_GT(st.lag_bytes, 0u);
    EXPECT_GT(st.lag_ns, 0.0);
  }

  ApplierOptions aopts;
  aopts.leader_port = repl.port();
  aopts.dir = dir.file("follower");
  aopts.server.num_workers = 2;
  ReplicaApplier applier(aopts);
  ASSERT_TRUE(repl.wait_follower(1, std::chrono::milliseconds(10000)));

  constexpr std::size_t kRequests = 24;
  std::vector<std::future<InferenceResult>> futs;
  for (std::size_t id = 1; id < kRequests; ++id)
    futs.push_back(server.submit("m", f.codes_for(id), 1));
  for (std::size_t i = 0; i < futs.size(); ++i)
    EXPECT_EQ(futs[i].get().outputs, f.expected((i + 1) % f.pool.rows, 1));
  server.shutdown();  // quiesce: the journal stops growing

  ASSERT_TRUE(applier.wait_caught_up(journal.durable_seq(),
                                     std::chrono::milliseconds(10000)));
  EXPECT_EQ(slurp(applier.journal_path()), slurp(journal.path()))
      << "follower journal is not a byte-copy of the leader's";

  // wait_caught_up() observes the *follower's* durable watermark; the
  // final kReplAck can still be in flight toward the leader, so give
  // the leader-side watermark a bounded moment to converge.
  const auto ack_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < ack_deadline) {
    const auto s = repl.stats();
    if (s.replicated_seq == s.leader_seq) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const auto st = repl.stats();
  EXPECT_EQ(st.replicated_seq, st.leader_seq);
  EXPECT_EQ(st.lag_records, 0u);
  EXPECT_EQ(st.lag_bytes, 0u);
  EXPECT_EQ(st.lag_ns, 0.0);
  EXPECT_EQ(st.followers, 1u);
  EXPECT_GE(st.checkpoints_shipped, 1u);
  // >= not ==: a slow ack can trip the idle resend, which re-offers
  // records and counts each re-offer as sent.
  EXPECT_GE(st.records_sent, st.leader_seq);

  const auto ast = applier.stats();
  EXPECT_TRUE(ast.connected);
  EXPECT_TRUE(ast.has_standby);
  EXPECT_GE(ast.checkpoints_received, 1u);
  EXPECT_EQ(ast.applied_records, kRequests);
  EXPECT_EQ(ast.completed_records, kRequests);
  EXPECT_EQ(ast.dup_records, 0u);
  EXPECT_GT(ast.apply_rate_hz, 0.0);

  // The leader's exposition carries the replication block.
  const std::string prom = server.render_prometheus();
  EXPECT_NE(prom.find("ssma_repl_role 1"), std::string::npos);
  EXPECT_NE(prom.find("ssma_repl_lag_records 0"), std::string::npos);
  EXPECT_NE(prom.find("ssma_repl_followers 1"), std::string::npos);
}

TEST(Replication, ReconnectResumesFromDurableHighWaterMark) {
  const std::uint64_t seed = test_seed();
  SCOPED_TRACE(seed_trace(seed));
  const ServeFixture f = ServeFixture::make();
  TmpDir dir("resume");
  CheckpointManager ckpts(dir.file("leader-ckpts"));
  RequestJournal journal(dir.file("leader.jnl"));
  ReplicationOptions ropts;
  ReplicationLog repl(journal, &ckpts, ropts);

  ServerOptions opts;
  opts.num_workers = 1;
  opts.recovery.journal = &journal;
  opts.recovery.checkpoints = &ckpts;
  opts.recovery.replication = &repl;
  InferenceServer server(opts);
  server.register_model("m", f.amm);

  ApplierOptions aopts;
  aopts.leader_port = repl.port();
  aopts.dir = dir.file("follower");
  aopts.server.num_workers = 1;

  const auto drain = [&](std::size_t first, std::size_t n) {
    std::vector<std::future<InferenceResult>> futs;
    for (std::size_t id = first; id < first + n; ++id)
      futs.push_back(server.submit("m", f.codes_for(id), 1));
    for (auto& fut : futs) fut.get();
  };

  drain(0, 8);
  {
    ReplicaApplier applier(aopts);
    ASSERT_TRUE(applier.wait_caught_up(journal.durable_seq(),
                                       std::chrono::milliseconds(10000)));
    EXPECT_EQ(applier.stats().dup_records, 0u);
    EXPECT_GE(applier.stats().checkpoints_received, 1u);
  }  // follower goes away mid-stream

  drain(8, 8);
  server.shutdown();

  // A new applier over the same dir handshakes with its durable seq:
  // the leader re-streams only the delta — no duplicates, no second
  // checkpoint ship (the follower's is already the newest).
  ReplicaApplier applier(aopts);
  ASSERT_TRUE(applier.wait_caught_up(journal.durable_seq(),
                                     std::chrono::milliseconds(10000)));
  EXPECT_EQ(slurp(applier.journal_path()), slurp(journal.path()));
  EXPECT_EQ(applier.stats().dup_records, 0u);
  EXPECT_EQ(applier.stats().checkpoints_received, 0u)
      << "resume handshake re-shipped a checkpoint the follower had";
}

TEST(Replication, SyncAckedWritesWaitForTheWatermark) {
  const std::uint64_t seed = test_seed();
  SCOPED_TRACE(seed_trace(seed));
  const ServeFixture f = ServeFixture::make();
  TmpDir dir("sync");
  CheckpointManager ckpts(dir.file("leader-ckpts"));
  RequestJournal journal(dir.file("leader.jnl"));
  ReplicationOptions ropts;
  ropts.ack_mode = AckMode::kSync;
  ropts.ack_timeout = std::chrono::milliseconds(10000);
  ReplicationLog repl(journal, &ckpts, ropts);

  ServerOptions opts;
  opts.num_workers = 2;
  opts.recovery.journal = &journal;
  opts.recovery.checkpoints = &ckpts;
  opts.recovery.replication = &repl;
  InferenceServer server(opts);
  server.register_model("m", f.amm);

  ApplierOptions aopts;
  aopts.leader_port = repl.port();
  aopts.dir = dir.file("follower");
  aopts.server.num_workers = 1;
  ReplicaApplier applier(aopts);
  ASSERT_TRUE(repl.wait_follower(1, std::chrono::milliseconds(10000)));

  constexpr std::size_t kRequests = 12;
  std::vector<std::future<InferenceResult>> futs;
  for (std::size_t id = 0; id < kRequests; ++id)
    futs.push_back(server.submit("m", f.codes_for(id), 1));
  for (auto& fut : futs) fut.get();

  // Every acknowledged response's accept record is replicated: at
  // least one record per request is past the watermark, and no wait
  // degraded.
  const auto st = repl.stats();
  EXPECT_GE(st.replicated_seq, kRequests);
  EXPECT_EQ(st.sync_degraded, 0u);
  server.shutdown();
}

TEST(Replication, AckWaitsDegradeToAsyncWithoutAFollower) {
  const ServeFixture f = ServeFixture::make();
  TmpDir dir("degrade");
  CheckpointManager ckpts(dir.file("leader-ckpts"));
  RequestJournal journal(dir.file("leader.jnl"));
  ReplicationOptions ropts;
  ropts.ack_mode = AckMode::kSync;
  ropts.ack_timeout = std::chrono::milliseconds(50);
  ReplicationLog repl(journal, &ckpts, ropts);

  ServerOptions opts;
  opts.num_workers = 1;
  opts.recovery.journal = &journal;
  opts.recovery.checkpoints = &ckpts;
  opts.recovery.replication = &repl;
  InferenceServer server(opts);
  server.register_model("m", f.amm);

  // No follower will ever ack: the serving path must stay live (bounded
  // degrade), not wedge.
  auto a = server.submit("m", f.codes_for(0), 1);
  auto b = server.submit("m", f.codes_for(1), 1);
  EXPECT_EQ(a.get().outputs, f.expected(0, 1));
  EXPECT_EQ(b.get().outputs, f.expected(1, 1));
  EXPECT_GE(repl.stats().sync_degraded, 1u);
  server.shutdown();
}

TEST(Replication, WindowModePassesInsideAndDegradesPastTheWindow) {
  const ServeFixture f = ServeFixture::make();
  TmpDir dir("window");
  CheckpointManager ckpts(dir.file("leader-ckpts"));
  RequestJournal journal(dir.file("leader.jnl"));
  ReplicationOptions ropts;
  ropts.ack_mode = AckMode::kWindow;
  ropts.window = 4;
  ropts.ack_timeout = std::chrono::milliseconds(50);
  ReplicationLog repl(journal, &ckpts, ropts);

  ServerOptions opts;
  opts.num_workers = 1;
  opts.batcher.max_batch_tokens = 1;
  opts.batcher.max_wait = std::chrono::microseconds(0);
  opts.recovery.journal = &journal;
  opts.recovery.checkpoints = &ckpts;
  opts.recovery.replication = &repl;
  InferenceServer server(opts);
  server.register_model("m", f.amm);

  // With no follower the watermark stays at 0: the first request (seq 1
  // <= window) acks without waiting; later ones exceed the window and
  // degrade after the bounded timeout.
  constexpr std::size_t kRequests = 8;
  std::vector<std::future<InferenceResult>> futs;
  for (std::size_t id = 0; id < kRequests; ++id)
    futs.push_back(server.submit("m", f.codes_for(id), 1));
  for (auto& fut : futs) fut.get();
  const auto st = repl.stats();
  EXPECT_GE(st.sync_degraded, 1u);
  EXPECT_LT(st.sync_degraded, kRequests)
      << "even in-window acks waited: the window bound is not applied";
  server.shutdown();
}

// ------------------------------------------------- network chaos

TEST(Replication, ChaosStreamSelfHealsByteExact) {
  const std::uint64_t seed = test_seed();
  SCOPED_TRACE(seed_trace(seed));
  const ServeFixture f = ServeFixture::make();
  TmpDir dir("chaos");
  FaultInjector fault(seed);
  // The four named network sites at fixed points, a follower-side
  // receive drop, plus seed-derived chaos on top — every fire point
  // reproduces from SSMA_TEST_SEED.
  fault.arm_named("repl_delay", 3);
  fault.arm_named("repl_send_drop", 6);
  fault.arm_named("repl_dup", 10);
  fault.arm_named("repl_recv_torn", 14);
  FaultPlan recv_drop;
  recv_drop.site = FaultSite::kReplRecv;
  recv_drop.kind = FaultKind::kDropMessage;
  recv_drop.fire_at = 9;
  fault.arm(recv_drop);
  fault.arm_network_chaos(4, 60);

  CheckpointManager ckpts(dir.file("leader-ckpts"));
  RequestJournal journal(dir.file("leader.jnl"));
  ReplicationOptions ropts;
  ropts.fault = &fault;
  ReplicationLog repl(journal, &ckpts, ropts);

  ServerOptions opts;
  opts.num_workers = 2;
  opts.recovery.journal = &journal;
  opts.recovery.checkpoints = &ckpts;
  opts.recovery.replication = &repl;
  InferenceServer server(opts);
  server.register_model("m", f.amm);

  ApplierOptions aopts;
  aopts.leader_port = repl.port();
  aopts.dir = dir.file("follower");
  aopts.server.num_workers = 1;
  aopts.fault = &fault;
  ReplicaApplier applier(aopts);

  constexpr std::size_t kRequests = 40;
  std::vector<std::future<InferenceResult>> futs;
  for (std::size_t id = 0; id < kRequests; ++id)
    futs.push_back(server.submit("m", f.codes_for(id), 1));
  for (std::size_t i = 0; i < futs.size(); ++i)
    EXPECT_EQ(futs[i].get().outputs, f.expected(i % f.pool.rows, 1));
  server.shutdown();

  // Dropped, torn, duplicated and delayed messages all self-heal
  // through the gap-detect + resume handshake: the follower converges
  // to an exact byte-copy of the leader's journal.
  ASSERT_TRUE(applier.wait_caught_up(journal.durable_seq(),
                                     std::chrono::milliseconds(20000)))
      << "chaos stream never converged; fired: "
      << ::testing::PrintToString(fault.fired_log());
  EXPECT_EQ(slurp(applier.journal_path()), slurp(journal.path()))
      << "journals diverged under chaos; fired: "
      << ::testing::PrintToString(fault.fired_log());

  EXPECT_GE(fault.fired(), 4u);
  const auto st = repl.stats();
  EXPECT_GE(st.dropped_sends + st.torn_sends + st.dup_sends, 2u);
  const auto ast = applier.stats();
  EXPECT_GE(ast.reconnects + ast.gap_reconnects + ast.dup_records +
                ast.recv_faults,
            1u);
}

TEST(Replication, IdleResendHealsADroppedFinalRecord) {
  const ServeFixture f = ServeFixture::make();
  TmpDir dir("idledrop");
  FaultInjector fault(1);

  CheckpointManager ckpts(dir.file("leader-ckpts"));
  RequestJournal journal(dir.file("leader.jnl"));
  ReplicationOptions ropts;
  ropts.fault = &fault;
  ropts.resend_after = std::chrono::milliseconds(50);
  ReplicationLog repl(journal, &ckpts, ropts);

  ServerOptions opts;
  opts.num_workers = 1;
  opts.recovery.journal = &journal;
  opts.recovery.checkpoints = &ckpts;
  opts.recovery.replication = &repl;
  InferenceServer server(opts);
  server.register_model("m", f.amm);

  ApplierOptions aopts;
  aopts.leader_port = repl.port();
  aopts.dir = dir.file("follower");
  aopts.server.num_workers = 1;
  ReplicaApplier applier(aopts);
  ASSERT_TRUE(repl.wait_follower(1, std::chrono::milliseconds(10000)));

  // Converge on a warm-up request so the send-poll count is stable.
  // Its completion record lands asynchronously after the future, so
  // wait for the leader journal itself to quiesce at 2 records
  // (accept + completed) before snapshotting the poll count.
  auto warm = server.submit("m", f.codes_for(0), 1);
  EXPECT_EQ(warm.get().outputs, f.expected(0, 1));
  const auto quiesce_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (journal.durable_seq() < 2 &&
         std::chrono::steady_clock::now() < quiesce_deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_EQ(journal.durable_seq(), 2u);
  ASSERT_TRUE(applier.wait_caught_up(journal.durable_seq(),
                                     std::chrono::milliseconds(10000)));

  // Drop the send of the stream's LAST record — the final request's
  // completion record (poll +1 is its accept record) — then stop
  // traffic. No later record exists for the follower to gap-detect,
  // so only the idle resend can re-offer it.
  FaultPlan drop;
  drop.site = FaultSite::kReplSend;
  drop.kind = FaultKind::kDropMessage;
  drop.fire_at = fault.polls(FaultSite::kReplSend) + 2;
  fault.arm(drop);
  auto last = server.submit("m", f.codes_for(1), 1);
  EXPECT_EQ(last.get().outputs, f.expected(1, 1));
  server.shutdown();  // quiesce: the journal stops growing

  ASSERT_TRUE(applier.wait_caught_up(journal.durable_seq(),
                                     std::chrono::milliseconds(20000)))
      << "dropped final record was never re-offered; fired: "
      << ::testing::PrintToString(fault.fired_log());
  EXPECT_EQ(slurp(applier.journal_path()), slurp(journal.path()))
      << "follower journal is not a byte-copy of the leader's";
  const auto st = repl.stats();
  EXPECT_GE(st.dropped_sends, 1u);
  EXPECT_GE(st.idle_resends, 1u);
  // The record arrived in-stream and in-order: no gap was ever seen.
  EXPECT_EQ(applier.stats().gap_reconnects, 0u);
}

TEST(Replication, LagBookkeepingStaysBoundedWithoutAFollower) {
  const ServeFixture f = ServeFixture::make();
  TmpDir dir("pendingcap");
  CheckpointManager ckpts(dir.file("leader-ckpts"));
  RequestJournal journal(dir.file("leader.jnl"));
  ReplicationOptions ropts;  // async: acks never wait
  ReplicationLog repl(journal, &ckpts, ropts);

  ServerOptions opts;
  opts.num_workers = 1;
  opts.recovery.journal = &journal;
  opts.recovery.checkpoints = &ckpts;
  opts.recovery.replication = &repl;
  InferenceServer server(opts);
  server.register_model("m", f.amm);

  // A leader whose follower is down (or never configured to connect)
  // must not grow a lag-bookkeeping entry per request for the process
  // lifetime; the oldest entry survives so lag_ns keeps measuring.
  constexpr std::size_t kRequests = 32;
  std::vector<std::future<InferenceResult>> futs;
  for (std::size_t id = 0; id < kRequests; ++id)
    futs.push_back(server.submit("m", f.codes_for(id), 1));
  for (std::size_t i = 0; i < futs.size(); ++i)
    EXPECT_EQ(futs[i].get().outputs, f.expected(i % f.pool.rows, 1));
  server.shutdown();

  const auto st = repl.stats();
  EXPECT_GE(st.lag_records, kRequests);  // accept + completed each
  EXPECT_LE(st.pending_entries, 2u);
  EXPECT_GT(st.lag_ns, 0.0);
}

// -------------------------------------------- typed rejections

TEST(Replication, StaleFollowerGetsTypedRejection) {
  TmpDir dir("stale");
  // A follower whose journal holds history this leader never wrote:
  // resuming it would require the leader to invent records, so the
  // handshake must refuse with the typed reason, not a silent close.
  const std::string follower_dir = dir.file("follower");
  std::filesystem::create_directories(follower_dir);
  {
    RequestJournal fj(follower_dir + "/journal.ssj");
    fj.append_accepted(0, 1, {1, 2, 3, 4});
    fj.append_accepted(1, 1, {5, 6, 7, 8});
    fj.append_completed(0, 0, 0xBEEF);
  }

  CheckpointManager ckpts(dir.file("leader-ckpts"));
  RequestJournal journal(dir.file("leader.jnl"));  // empty: seq 0
  ReplicationOptions ropts;
  ReplicationLog repl(journal, &ckpts, ropts);

  ApplierOptions aopts;
  aopts.leader_port = repl.port();
  aopts.dir = follower_dir;
  aopts.server.num_workers = 1;
  ReplicaApplier applier(aopts);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!applier.stats().rejected &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const auto ast = applier.stats();
  ASSERT_TRUE(ast.rejected) << "leader never rejected the stale follower";
  EXPECT_EQ(ast.reject_reason, RejectReason::kStaleFollower);
  EXPECT_GE(repl.stats().rejected_followers, 1u);

  try {
    applier.promote();
    FAIL() << "promoting a rejected follower must throw";
  } catch (const RejectedError& e) {
    EXPECT_EQ(e.reason(), RejectReason::kStaleFollower);
  }
}

TEST(Replication, PromoteBeforeFirstCheckpointIsTypedNotReady) {
  // A dead port: bind an ephemeral listener, note the port, close it.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t dead_port = ntohs(addr.sin_port);
  ::close(fd);

  TmpDir dir("notready");
  ApplierOptions aopts;
  aopts.leader_port = dead_port;
  aopts.dir = dir.file("follower");
  aopts.server.num_workers = 1;
  aopts.backoff_base = std::chrono::milliseconds(5);
  aopts.backoff_cap = std::chrono::milliseconds(20);
  ReplicaApplier applier(aopts);

  // The applier never connects, so `reconnects` stays 0 by definition;
  // the retry loop is visible through the dial counter instead.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (applier.stats().connect_attempts < 3 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(applier.stats().connect_attempts, 3u)
      << "applier is not retrying with backoff";
  EXPECT_EQ(applier.stats().reconnects, 0u);
  EXPECT_FALSE(applier.stats().connected);
  EXPECT_FALSE(applier.stats().has_standby);

  try {
    applier.promote();
    FAIL() << "promoting an empty standby must throw";
  } catch (const RejectedError& e) {
    EXPECT_EQ(e.reason(), RejectReason::kReplicaNotReady);
  }
}

// --------------------------------------- in-process promotion

// The full pair, in one process: a sync-acked leader hot-swaps mid
// stream, the follower is promoted after the leader stops, and the
// promoted server (a) carries the identical name@version map, (b)
// holds a completion CRC for every acknowledged request equal to the
// leader's, and (c) serves both banks bit-identically to the leader's
// reference — the zero-RPO contract, in-process edition (the
// cross-process kill matrix lives in test_recovery.cpp).
TEST(Replication, PromotionServesByteIdenticalResultsAcrossHotSwap) {
  const std::uint64_t seed = test_seed();
  SCOPED_TRACE(seed_trace(seed));
  const ServeFixture old_fx = ServeFixture::make(4, 8, 64, 7);
  const ServeFixture new_fx = ServeFixture::make(4, 8, 64, 99);
  const auto expected_on = [&](const maddness::Amm& amm,
                               const std::vector<std::uint8_t>& codes) {
    maddness::QuantizedActivations q;
    q.rows = 1;
    q.cols = old_fx.pool.cols;
    q.scale = old_fx.pool.scale;
    q.codes = codes;
    return amm.apply_int16(q);
  };

  TmpDir dir("promote");
  CheckpointManager ckpts(dir.file("leader-ckpts"));
  RequestJournal journal(dir.file("leader.jnl"));
  ReplicationOptions ropts;
  ropts.ack_mode = AckMode::kSync;
  ropts.ack_timeout = std::chrono::milliseconds(10000);
  ReplicationLog repl(journal, &ckpts, ropts);

  ServerOptions opts;
  opts.num_workers = 2;
  opts.recovery.journal = &journal;
  opts.recovery.checkpoints = &ckpts;
  opts.recovery.replication = &repl;
  InferenceServer server(opts);
  server.register_model("alpha", old_fx.amm);

  ApplierOptions aopts;
  aopts.leader_port = repl.port();
  aopts.dir = dir.file("follower");
  aopts.server.num_workers = 2;
  aopts.checkpoint_every = 8;
  ReplicaApplier applier(aopts);
  ASSERT_TRUE(repl.wait_follower(1, std::chrono::milliseconds(10000)));

  constexpr std::size_t kPerPhase = 10;
  struct Served {
    std::uint64_t id;
    std::uint64_t version;
    std::vector<std::uint8_t> codes;
    std::vector<std::int16_t> outputs;
  };
  std::vector<Served> served;
  const auto run_phase = [&](std::uint64_t want_version) {
    std::vector<std::pair<std::vector<std::uint8_t>,
                          std::future<InferenceResult>>> futs;
    for (std::size_t i = 0; i < kPerPhase; ++i) {
      auto codes = old_fx.codes_for(i);
      auto fut = server.submit("alpha", codes, 1);
      futs.emplace_back(std::move(codes), std::move(fut));
    }
    for (auto& [codes, fut] : futs) {
      InferenceResult res = fut.get();
      EXPECT_EQ(res.model_version, want_version);
      served.push_back(
          {res.request_id, res.model_version, codes, res.outputs});
    }
  };
  run_phase(1);
  EXPECT_EQ(server.register_model("alpha", new_fx.amm), 2u);
  run_phase(2);

  server.shutdown();
  ASSERT_TRUE(applier.wait_caught_up(journal.durable_seq(),
                                     std::chrono::milliseconds(10000)));
  repl.stop();

  replication::PromotionReport rep;
  auto promoted = applier.promote(&rep);
  ASSERT_NE(promoted, nullptr);
  EXPECT_EQ(rep.crc_mismatches, 0u);
  EXPECT_EQ(rep.replay_failures, 0u);
  EXPECT_EQ(rep.applied, 2 * kPerPhase);
  EXPECT_EQ(rep.completed_backfilled, 0u)
      << "a fully replicated stream needs no completion backfill";
  EXPECT_GT(rep.seal_to_serving_ms, 0.0);

  // The registry replicated exactly — including the hot-swap map.
  EXPECT_EQ(promoted->registry().names(),
            (std::vector<std::string>{"alpha"}));
  EXPECT_EQ(promoted->registry().versions("alpha"),
            (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(promoted->registry().latest_version("alpha"), 2u);

  // Both journals hold the same completion CRC for every acknowledged
  // request, and it is the CRC of the exact bytes the leader returned.
  const auto leader_replay = RequestJournal::read(journal.path());
  const auto follower_replay =
      RequestJournal::read(applier.journal_path());
  ASSERT_EQ(served.size(), 2 * kPerPhase);
  for (const Served& s : served) {
    const maddness::Amm& bank = s.version == 2 ? new_fx.amm : old_fx.amm;
    EXPECT_EQ(s.outputs, expected_on(bank, s.codes));
    const std::uint32_t want = crc_of(s.outputs);
    ASSERT_NE(leader_replay.completed_crc.find(s.id),
              leader_replay.completed_crc.end());
    EXPECT_EQ(leader_replay.completed_crc.at(s.id), want);
    ASSERT_NE(follower_replay.completed_crc.find(s.id),
              follower_replay.completed_crc.end());
    EXPECT_EQ(follower_replay.completed_crc.at(s.id), want)
        << "promoted follower diverged on acked request " << s.id;
  }

  // The promoted server serves both banks bit-identically and hands
  // out ids past the dead leader's watermark.
  auto on_old = promoted->submit("alpha@1", old_fx.codes_for(3), 1);
  auto on_new = promoted->submit("alpha@2", old_fx.codes_for(3), 1);
  const InferenceResult r1 = on_old.get();
  const InferenceResult r2 = on_new.get();
  EXPECT_EQ(r1.outputs, expected_on(old_fx.amm, old_fx.codes_for(3)));
  EXPECT_EQ(r2.outputs, expected_on(new_fx.amm, old_fx.codes_for(3)));
  EXPECT_GE(r1.request_id, 2 * kPerPhase);
  promoted->shutdown();

  // Promotion state is visible in the exposition.
  const std::string prom = promoted->render_prometheus();
  EXPECT_NE(prom.find("ssma_repl_role 2"), std::string::npos);
  EXPECT_NE(prom.find("ssma_repl_applied_records 20"), std::string::npos);
}

// ------------------------------------------- NetClient hardening

TEST(NetClientRetry, BacksOffUntilTheListenerAppears) {
  const std::uint64_t seed = test_seed();
  SCOPED_TRACE(seed_trace(seed));
  // Bind without listening: connects are refused until the "server"
  // comes up, which is exactly what a restarting leader looks like.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t port = ntohs(addr.sin_port);

  std::thread late_listen([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    ::listen(fd, 8);
  });
  net::NetClient client;
  EXPECT_NO_THROW(client.connect_with_retry(
      "127.0.0.1", port, /*max_attempts=*/100,
      std::chrono::milliseconds(5), std::chrono::milliseconds(40), seed));
  EXPECT_FALSE(client.broken());
  late_listen.join();
  client.close();
  ::close(fd);
}

TEST(NetClientRetry, ExhaustedAttemptsThrowTheConnectError) {
  // A dead port (bound once, then closed).
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t dead_port = ntohs(addr.sin_port);
  ::close(fd);

  net::NetClient client;
  EXPECT_THROW(client.connect_with_retry(
                   "127.0.0.1", dead_port, /*max_attempts=*/3,
                   std::chrono::milliseconds(1),
                   std::chrono::milliseconds(4), test_seed()),
               CheckError);
}

}  // namespace
}  // namespace ssma::serve
