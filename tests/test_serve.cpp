// Tests for the batched serving runtime on the v2 Engine API:
// queue/batcher mechanics (including model-handle batching), the
// central bit-exactness contract (threaded InferenceServer results ==
// single-threaded Amm::apply_int16 for every request, under 4+ workers
// and randomized multi-client arrival order), the engine-backend matrix
// (kernel / simulate+PPA / device-paced), multi-model serving with
// per-model metrics, operator save/load round trips, backpressure,
// typed shutdown rejection, the deprecated v1 single-model shims, and
// the load generator's two arrival models.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <set>
#include <sstream>
#include <thread>

#include "core/ppa_report.hpp"
#include "engine/execution_engine.hpp"
#include "engine/model_registry.hpp"
#include "maddness/amm.hpp"
#include "serve/batcher.hpp"
#include "serve/load_generator.hpp"
#include "serve/metrics.hpp"
#include "serve/request_queue.hpp"
#include "serve/server.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ssma::serve {
namespace {

/// A small trained operator + a quantized request pool, shared by tests.
struct Fixture {
  maddness::Amm amm;
  maddness::QuantizedActivations pool;

  static Fixture make(int ncodebooks = 4, int nout = 8,
                      std::size_t pool_rows = 256) {
    Rng rng(7);
    const std::size_t d = static_cast<std::size_t>(ncodebooks) * 9;
    Matrix train(512, d);
    for (std::size_t i = 0; i < train.size(); ++i)
      train.data()[i] = static_cast<float>(rng.next_double(0, 220));
    Matrix w(d, static_cast<std::size_t>(nout));
    for (std::size_t i = 0; i < w.size(); ++i)
      w.data()[i] = static_cast<float>(rng.next_gaussian(0, 0.08));

    maddness::Config cfg;
    cfg.ncodebooks = ncodebooks;
    Fixture f{maddness::Amm::train(cfg, train, w), {}};

    Matrix fresh(pool_rows, d);
    for (std::size_t i = 0; i < fresh.size(); ++i)
      fresh.data()[i] = static_cast<float>(rng.next_double(0, 220));
    f.pool =
        maddness::quantize_activations(fresh, f.amm.activation_scale());
    return f;
  }

  /// Reference outputs for a row slice of the pool (with wraparound).
  std::vector<std::int16_t> expected(std::size_t first_row,
                                     std::size_t rows) const {
    maddness::QuantizedActivations q;
    q.rows = rows;
    q.cols = pool.cols;
    q.scale = pool.scale;
    std::size_t r = first_row;
    for (std::size_t i = 0; i < rows; ++i) {
      q.codes.insert(q.codes.end(), pool.row(r), pool.row(r) + pool.cols);
      r = (r + 1) % pool.rows;
    }
    return amm.apply_int16(q);
  }
};

InferenceRequest make_request(std::uint64_t id, std::size_t rows,
                              std::size_t cols) {
  InferenceRequest req;
  req.id = id;
  req.rows = rows;
  req.codes.assign(rows * cols, static_cast<std::uint8_t>(id & 0xff));
  req.enqueued_at = Clock::now();
  return req;
}

// ---------------------------------------------------------------- queue

TEST(RequestQueue, FifoAndClose) {
  RequestQueue q(8);
  EXPECT_TRUE(q.push(make_request(1, 1, 4)));
  EXPECT_TRUE(q.push(make_request(2, 1, 4)));
  InferenceRequest out;
  ASSERT_EQ(q.pop_wait(&out), PopStatus::kOk);
  EXPECT_EQ(out.id, 1u);
  q.close();
  EXPECT_FALSE(q.push(make_request(3, 1, 4)));
  ASSERT_EQ(q.pop_wait(&out), PopStatus::kOk);  // drains the remainder
  EXPECT_EQ(out.id, 2u);
  EXPECT_EQ(q.pop_wait(&out), PopStatus::kClosed);
}

TEST(RequestQueue, TryPushRespectsCapacity) {
  RequestQueue q(2);
  EXPECT_TRUE(q.try_push(make_request(1, 1, 4)));
  EXPECT_TRUE(q.try_push(make_request(2, 1, 4)));
  EXPECT_FALSE(q.try_push(make_request(3, 1, 4)));
  EXPECT_EQ(q.size(), 2u);
}

TEST(RequestQueue, PopCompatibleReportsOversizedHead) {
  RequestQueue q(4);
  EXPECT_TRUE(q.push(make_request(1, 10, 4)));
  InferenceRequest out;
  EXPECT_EQ(q.pop_compatible(5, Clock::now() + std::chrono::seconds(1),
                             &out),
            PopStatus::kWouldExceed);
  EXPECT_EQ(q.pop_compatible(10, Clock::now() + std::chrono::seconds(1),
                             &out),
            PopStatus::kOk);
  // Empty queue + short deadline -> timeout.
  EXPECT_EQ(q.pop_compatible(
                10, Clock::now() + std::chrono::milliseconds(1), &out),
            PopStatus::kTimeout);
}

// -------------------------------------------------------------- batcher

TEST(Batcher, CoalescesUpToTokenBudget) {
  RequestQueue q(64);
  for (std::uint64_t i = 0; i < 10; ++i)
    ASSERT_TRUE(q.push(make_request(i, 3, 4)));
  q.close();

  BatcherOptions opts;
  opts.max_batch_tokens = 8;  // fits two 3-row requests
  opts.max_wait = std::chrono::microseconds(0);
  const Batcher batcher(opts);

  std::vector<std::size_t> sizes;
  std::uint64_t expect_id = 0;
  for (;;) {
    Batch b = batcher.next_batch(q);
    if (b.empty()) break;
    sizes.push_back(b.tokens);
    for (const InferenceRequest& r : b.requests)
      EXPECT_EQ(r.id, expect_id++) << "FIFO order violated";
    EXPECT_LE(b.tokens, opts.max_batch_tokens);
  }
  EXPECT_EQ(expect_id, 10u);
  EXPECT_EQ(sizes.size(), 5u);  // 10 requests, 2 per batch
}

TEST(Batcher, OversizedRequestServedAlone) {
  RequestQueue q(4);
  ASSERT_TRUE(q.push(make_request(0, 100, 4)));
  ASSERT_TRUE(q.push(make_request(1, 1, 4)));
  q.close();

  BatcherOptions opts;
  opts.max_batch_tokens = 8;
  opts.max_wait = std::chrono::microseconds(0);
  const Batcher batcher(opts);
  Batch b = batcher.next_batch(q);
  ASSERT_EQ(b.requests.size(), 1u);
  EXPECT_EQ(b.tokens, 100u);
  b = batcher.next_batch(q);
  ASSERT_EQ(b.requests.size(), 1u);
  EXPECT_EQ(b.tokens, 1u);
}

TEST(Batcher, ModelAffineCoalescingNeverMixesOrFragments) {
  // Interleaved two-model traffic: batches must be single-model, full
  // (affine pulls past the other model's requests), and per-model FIFO.
  const Fixture f = Fixture::make();
  const engine::ModelRef ma = engine::ModelHandle::from_amm("a", 1, f.amm);
  const engine::ModelRef mb = engine::ModelHandle::from_amm("b", 1, f.amm);

  RequestQueue q(64);
  for (std::uint64_t i = 0; i < 12; ++i) {
    InferenceRequest req = make_request(i, 2, 4);
    req.model = (i % 2 == 0) ? ma : mb;
    ASSERT_TRUE(q.push(std::move(req)));
  }
  q.close();

  BatcherOptions opts;
  opts.max_batch_tokens = 6;  // three 2-row requests per batch
  opts.max_wait = std::chrono::microseconds(0);
  const Batcher batcher(opts);

  std::uint64_t next_a = 0, next_b = 1;
  std::size_t batches = 0;
  for (;;) {
    Batch b = batcher.next_batch(q);
    if (b.empty()) break;
    batches++;
    EXPECT_EQ(b.tokens, 6u) << "affine batch under-filled";
    const void* key = b.requests.front().model.get();
    for (const InferenceRequest& r : b.requests) {
      EXPECT_EQ(r.model.get(), key) << "batch mixed model handles";
      std::uint64_t& next = key == ma.get() ? next_a : next_b;
      EXPECT_EQ(r.id, next) << "per-model FIFO violated";
      next += 2;
    }
  }
  EXPECT_EQ(batches, 4u);  // 12 requests, 3 per batch, never mixed
  EXPECT_EQ(next_a, 12u);
  EXPECT_EQ(next_b, 13u);
}

TEST(Batcher, AlignmentRoundsBudgetDown) {
  BatcherOptions opts;
  opts.max_batch_tokens = 30;
  opts.align_tokens = 8;
  EXPECT_EQ(Batcher(opts).budget_tokens(), 24u);
  opts.max_batch_tokens = 5;  // smaller than alignment
  EXPECT_EQ(Batcher(opts).budget_tokens(), 8u);
}

// -------------------------------------------------------------- metrics

TEST(LatencyHistogram, PercentilesWithinBucketError) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i) * 1e3);
  // Geometric buckets at ratio 1.12 -> <= ~12% relative error.
  EXPECT_NEAR(h.percentile_ns(50), 500e3, 500e3 * 0.13);
  EXPECT_NEAR(h.percentile_ns(99), 990e3, 990e3 * 0.13);
  EXPECT_DOUBLE_EQ(h.max_ns(), 1000e3);
  EXPECT_NEAR(h.mean_ns(), 500.5e3, 1.0);

  LatencyHistogram other;
  other.add(2e6);
  h.merge(other);
  EXPECT_EQ(h.count(), 1001u);
  EXPECT_DOUBLE_EQ(h.max_ns(), 2e6);
}

TEST(Metrics, CountsAndRates) {
  Metrics m;
  m.mark_start();
  m.record_batch("a", 6, {1e3, 2e3}, {5e3, 6e3});
  m.record_batch("b", 2, {1e3}, {2e3});
  m.mark_stop();
  const MetricsSnapshot s = m.snapshot();
  EXPECT_EQ(s.requests, 3u);
  EXPECT_EQ(s.tokens, 8u);
  EXPECT_EQ(s.batches, 2u);
  EXPECT_DOUBLE_EQ(s.mean_batch_tokens, 4.0);
  EXPECT_GT(s.wall_seconds, 0.0);
  EXPECT_GT(s.tokens_per_sec, 0.0);
  EXPECT_NE(s.json().find("\"tokens\":8"), std::string::npos);

  // Per-model slices: one row per name, sorted, counters partitioned.
  ASSERT_EQ(s.per_model.size(), 2u);
  EXPECT_EQ(s.per_model[0].model, "a");
  EXPECT_EQ(s.per_model[0].requests, 2u);
  EXPECT_EQ(s.per_model[0].tokens, 6u);
  ASSERT_NE(s.for_model("b"), nullptr);
  EXPECT_EQ(s.for_model("b")->requests, 1u);
  EXPECT_EQ(s.for_model("nope"), nullptr);
  EXPECT_NE(s.json().find("\"per_model\""), std::string::npos);
}

// ------------------------------------------------- the central contract

TEST(InferenceServer, BitExactUnderWorkersAndRandomArrival) {
  const Fixture f = Fixture::make();
  ServerOptions opts;
  opts.num_workers = 4;
  opts.queue_capacity = 64;
  opts.batcher.max_batch_tokens = 16;
  opts.batcher.max_wait = std::chrono::microseconds(100);
  InferenceServer server(opts);
  EXPECT_EQ(server.register_model("m", f.amm), 1u);

  // 4 client threads, each submitting a shuffled shard of the id space
  // with variable request sizes — arrival order is fully randomized.
  constexpr std::size_t kIds = 240;
  struct Issued {
    std::future<InferenceResult> fut;
    std::size_t first_row;
    std::size_t rows;
  };
  std::vector<std::vector<Issued>> issued(4);
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(100 + static_cast<std::uint64_t>(c));
      const auto order = rng.permutation(kIds / 4);
      for (const std::size_t k : order) {
        const std::size_t id = static_cast<std::size_t>(c) * (kIds / 4) + k;
        const std::size_t rows = 1 + id % 5;
        const std::size_t first = (id * 7) % f.pool.rows;
        std::vector<std::uint8_t> codes;
        std::size_t r = first;
        for (std::size_t i = 0; i < rows; ++i) {
          codes.insert(codes.end(), f.pool.row(r),
                       f.pool.row(r) + f.pool.cols);
          r = (r + 1) % f.pool.rows;
        }
        issued[static_cast<std::size_t>(c)].push_back(
            {server.submit("m", std::move(codes), rows), first, rows});
      }
    });
  }
  for (std::thread& t : clients) t.join();

  std::set<int> workers_seen;
  std::size_t checked = 0;
  for (std::vector<Issued>& shard : issued)
    for (Issued& is : shard) {
      const InferenceResult res = is.fut.get();
      workers_seen.insert(res.worker_id);
      ASSERT_EQ(res.rows, is.rows);
      EXPECT_EQ(res.outputs, f.expected(is.first_row, is.rows))
          << "served output differs from Amm::apply_int16";
      checked++;
    }
  EXPECT_EQ(checked, kIds);
  EXPECT_GE(workers_seen.size(), 1u);

  server.shutdown();
  const MetricsSnapshot s = server.metrics();
  EXPECT_EQ(s.requests, kIds);
  EXPECT_GT(s.mean_batch_tokens, 0.0);
}

TEST(InferenceServer, SimulateModeBitExactWithPpaAggregation) {
  const Fixture f = Fixture::make(4, 8, 64);
  ServerOptions opts;
  opts.num_workers = 4;
  opts.engine.backend = engine::Backend::kSimulate;
  opts.engine.accel.ndec = 8;  // forces lane tiling (8 outs in 1 pass)
  opts.engine.accel.ns = 4;    // same for codebooks
  opts.batcher.max_batch_tokens = 8;
  InferenceServer server(opts);
  server.register_model("m", f.amm);

  std::vector<std::future<InferenceResult>> futs;
  for (std::size_t id = 0; id < 24; ++id)
    futs.push_back(server.submit(
        "m@latest",
        std::vector<std::uint8_t>(f.pool.row(id % f.pool.rows),
                                  f.pool.row(id % f.pool.rows) +
                                      f.pool.cols),
        1));
  for (std::size_t id = 0; id < futs.size(); ++id)
    EXPECT_EQ(futs[id].get().outputs, f.expected(id % f.pool.rows, 1))
        << "simulated macro output differs from Amm::apply_int16";

  server.shutdown();
  const core::PpaReport agg = server.aggregate_report();
  EXPECT_GT(agg.total_ops, 0);
  EXPECT_GT(agg.events, 0u);
  EXPECT_GT(agg.energy_per_op_fj, 0.0);
  EXPECT_GT(agg.throughput_tops, 0.0);
  // Shards that served tokens contribute; the pool serves all 24.
  std::size_t total_tokens = 0;
  for (const std::size_t t : server.shard_tokens()) total_tokens += t;
  EXPECT_EQ(total_tokens, 24u);

  // Every shard's macro contributes its silicon — even one that never
  // received a batch — and the config echo survives idle shards.
  core::Accelerator one(opts.engine.accel);
  EXPECT_NEAR(agg.core_mm2, 4.0 * one.analytic_report(0).core_mm2,
              1e-12);
  EXPECT_EQ(agg.ndec, opts.engine.accel.ndec);
  EXPECT_EQ(agg.ns, opts.engine.accel.ns);
}

TEST(InferenceServer, IdleShardsStillContributeSiliconToAggregate) {
  const Fixture f = Fixture::make(4, 8, 16);
  ServerOptions opts;
  opts.num_workers = 4;
  opts.engine.backend = engine::Backend::kSimulate;
  opts.engine.accel.ns = 4;
  opts.engine.accel.ndec = 8;
  InferenceServer server(opts);
  server.register_model("m", f.amm);
  // One request: at most one shard does work, three stay idle.
  auto fut = server.submit(
      "m",
      std::vector<std::uint8_t>(f.pool.row(0), f.pool.row(0) + f.pool.cols),
      1);
  EXPECT_EQ(fut.get().outputs, f.expected(0, 1));
  server.shutdown();

  const core::PpaReport agg = server.aggregate_report();
  core::Accelerator one(opts.engine.accel);
  EXPECT_NEAR(agg.core_mm2, 4.0 * one.analytic_report(0).core_mm2, 1e-12);
  EXPECT_EQ(agg.ndec, opts.engine.accel.ndec);
  EXPECT_GT(agg.total_ops, 0);  // the busy shard's work is still there
}

TEST(InferenceServer, DevicePacedBitExactAndEnforcesServiceTime) {
  const Fixture f = Fixture::make();
  ServerOptions opts;
  opts.num_workers = 1;
  opts.engine.backend = engine::Backend::kDevicePaced;
  opts.engine.device_ns_per_token = 100'000.0;  // 100 us per token
  opts.batcher.max_batch_tokens = 8;
  InferenceServer server(opts);
  server.register_model("m", f.amm);

  const Clock::time_point t0 = Clock::now();
  std::vector<std::future<InferenceResult>> futs;
  for (std::size_t id = 0; id < 32; ++id)
    futs.push_back(server.submit(
        "m",
        std::vector<std::uint8_t>(f.pool.row(id % f.pool.rows),
                                  f.pool.row(id % f.pool.rows) +
                                      f.pool.cols),
        1));
  for (std::size_t id = 0; id < futs.size(); ++id)
    EXPECT_EQ(futs[id].get().outputs, f.expected(id % f.pool.rows, 1));
  const double wall =
      std::chrono::duration<double>(Clock::now() - t0).count();
  // One device serving 32 tokens at 100 us each cannot finish faster
  // than the modeled service time.
  EXPECT_GE(wall, 32 * 100e-6);
}

TEST(InferenceServer, PacingForcesWorkAcrossMultipleShards) {
  const Fixture f = Fixture::make();
  ServerOptions opts;
  opts.num_workers = 4;
  opts.engine.backend = engine::Backend::kDevicePaced;
  opts.engine.device_ns_per_token = 100'000.0;
  opts.batcher.max_batch_tokens = 4;
  opts.batcher.max_wait = std::chrono::microseconds(0);
  InferenceServer server(opts);
  server.register_model("m", f.amm);

  // While one shard's device is busy (sleeping), queued requests must
  // wake the parked shards — a single worker draining everything would
  // mean the pool isn't actually sharing load.
  std::vector<std::future<InferenceResult>> futs;
  for (std::size_t id = 0; id < 48; ++id)
    futs.push_back(server.submit(
        "m",
        std::vector<std::uint8_t>(f.pool.row(id % f.pool.rows),
                                  f.pool.row(id % f.pool.rows) +
                                      f.pool.cols),
        1));
  std::set<int> workers_seen;
  for (std::size_t id = 0; id < futs.size(); ++id) {
    const InferenceResult res = futs[id].get();
    workers_seen.insert(res.worker_id);
    EXPECT_EQ(res.outputs, f.expected(id % f.pool.rows, 1));
  }
  EXPECT_GE(workers_seen.size(), 2u);
}

// ------------------------------------------- replica construction path

TEST(Amm, SaveLoadRoundTripDrivesIdenticalServing) {
  const Fixture f = Fixture::make();

  // Round-trip through the exact blob the worker pool hands its shards.
  std::ostringstream blob;
  f.amm.save(blob);
  std::istringstream is(blob.str());
  const maddness::Amm replica = maddness::Amm::load(is);

  EXPECT_EQ(replica.cfg().ncodebooks, f.amm.cfg().ncodebooks);
  EXPECT_FLOAT_EQ(replica.activation_scale(), f.amm.activation_scale());
  EXPECT_EQ(replica.encode(f.pool), f.amm.encode(f.pool));
  EXPECT_EQ(replica.apply_int16(f.pool), f.amm.apply_int16(f.pool));

  // A server built from the replica serves the same bits as one built
  // from the original.
  ServerOptions opts;
  opts.num_workers = 2;
  InferenceServer server(opts);
  server.register_model("replica", replica);
  auto fut = server.submit(
      "replica",
      std::vector<std::uint8_t>(f.pool.row(3), f.pool.row(3) + f.pool.cols),
      1);
  EXPECT_EQ(fut.get().outputs, f.expected(3, 1));
}

// -------------------------------------------------- lifecycle semantics

TEST(InferenceServer, BackpressureTinyQueueStillServesEverything) {
  const Fixture f = Fixture::make();
  ServerOptions opts;
  opts.num_workers = 2;
  opts.queue_capacity = 2;  // submit() must block and resume
  opts.batcher.max_batch_tokens = 4;
  InferenceServer server(opts);
  server.register_model("m", f.amm);

  std::vector<std::future<InferenceResult>> futs;
  for (std::size_t id = 0; id < 64; ++id)
    futs.push_back(server.submit(
        "m",
        std::vector<std::uint8_t>(f.pool.row(id % f.pool.rows),
                                  f.pool.row(id % f.pool.rows) +
                                      f.pool.cols),
        1));
  for (std::size_t id = 0; id < futs.size(); ++id)
    EXPECT_EQ(futs[id].get().outputs, f.expected(id % f.pool.rows, 1));
}

TEST(InferenceServer, SubmitAfterShutdownRejectsWithTypedError) {
  const Fixture f = Fixture::make();
  ServerOptions opts;
  opts.num_workers = 2;
  InferenceServer server(opts);
  server.register_model("m", f.amm);
  server.shutdown();
  server.shutdown();  // idempotent
  auto fut = server.submit(
      "m",
      std::vector<std::uint8_t>(f.pool.row(0), f.pool.row(0) + f.pool.cols),
      1);
  // The rejection is immediate (never blocks on the bounded queue) and
  // typed: clients can distinguish drain from compute faults.
  EXPECT_THROW(fut.get(), ShutdownError);
}

TEST(InferenceServer, SubmitRacingShutdownNeverWedges) {
  // A client hammering submit() while another thread shuts the server
  // down must get served-or-rejected promptly — the bounded-queue push
  // must not park forever on a queue nobody will drain. A tiny queue
  // plus slow device pacing makes admission block mid-run.
  const Fixture f = Fixture::make();
  ServerOptions opts;
  opts.num_workers = 1;
  opts.queue_capacity = 1;
  opts.engine.backend = engine::Backend::kDevicePaced;
  opts.engine.device_ns_per_token = 200'000.0;
  InferenceServer server(opts);
  server.register_model("m", f.amm);
  const engine::ModelRef model = server.registry().resolve("m");
  std::atomic<std::size_t> outcomes{0};
  std::thread client([&] {
    for (std::size_t id = 0; id < 400; ++id) {
      try {
        auto fut = server.submit(
            model,
            std::vector<std::uint8_t>(f.pool.row(id % f.pool.rows),
                                      f.pool.row(id % f.pool.rows) +
                                          f.pool.cols),
            1);
        fut.get();
      } catch (const std::runtime_error&) {
        // rejected (ShutdownError) or failed at drain: both fine
      }
      outcomes.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.shutdown();
  client.join();  // would deadlock before the typed-rejection fix
  EXPECT_EQ(outcomes.load(), 400u);
}

TEST(InferenceServer, SubmitBatchSlicesAMatrix) {
  const Fixture f = Fixture::make();
  ServerOptions opts;
  opts.num_workers = 4;
  InferenceServer server(opts);
  server.register_model("m", f.amm);
  const std::size_t nout = server.registry().resolve("m")->nout();

  maddness::QuantizedActivations q;
  q.rows = 37;  // deliberately not a multiple of the slice size
  q.cols = f.pool.cols;
  q.scale = f.pool.scale;
  for (std::size_t r = 0; r < q.rows; ++r)
    q.codes.insert(q.codes.end(), f.pool.row(r), f.pool.row(r) + f.pool.cols);

  auto futs = server.submit_batch("m", q, 8);
  ASSERT_EQ(futs.size(), 5u);  // 8+8+8+8+5
  const std::vector<std::int16_t> whole = f.amm.apply_int16(q);
  std::size_t row = 0;
  for (auto& fut : futs) {
    const InferenceResult res = fut.get();
    const std::vector<std::int16_t> want(
        whole.begin() + static_cast<std::ptrdiff_t>(row * nout),
        whole.begin() +
            static_cast<std::ptrdiff_t>((row + res.rows) * nout));
    EXPECT_EQ(res.outputs, want);
    row += res.rows;
  }
  EXPECT_EQ(row, q.rows);
}

// ----------------------------------------------- multi-model serving

TEST(InferenceServer, TwoModelsServedConcurrentlyWithPerModelMetrics) {
  // Two differently-shaped models behind one server: requests
  // interleave freely, every response is bit-exact vs its own model's
  // reference, batches never mix models, and the metrics split per
  // model.
  const Fixture fa = Fixture::make(4, 8);
  const Fixture fb = Fixture::make(8, 16, 128);
  ServerOptions opts;
  opts.num_workers = 4;
  opts.batcher.max_batch_tokens = 8;
  InferenceServer server(opts);
  server.register_model("alpha", fa.amm);
  server.register_model("beta", fb.amm);
  EXPECT_EQ(server.registry().num_models(), 2u);

  constexpr std::size_t kPerModel = 60;
  std::vector<std::future<InferenceResult>> fa_futs, fb_futs;
  for (std::size_t id = 0; id < kPerModel; ++id) {
    fa_futs.push_back(server.submit(
        "alpha",
        std::vector<std::uint8_t>(fa.pool.row(id % fa.pool.rows),
                                  fa.pool.row(id % fa.pool.rows) +
                                      fa.pool.cols),
        1));
    fb_futs.push_back(server.submit(
        "beta",
        std::vector<std::uint8_t>(fb.pool.row(id % fb.pool.rows),
                                  fb.pool.row(id % fb.pool.rows) +
                                      fb.pool.cols),
        1));
  }
  for (std::size_t id = 0; id < kPerModel; ++id) {
    const InferenceResult ra = fa_futs[id].get();
    EXPECT_EQ(ra.model, "alpha");
    EXPECT_EQ(ra.model_version, 1u);
    EXPECT_EQ(ra.outputs, fa.expected(id % fa.pool.rows, 1));
    const InferenceResult rb = fb_futs[id].get();
    EXPECT_EQ(rb.model, "beta");
    EXPECT_EQ(rb.outputs, fb.expected(id % fb.pool.rows, 1));
  }
  server.shutdown();

  const MetricsSnapshot s = server.metrics();
  EXPECT_EQ(s.requests, 2 * kPerModel);
  ASSERT_NE(s.for_model("alpha"), nullptr);
  ASSERT_NE(s.for_model("beta"), nullptr);
  EXPECT_EQ(s.for_model("alpha")->requests, kPerModel);
  EXPECT_EQ(s.for_model("beta")->requests, kPerModel);
  EXPECT_GT(s.for_model("alpha")->p50_us, 0.0);
}

TEST(InferenceServer, UnknownModelRefThrowsAtSubmit) {
  const Fixture f = Fixture::make();
  ServerOptions opts;
  opts.num_workers = 1;
  InferenceServer server(opts);
  server.register_model("m", f.amm);
  std::vector<std::uint8_t> codes(f.pool.row(0),
                                  f.pool.row(0) + f.pool.cols);
  EXPECT_THROW(server.submit("nope", codes, 1), CheckError);
  EXPECT_THROW(server.submit("m@7", codes, 1), CheckError);
  EXPECT_THROW(server.submit("m@bogus", codes, 1), CheckError);
  // Shape mismatch is a caller bug, reported synchronously.
  std::vector<std::uint8_t> short_codes(3, 0);
  EXPECT_THROW(server.submit("m", short_codes, 1), CheckError);
}

// ---------------------------------------------- v1 compatibility shims

// PR-4-era call sites must keep compiling (with deprecation warnings,
// silenced here) and serving bit-exactly through the shims.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(InferenceServerV1Shim, OneModelConstructorAndModelessSubmit) {
  const Fixture f = Fixture::make();
  ServerOptions opts;
  opts.num_workers = 2;
  opts.mode = ExecutionMode::kKernel;  // deprecated field + alias
  InferenceServer server(f.amm, opts);  // deprecated one-model ctor

  // The operator landed as "default" version 1; the model-less submit
  // resolves it.
  EXPECT_EQ(server.registry().latest_version("default"), 1u);
  auto fut = server.submit(
      std::vector<std::uint8_t>(f.pool.row(5), f.pool.row(5) + f.pool.cols),
      1);
  const InferenceResult res = fut.get();
  EXPECT_EQ(res.model, "default");
  EXPECT_EQ(res.outputs, f.expected(5, 1));
}

TEST(InferenceServerV1Shim, DeprecatedEngineFieldsFoldIntoEngineOptions) {
  // The deprecated mode/accel/device_ns_per_token fields must still
  // steer the engine: a paced server built through them enforces the
  // modeled service time.
  const Fixture f = Fixture::make();
  ServerOptions opts;
  opts.num_workers = 1;
  opts.mode = ExecutionMode::kDevicePaced;
  opts.device_ns_per_token = 100'000.0;
  InferenceServer server(f.amm, opts);

  const Clock::time_point t0 = Clock::now();
  std::vector<std::future<InferenceResult>> futs;
  for (std::size_t id = 0; id < 16; ++id)
    futs.push_back(server.submit(
        std::vector<std::uint8_t>(f.pool.row(id % f.pool.rows),
                                  f.pool.row(id % f.pool.rows) +
                                      f.pool.cols),
        1));
  for (std::size_t id = 0; id < futs.size(); ++id)
    EXPECT_EQ(futs[id].get().outputs, f.expected(id % f.pool.rows, 1));
  const double wall =
      std::chrono::duration<double>(Clock::now() - t0).count();
  EXPECT_GE(wall, 16 * 100e-6);
}
#pragma GCC diagnostic pop

// ------------------------------------------------------- report merging

TEST(PpaReport, ParallelMergePoolsShards) {
  core::PpaReport a;
  a.ndec = 8;
  a.ns = 4;
  a.total_ops = 1000;
  a.duration_ns = 10.0;
  a.core_mm2 = 0.5;
  a.sram_bits = 1024;
  a.throughput_tops = 2.0;
  a.token_interval_ns = 5.0;
  a.freq_mhz = 200.0;
  a.energy_per_op_fj = 10.0;
  a.energy_decoder_share = 0.6;
  core::PpaReport b = a;
  b.total_ops = 3000;
  b.duration_ns = 30.0;
  b.energy_per_op_fj = 20.0;
  b.energy_decoder_share = 0.8;
  b.token_interval_ns = 10.0;  // a slower shard: freq = 1e3/10
  b.freq_mhz = 100.0;
  b.throughput_tops = 1.0;

  const core::PpaReport m = core::merge_reports({a, b});
  EXPECT_EQ(m.total_ops, 4000);
  EXPECT_DOUBLE_EQ(m.duration_ns, 30.0);           // parallel: max
  EXPECT_DOUBLE_EQ(m.core_mm2, 1.0);               // silicon adds
  EXPECT_EQ(m.sram_bits, 2048);
  EXPECT_DOUBLE_EQ(m.throughput_tops, 3.0);        // engines add
  // Interval is the ops-weighted mean: (1000*5 + 3000*10) / 4000.
  EXPECT_DOUBLE_EQ(m.token_interval_ns, 8.75);
  // Frequency is derived from it, preserving make_report's invariant.
  EXPECT_DOUBLE_EQ(m.freq_mhz, 1e3 / m.token_interval_ns);
  // Energy/op pools: (1000*10 + 3000*20) / 4000 = 17.5.
  EXPECT_DOUBLE_EQ(m.energy_per_op_fj, 17.5);
  EXPECT_DOUBLE_EQ(m.tops_per_w, 1e3 / 17.5);
  // Decoder share weighted by energy: (0.6*10k + 0.8*60k) / 70k.
  EXPECT_NEAR(m.energy_decoder_share, (0.6 * 1e4 + 0.8 * 6e4) / 7e4,
              1e-12);

  const core::PpaReport seq = core::merge_sequential_reports({a, b});
  EXPECT_DOUBLE_EQ(seq.duration_ns, 40.0);         // sequential: sum
  EXPECT_DOUBLE_EQ(seq.core_mm2, 0.5);             // same macro
  EXPECT_DOUBLE_EQ(seq.energy_per_op_fj, 17.5);
  EXPECT_DOUBLE_EQ(seq.token_interval_ns, 8.75);
  EXPECT_DOUBLE_EQ(seq.freq_mhz, 1e3 / seq.token_interval_ns);
  // One macro: throughput re-derives from the merged interval using the
  // config-constant throughput*interval product (= 10 for both parts).
  EXPECT_DOUBLE_EQ(seq.throughput_tops, 10.0 / 8.75);
  EXPECT_EQ(core::merge_reports({}).total_ops, 0);
}

// --------------------------------------------------------- load models

TEST(LoadGenerator, ClosedLoopServesExactlyTheSpec) {
  const Fixture f = Fixture::make();
  ServerOptions opts;
  opts.num_workers = 4;
  InferenceServer server(opts);
  server.register_model("m", f.amm);

  LoadSpec spec;
  spec.total_requests = 120;
  spec.rows_per_request = 2;
  spec.model_refs = {"m@latest"};
  LoadGenerator gen(f.pool, spec);
  // Payloads are a deterministic function of the request id.
  EXPECT_EQ(gen.request_codes(5), gen.request_codes(5));
  EXPECT_EQ(gen.first_row(3), (3 * 2) % f.pool.rows);

  const LoadReport r = gen.run_closed_loop(server, 4);
  EXPECT_EQ(r.completed, spec.total_requests);
  EXPECT_EQ(r.tokens, spec.total_requests * spec.rows_per_request);
  EXPECT_GT(r.achieved_rps, 0.0);
  EXPECT_GE(r.p99_ms, r.p50_ms);
  EXPECT_NE(r.json().find("\"completed\":120"), std::string::npos);

  server.shutdown();
  EXPECT_EQ(server.metrics().requests, spec.total_requests);
}

TEST(LoadGenerator, OpenLoopPoissonCompletesAndMeasures) {
  const Fixture f = Fixture::make();
  ServerOptions opts;
  opts.num_workers = 4;
  InferenceServer server(opts);
  server.register_model("m", f.amm);

  LoadSpec spec;
  spec.model_refs = {"m"};
  spec.total_requests = 200;
  spec.rows_per_request = 1;
  LoadGenerator gen(f.pool, spec);
  // High offered rate so the run finishes fast; latency must still be
  // measured for every request.
  const LoadReport r = gen.run_open_loop(server, 50'000.0);
  EXPECT_EQ(r.completed, spec.total_requests);
  EXPECT_DOUBLE_EQ(r.offered_rps, 50'000.0);
  EXPECT_GT(r.achieved_rps, 0.0);
  EXPECT_GT(r.mean_ms, 0.0);
  EXPECT_GE(r.max_ms, r.p50_ms);
}

}  // namespace
}  // namespace ssma::serve
