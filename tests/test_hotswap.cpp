// Hot-swap stress: a version bump under sustained multi-client load
// must lose or duplicate nothing, keep every response bit-exact on the
// bank its request pinned at admission (old in-flight batches on the
// old bank, post-swap batches on the new), keep explicit version refs
// serving retired-from-latest banks, and split the metrics per model.
// Seeded like the other serve suites: reproduce with SSMA_TEST_SEED.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "engine/model_registry.hpp"
#include "serve/server.hpp"
#include "serve_test_util.hpp"
#include "util/check.hpp"

namespace ssma::serve {
namespace {

TEST(HotSwap, VersionBumpUnderLoadLosesNothingAndStaysBitExact) {
  const std::uint64_t seed = test_seed();
  SCOPED_TRACE(seed_trace(seed));
  const ServeFixture old_fx = ServeFixture::make(4, 8, 256, 7);
  const ServeFixture new_fx = ServeFixture::make(4, 8, 256, 99);

  const auto expected_on = [&](const maddness::Amm& amm,
                               std::size_t first_row) {
    maddness::QuantizedActivations q;
    q.rows = 1;
    q.cols = old_fx.pool.cols;
    q.scale = old_fx.pool.scale;
    q.codes.assign(old_fx.pool.row(first_row),
                   old_fx.pool.row(first_row) + old_fx.pool.cols);
    return amm.apply_int16(q);
  };

  ServerOptions opts;
  opts.num_workers = 4;
  opts.queue_capacity = 128;
  opts.batcher.max_batch_tokens = 8;
  opts.batcher.max_wait = std::chrono::microseconds(50);
  InferenceServer server(opts);
  ASSERT_EQ(server.register_model("alpha", old_fx.amm), 1u);

  constexpr int kClients = 4;
  constexpr std::size_t kPerClient = 150;
  struct Served {
    InferenceResult res;
    std::size_t row;
  };
  std::vector<std::vector<Served>> served(kClients);
  std::atomic<std::size_t> completed{0};
  std::atomic<bool> swapped{false};

  // Closed-loop clients: each waits for its response before the next
  // submit, so the stream stays live across the whole swap window.
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t k = 0; k < kPerClient; ++k) {
        const std::size_t row =
            (static_cast<std::size_t>(c) * kPerClient + k) %
            old_fx.pool.rows;
        // .get() throws on any lost request — zero-loss is asserted by
        // every iteration completing.
        served[static_cast<std::size_t>(c)].push_back(
            {server.submit("alpha@latest", old_fx.codes_for(row), 1)
                 .get(),
             row});
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Swap mid-traffic: wait until the stream is demonstrably live, then
  // bump the version while clients keep submitting.
  std::thread swapper([&] {
    while (completed.load(std::memory_order_relaxed) <
           kClients * kPerClient / 4)
      std::this_thread::yield();
    ASSERT_EQ(server.register_model("alpha", new_fx.amm), 2u);
    swapped.store(true, std::memory_order_release);
  });
  for (std::thread& t : clients) t.join();
  swapper.join();
  ASSERT_TRUE(swapped.load());

  // Zero loss, zero duplication: every submitted request resolved
  // exactly once, each bit-exact on the bank version it reports.
  std::size_t served_v1 = 0, served_v2 = 0;
  for (std::vector<Served>& shard : served)
    for (Served& sv : shard) {
      const InferenceResult& res = sv.res;
      EXPECT_EQ(res.model, "alpha");
      ASSERT_TRUE(res.model_version == 1 || res.model_version == 2);
      const maddness::Amm& bank =
          res.model_version == 1 ? old_fx.amm : new_fx.amm;
      EXPECT_EQ(res.outputs, expected_on(bank, sv.row))
          << "request served on alpha@" << res.model_version
          << " diverged from that bank's reference";
      (res.model_version == 1 ? served_v1 : served_v2)++;
    }
  EXPECT_EQ(served_v1 + served_v2, kClients * kPerClient);
  // The swap fired mid-stream: both banks actually served traffic.
  EXPECT_GT(served_v1, 0u);
  EXPECT_GT(served_v2, 0u);

  server.shutdown();
  const MetricsSnapshot s = server.metrics();
  EXPECT_EQ(s.requests, kClients * kPerClient);
  ASSERT_NE(s.for_model("alpha"), nullptr);
  EXPECT_EQ(s.for_model("alpha")->requests, kClients * kPerClient);
}

TEST(HotSwap, ExplicitVersionRefsKeepServingAfterTheBump) {
  const ServeFixture old_fx = ServeFixture::make(4, 8, 64, 7);
  const ServeFixture new_fx = ServeFixture::make(4, 8, 64, 99);
  ServerOptions opts;
  opts.num_workers = 2;
  InferenceServer server(opts);
  server.register_model("alpha", old_fx.amm);
  server.register_model("alpha", new_fx.amm);

  const auto expect = [&](const maddness::Amm& amm, std::size_t row) {
    maddness::QuantizedActivations q;
    q.rows = 1;
    q.cols = old_fx.pool.cols;
    q.scale = old_fx.pool.scale;
    q.codes.assign(old_fx.pool.row(row),
                   old_fx.pool.row(row) + old_fx.pool.cols);
    return amm.apply_int16(q);
  };

  // Pinned-version traffic coexists with @latest traffic.
  auto f1 = server.submit("alpha@1", old_fx.codes_for(3), 1);
  auto f2 = server.submit("alpha@latest", old_fx.codes_for(3), 1);
  const InferenceResult r1 = f1.get();
  const InferenceResult r2 = f2.get();
  EXPECT_EQ(r1.model_version, 1u);
  EXPECT_EQ(r1.outputs, expect(old_fx.amm, 3));
  EXPECT_EQ(r2.model_version, 2u);
  EXPECT_EQ(r2.outputs, expect(new_fx.amm, 3));

  // Retiring the old version makes it unresolvable for NEW requests —
  // but a handle pinned before the retire keeps serving (drain
  // semantics).
  const engine::ModelRef pinned = server.registry().resolve("alpha@1");
  server.retire_model("alpha", 1);
  EXPECT_THROW(server.submit("alpha@1", old_fx.codes_for(0), 1),
               CheckError);
  auto f3 = server.submit(pinned, old_fx.codes_for(5), 1);
  EXPECT_EQ(f3.get().outputs, expect(old_fx.amm, 5));
  server.shutdown();
}

TEST(HotSwap, StagedVersionEdgeCasesFailLoud) {
  const ServeFixture fx = ServeFixture::make(4, 8, 32, 7);
  engine::ModelRegistry reg;
  reg.register_model("alpha", fx.amm);  // v1, published
  const std::uint64_t staged =
      reg.register_model("alpha", fx.amm.save_string(), /*publish=*/false);
  EXPECT_EQ(staged, 2u);
  EXPECT_EQ(reg.latest_version("alpha"), 1u);  // staged != latest
  // A staged version is explicitly resolvable...
  EXPECT_NE(reg.try_resolve("alpha", staged), nullptr);
  EXPECT_EQ(reg.resolve("alpha@latest")->version(), 1u);
  // ...but was never published, so it cannot be retired: the rollback
  // path is discard_staged().
  EXPECT_THROW(reg.retire("alpha", staged), CheckError);

  reg.publish("alpha", staged);
  EXPECT_EQ(reg.latest_version("alpha"), 2u);
  // Double publish fails loud instead of silently no-opping.
  EXPECT_THROW(reg.publish("alpha", staged), CheckError);
  // As does publishing backwards, or a version never installed.
  EXPECT_THROW(reg.publish("alpha", 1), CheckError);
  EXPECT_THROW(reg.publish("alpha", 9), CheckError);
  // A published version is not "staged" anymore: discard refuses it.
  EXPECT_THROW(reg.discard_staged("alpha", staged), CheckError);
  EXPECT_THROW(reg.discard_staged("alpha", 9), CheckError);

  // discard_staged drops the version for new resolvers; an existing pin
  // keeps serving (drain semantics, same as retire).
  const std::uint64_t staged2 =
      reg.register_model("alpha", fx.amm.save_string(), /*publish=*/false);
  const engine::ModelRef pin = reg.resolve("alpha", staged2);
  reg.discard_staged("alpha", staged2);
  EXPECT_EQ(reg.try_resolve("alpha", staged2), nullptr);
  EXPECT_EQ(pin->version(), staged2);
  EXPECT_EQ(reg.latest_version("alpha"), 2u);
}

TEST(HotSwap, LatestResolutionIsMonotonicAcrossRacingPublishes) {
  const ServeFixture fx = ServeFixture::make(4, 8, 32, 7);
  engine::ModelRegistry reg;
  reg.register_model("alpha", fx.amm);
  constexpr std::uint64_t kLast = 32;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> published{1};

  std::thread publisher([&] {
    for (std::uint64_t v = 2; v <= kLast; ++v) {
      EXPECT_EQ(reg.register_model("alpha", fx.amm.save_string(),
                                   /*publish=*/false),
                v);
      reg.publish("alpha", v);
      published.store(v, std::memory_order_release);
    }
    done.store(true, std::memory_order_release);
  });

  // "@latest" observed concurrently never moves backwards and never
  // resolves a staged-but-unpublished version: the publish watermark
  // read before each resolve is a floor on what it may return.
  std::uint64_t prev = 0;
  while (!done.load(std::memory_order_acquire)) {
    const std::uint64_t floor = published.load(std::memory_order_acquire);
    const engine::ModelRef h = reg.resolve("alpha@latest");
    EXPECT_GE(h->version(), floor);
    EXPECT_GE(h->version(), prev);
    EXPECT_LE(h->version(), kLast);
    prev = h->version();
  }
  publisher.join();
  EXPECT_EQ(reg.latest_version("alpha"), kLast);
}

}  // namespace
}  // namespace ssma::serve
