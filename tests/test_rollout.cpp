// Continuous-learning rollout pipeline tests: traffic reservoir
// determinism, shadow-execution exactness, end-to-end
// retrain -> shadow -> auto-promote / auto-rollback, journal
// compaction (standalone and under replication), and the admin plane.
//
// Every randomized piece derives from one seed (SSMA_TEST_SEED) so any
// failure reproduces bit-exactly.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/model_registry.hpp"
#include "maddness/amm.hpp"
#include "maddness/quantize.hpp"
#include "net/server.hpp"
#include "net/wire_protocol.hpp"
#include "serve/recovery/checkpoint.hpp"
#include "serve/recovery/fault_injector.hpp"
#include "serve/recovery/journal.hpp"
#include "serve/recovery/recovery.hpp"
#include "serve/replication/replica_applier.hpp"
#include "serve/replication/replication.hpp"
#include "serve/rollout/rollout.hpp"
#include "serve/server.hpp"
#include "serve_test_util.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ssma::serve {
namespace {

using namespace std::chrono_literals;

/// Completion records are appended by the worker thread after the
/// response future is fulfilled, so a returned get() does not imply the
/// ack is journaled yet — spin until the journal holds `n` records.
void wait_journal_records(const recovery::RequestJournal& jnl,
                          std::uint64_t n) {
  for (int spin = 0; spin < 10000 && jnl.durable_seq() < n; ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_EQ(jnl.durable_seq(), n);
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

/// Like ServeFixture, but retains the weights and config so a rollout
/// manager can retrain candidates against the same regression target.
struct RolloutFixture {
  maddness::Config cfg;
  Matrix weights;
  maddness::Amm amm;
  maddness::QuantizedActivations pool;

  static RolloutFixture make(int ncodebooks = 4, int nout = 8,
                             std::size_t pool_rows = 256,
                             std::uint64_t seed = 7) {
    Rng rng(seed);
    const std::size_t d = static_cast<std::size_t>(ncodebooks) * 9;
    Matrix train(512, d);
    for (std::size_t i = 0; i < train.size(); ++i)
      train.data()[i] = static_cast<float>(rng.next_double(0, 220));
    Matrix w(d, static_cast<std::size_t>(nout));
    for (std::size_t i = 0; i < w.size(); ++i)
      w.data()[i] = static_cast<float>(rng.next_gaussian(0, 0.08));

    maddness::Config cfg;
    cfg.ncodebooks = ncodebooks;

    RolloutFixture f{cfg, w, maddness::Amm::train(cfg, train, w), {}};
    Matrix fresh(pool_rows, d);
    for (std::size_t i = 0; i < fresh.size(); ++i)
      fresh.data()[i] = static_cast<float>(rng.next_double(0, 220));
    f.pool =
        maddness::quantize_activations(fresh, f.amm.activation_scale());
    return f;
  }

  std::vector<std::uint8_t> codes_for(std::size_t id) const {
    const std::size_t r = id % pool.rows;
    return std::vector<std::uint8_t>(pool.row(r), pool.row(r) + pool.cols);
  }

  std::vector<std::int16_t> expected(std::size_t first_row,
                                     std::size_t rows) const {
    maddness::QuantizedActivations q;
    q.rows = rows;
    q.cols = pool.cols;
    q.scale = pool.scale;
    std::size_t r = first_row;
    for (std::size_t i = 0; i < rows; ++i) {
      q.codes.insert(q.codes.end(), pool.row(r), pool.row(r) + pool.cols);
      r = (r + 1) % pool.rows;
    }
    return amm.apply_int16(q);
  }
};

/// Reference decode of one canonical request on an arbitrary bank.
std::vector<std::int16_t> decode_on(const RolloutFixture& f,
                                    const maddness::Amm& bank,
                                    std::size_t id) {
  maddness::QuantizedActivations q;
  q.rows = 1;
  q.cols = f.pool.cols;
  q.scale = f.pool.scale;
  q.codes = f.codes_for(id);
  return bank.apply_int16(q);
}

// ---------------------------------------------------------------------
// Journal compaction (satellite): virtual addressing, acked-prefix
// bound, reopen continuity.
// ---------------------------------------------------------------------

TEST(JournalCompaction, PrunesOnlyAckedPrefixAndKeepsVirtualAddressing) {
  TmpDir dir("compact");
  const std::string path = dir.file("wal.jnl");
  recovery::RequestJournal jnl(path);
  EXPECT_EQ(jnl.compact(~0ull), 0u);  // empty journal: nothing to prune

  // Six accepts (seq 1..6), completions for every id but 5 (seq 7..11).
  for (std::uint64_t id = 1; id <= 6; ++id)
    jnl.append_accepted(id, "m", 1, 1, {1, 2, 3, 4});
  for (std::uint64_t id = 1; id <= 6; ++id)
    if (id != 5) jnl.append_completed(id, 0, 0xabcu);
  ASSERT_EQ(jnl.durable_seq(), 11u);
  const std::uint64_t vbytes = jnl.durable_bytes();
  const std::uint64_t physical_before = slurp(path).size();

  // A bound below the acked prefix prunes exactly to the bound...
  EXPECT_EQ(jnl.compact(2), 2u);
  EXPECT_EQ(jnl.compaction_info().base_seq, 2u);
  // ...and an unbounded pass stops at the unacknowledged accept (id 5,
  // seq 5): records past it survive even though some are acked.
  EXPECT_EQ(jnl.compact(~0ull), 2u);
  EXPECT_EQ(jnl.compaction_info().base_seq, 4u);
  EXPECT_GE(jnl.compaction_info().generation, 2u);

  // Virtual addressing is untouched; the physical file shrank.
  EXPECT_EQ(jnl.durable_seq(), 11u);
  EXPECT_EQ(jnl.durable_bytes(), vbytes);
  EXPECT_LT(slurp(path).size(), physical_before);

  auto replay = recovery::RequestJournal::read(path);
  EXPECT_EQ(replay.compacted_through, 4u);
  EXPECT_FALSE(replay.torn_tail);
  ASSERT_EQ(replay.unacknowledged.size(), 1u);
  EXPECT_EQ(replay.unacknowledged[0].id, 5u);

  // Acking id 5 makes the whole journal prunable; appends continue the
  // virtual sequence afterwards.
  jnl.append_completed(5, 0, 0xdeadu);  // seq 12
  EXPECT_EQ(jnl.compact(~0ull), 8u);    // seq 5..12
  EXPECT_EQ(jnl.compaction_info().base_seq, 12u);
  EXPECT_EQ(jnl.append_accepted(7, "m", 1, 1, {9, 9, 9, 9}), 13u);
  auto r2 = recovery::RequestJournal::read(path);
  EXPECT_EQ(r2.compacted_through, 12u);
  ASSERT_EQ(r2.unacknowledged.size(), 1u);
  EXPECT_EQ(r2.unacknowledged[0].id, 7u);
}

TEST(JournalCompaction, ReopenContinuesCompactedAddressing) {
  TmpDir dir("compact-reopen");
  const std::string path = dir.file("wal.jnl");
  std::uint64_t vbytes = 0;
  {
    recovery::RequestJournal jnl(path);
    for (std::uint64_t id = 1; id <= 4; ++id)
      jnl.append_accepted(id, "m", 1, 1, {1, 2, 3, 4});
    for (std::uint64_t id = 1; id <= 4; ++id)
      jnl.append_completed(id, 0, 0xfeedu);
    EXPECT_EQ(jnl.compact(~0ull), 8u);
    vbytes = jnl.durable_bytes();
  }
  recovery::RequestJournal jnl(path);
  EXPECT_EQ(jnl.durable_seq(), 8u);
  EXPECT_EQ(jnl.durable_bytes(), vbytes);
  EXPECT_EQ(jnl.compaction_info().base_seq, 8u);
  EXPECT_EQ(jnl.append_accepted(9, "m", 1, 1, {5, 5, 5, 5}), 9u);
  auto replay = recovery::RequestJournal::read(path);
  EXPECT_EQ(replay.compacted_through, 8u);
  ASSERT_EQ(replay.unacknowledged.size(), 1u);
  EXPECT_EQ(replay.unacknowledged[0].id, 9u);
}

// ---------------------------------------------------------------------
// Shadow executor exactness: an identical staged bank must shadow with
// zero drift at zero tolerance (the dequantize/requantize round trip is
// exact), and the passed budget auto-promotes it.
// ---------------------------------------------------------------------

TEST(Rollout, ShadowOfIdenticalStagedBankIsDriftFreeAndPromotes) {
  const std::uint64_t seed = test_seed();
  SCOPED_TRACE(seed_trace(seed));
  RolloutFixture f = RolloutFixture::make();
  ServerOptions opts;
  opts.num_workers = 1;
  InferenceServer server(opts);
  ASSERT_EQ(server.register_model("m", f.amm), 1u);
  const std::uint64_t staged = server.stage_model("m", f.amm.save_string());
  ASSERT_EQ(staged, 2u);
  EXPECT_EQ(server.registry().latest_version("m"), 1u);  // staged != live

  rollout::RolloutOptions ropts;
  ropts.seed = seed;
  ropts.min_shadow_rows = 16;
  ropts.drift_tolerance = 0;
  ropts.error_budget = 0.0;
  rollout::RolloutManager mgr(server, ropts);
  mgr.shadow_existing("m", staged);
  mgr.start();

  // Pump until the verdict; both banks are the same blob, so every
  // response is bit-exact against the fixture regardless of version.
  std::size_t i = 0;
  while (mgr.report("m").state == rollout::RolloutState::kShadowing &&
         i < 4000) {
    const InferenceResult r =
        server.submit("m@latest", f.codes_for(i), 1).get();
    EXPECT_EQ(r.outputs, f.expected(i % f.pool.rows, 1));
    ++i;
  }
  ASSERT_EQ(mgr.wait_for_decision("m", 10000ms),
            rollout::RolloutState::kPromoted);
  const rollout::RolloutReport rep = mgr.report("m");
  EXPECT_EQ(rep.drift_rows, 0u);
  EXPECT_EQ(rep.max_abs_drift, 0);
  EXPECT_GE(rep.shadow_rows, ropts.min_shadow_rows);
  EXPECT_EQ(server.registry().latest_version("m"), 2u);

  // The mirrored comparisons landed in the metrics sink.
  const MetricsSnapshot ms = server.metrics();
  ASSERT_EQ(ms.shadow.size(), 1u);
  EXPECT_EQ(ms.shadow[0].model, "m");
  EXPECT_EQ(ms.shadow[0].rows, rep.shadow_rows);
  EXPECT_EQ(ms.shadow[0].drift_rows, 0u);
  EXPECT_GT(ms.shadow[0].shadow_ns_sum, 0.0);

  server.shutdown();
  mgr.stop();
}

// ---------------------------------------------------------------------
// Traffic reservoir: bounded memory, seed-deterministic sampling. The
// rows are offered through the tap directly (no controller racing the
// feed), then the controller retrains — same seed and same row stream
// must stage a byte-identical candidate.
// ---------------------------------------------------------------------

namespace {
std::string staged_blob_after_direct_feed(const RolloutFixture& f,
                                          std::uint64_t seed,
                                          std::uint64_t* candidate_version) {
  ServerOptions opts;
  opts.num_workers = 1;
  InferenceServer server(opts);
  server.register_model("m", f.amm);

  rollout::RolloutOptions ropts;
  ropts.seed = seed;
  ropts.reservoir_rows = 64;
  ropts.min_train_rows = 64;
  rollout::RolloutManager mgr(server, ropts);
  mgr.manage("m", f.weights, f.cfg);

  // 200 rows through the tap in ragged batches: Algorithm R consumes
  // one RNG draw per post-warmup row, so batch boundaries don't matter.
  engine::ModelRef live = server.registry().resolve("m", 1);
  const std::size_t kRows = 200, kBatch = 7;
  std::size_t fed = 0;
  while (fed < kRows) {
    const std::size_t rows = std::min(kBatch, kRows - fed);
    maddness::QuantizedActivations q;
    q.rows = rows;
    q.cols = f.pool.cols;
    q.scale = f.pool.scale;
    for (std::size_t r = 0; r < rows; ++r) {
      const std::size_t pr = (fed + r) % f.pool.rows;
      q.codes.insert(q.codes.end(), f.pool.row(pr),
                     f.pool.row(pr) + f.pool.cols);
    }
    const std::vector<std::int16_t> outs(rows * 8, 0);
    mgr.on_batch(*live, q, outs, 1000.0);
    fed += rows;
  }
  {
    const rollout::RolloutReport rep = mgr.report("m");
    EXPECT_EQ(rep.seen_rows, kRows);
    EXPECT_EQ(rep.sampled_rows, ropts.reservoir_rows);  // bounded
  }

  // Now spawn the controller: it retrains from the frozen reservoir and
  // stages the candidate.
  mgr.start();
  std::string blob;
  for (int spin = 0; spin < 10000 && blob.empty(); ++spin) {
    const rollout::RolloutReport rep = mgr.report("m");
    if (rep.state == rollout::RolloutState::kShadowing) {
      *candidate_version = rep.candidate_version;
      blob = server.registry().resolve("m", rep.candidate_version)->blob();
    } else {
      std::this_thread::sleep_for(1ms);
    }
  }
  EXPECT_FALSE(blob.empty());
  server.shutdown();
  mgr.stop();
  return blob;
}
}  // namespace

TEST(Rollout, ReservoirIsDeterministicAndBounded) {
  const std::uint64_t seed = test_seed();
  SCOPED_TRACE(seed_trace(seed));
  RolloutFixture f = RolloutFixture::make();
  std::uint64_t v1 = 0, v2 = 0;
  const std::string b1 = staged_blob_after_direct_feed(f, seed, &v1);
  const std::string b2 = staged_blob_after_direct_feed(f, seed, &v2);
  EXPECT_EQ(v1, 2u);
  EXPECT_EQ(v2, 2u);
  // Same seed + same traffic -> byte-identical staged candidate.
  EXPECT_EQ(b1, b2);
}

// ---------------------------------------------------------------------
// End-to-end: serve -> sample -> retrain -> stage -> shadow ->
// auto-promote, with zero request loss, in-flight bit-exactness on the
// old bank, and a durable (restart-surviving) promotion.
// ---------------------------------------------------------------------

TEST(Rollout, EndToEndRetrainShadowAutoPromoteSurvivesRestart) {
  const std::uint64_t seed = test_seed();
  SCOPED_TRACE(seed_trace(seed));
  RolloutFixture f = RolloutFixture::make();
  TmpDir dir("rollout-e2e");
  recovery::CheckpointManager ckpts(dir.file("ckpts"));
  recovery::RequestJournal journal(dir.file("wal.jnl"));
  ServerOptions opts;
  opts.num_workers = 1;
  opts.recovery.journal = &journal;
  opts.recovery.checkpoints = &ckpts;
  InferenceServer server(opts);
  server.register_model("m", f.amm);

  rollout::RolloutOptions ropts;
  ropts.seed = seed;
  ropts.reservoir_rows = 96;
  ropts.min_train_rows = 96;
  ropts.min_shadow_rows = 24;
  // A genuinely retrained candidate has fresh hash trees, so its
  // outputs legitimately differ from the live bank's: this test gates
  // the promotion *mechanics*, with the drift gate wide open. The
  // drift-gated verdicts are covered by the identical-bank and
  // injected-drift tests.
  ropts.drift_tolerance = std::numeric_limits<std::int16_t>::max();
  ropts.error_budget = 1.0;
  rollout::RolloutManager mgr(server, ropts);
  mgr.manage("m", f.weights, f.cfg);
  mgr.start();

  std::size_t submitted = 0, v1_responses = 0, v2_responses = 0;
  auto pump = [&](std::size_t n) {
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t row = submitted % f.pool.rows;
      const InferenceResult r =
          server.submit("m@latest", f.codes_for(submitted), 1).get();
      if (r.model_version == 1) {
        // Pre-promotion (and in-flight-across-promotion) traffic stays
        // bit-exact on the bank it pinned.
        EXPECT_EQ(r.outputs, f.expected(row, 1));
        ++v1_responses;
      } else {
        EXPECT_EQ(r.model_version, 2u);
        EXPECT_EQ(r.outputs,
                  decode_on(f, server.registry().resolve("m", 2)->amm(),
                            submitted));
        ++v2_responses;
      }
      ++submitted;
    }
  };

  pump(96);  // fill the reservoir
  std::size_t guard = 0;
  while (mgr.report("m").state != rollout::RolloutState::kPromoted &&
         guard++ < 5000)
    pump(1);
  ASSERT_EQ(mgr.wait_for_decision("m", 10000ms),
            rollout::RolloutState::kPromoted);
  EXPECT_EQ(server.registry().latest_version("m"), 2u);
  EXPECT_GE(mgr.report("m").shadow_rows, ropts.min_shadow_rows);
  pump(8);  // post-promotion traffic serves the published candidate
  EXPECT_GT(v1_responses, 0u);
  EXPECT_GT(v2_responses, 0u);

  server.shutdown();
  mgr.stop();

  // The promotion force-checkpointed: a restarted server resolves
  // "@latest" to the promoted version with nothing left to replay.
  const recovery::RecoveredState rs =
      recovery::recover_state(ckpts, journal.path());
  EXPECT_TRUE(rs.journal.unacknowledged.empty());
  ServerOptions ropts2;
  ropts2.num_workers = 1;
  auto restored = InferenceServer::restore(rs, ropts2);
  EXPECT_EQ(restored->registry().latest_version("m"), 2u);
  EXPECT_EQ(restored->submit("m@latest", f.codes_for(0), 1)
                .get()
                .model_version,
            2u);
  restored->shutdown();
}

// ---------------------------------------------------------------------
// Auto-rollback: deterministic injected drift (FaultSite::kShadowCompare)
// blows the error budget; the candidate is discarded, live serving
// never blips, and the retraction is durable.
// ---------------------------------------------------------------------

TEST(Rollout, AutoRollbackOnInjectedDriftKeepsServingLive) {
  const std::uint64_t seed = test_seed();
  SCOPED_TRACE(seed_trace(seed));
  RolloutFixture f = RolloutFixture::make();
  TmpDir dir("rollout-rb");
  recovery::CheckpointManager ckpts(dir.file("ckpts"));
  recovery::RequestJournal journal(dir.file("wal.jnl"));
  recovery::FaultInjector fault(seed);
  // Every shadow comparison reports a fully-drifted batch — a
  // deterministic model-quality regression.
  fault.arm_named("shadow_drift", 1, /*repeat=*/true);

  ServerOptions opts;
  opts.num_workers = 1;
  opts.recovery.journal = &journal;
  opts.recovery.checkpoints = &ckpts;
  InferenceServer server(opts);
  server.register_model("m", f.amm);

  rollout::RolloutOptions ropts;
  ropts.seed = seed;
  ropts.reservoir_rows = 96;
  ropts.min_train_rows = 96;
  ropts.min_shadow_rows = 24;
  ropts.drift_tolerance = std::numeric_limits<std::int16_t>::max();
  ropts.error_budget = 0.5;
  ropts.fault = &fault;
  rollout::RolloutManager mgr(server, ropts);
  mgr.manage("m", f.weights, f.cfg);
  mgr.start();

  std::size_t submitted = 0;
  auto pump = [&](std::size_t n) {
    for (std::size_t k = 0; k < n; ++k, ++submitted) {
      const InferenceResult r =
          server.submit("m@latest", f.codes_for(submitted), 1).get();
      EXPECT_EQ(r.model_version, 1u);  // the candidate never publishes
      EXPECT_EQ(r.outputs, f.expected(submitted % f.pool.rows, 1));
    }
  };

  pump(96);
  std::size_t guard = 0;
  while (mgr.report("m").state != rollout::RolloutState::kRolledBack &&
         guard++ < 5000)
    pump(1);
  ASSERT_EQ(mgr.wait_for_decision("m", 10000ms),
            rollout::RolloutState::kRolledBack);
  const rollout::RolloutReport rep = mgr.report("m");
  EXPECT_EQ(rep.drift_rows, rep.shadow_rows);  // every mirrored row
  EXPECT_GT(rep.drift_fraction, ropts.error_budget);

  // The staged candidate is gone; live serving continues on v1.
  EXPECT_EQ(server.registry().latest_version("m"), 1u);
  EXPECT_EQ(server.registry().try_resolve("m", rep.candidate_version),
            nullptr);
  pump(8);

  server.shutdown();
  mgr.stop();

  // The retraction force-checkpointed: a restart does not resurrect the
  // discarded candidate.
  const recovery::RecoveredState rs =
      recovery::recover_state(ckpts, journal.path());
  ServerOptions ropts2;
  ropts2.num_workers = 1;
  auto restored = InferenceServer::restore(rs, ropts2);
  EXPECT_EQ(restored->registry().latest_version("m"), 1u);
  EXPECT_EQ(restored->registry().try_resolve("m", rep.candidate_version),
            nullptr);
  restored->shutdown();
}

// ---------------------------------------------------------------------
// Admin plane: rollout status / operator overrides / journal compaction
// over the wire, and typed failures when the plane is not wired.
// ---------------------------------------------------------------------

TEST(Rollout, AdminPlaneStatusOverridesAndCompaction) {
  const std::uint64_t seed = test_seed();
  SCOPED_TRACE(seed_trace(seed));
  RolloutFixture f = RolloutFixture::make();
  TmpDir dir("rollout-admin");
  recovery::CheckpointManager ckpts(dir.file("ckpts"));
  recovery::RequestJournal journal(dir.file("wal.jnl"));
  ServerOptions opts;
  opts.num_workers = 1;
  opts.recovery.journal = &journal;
  opts.recovery.checkpoints = &ckpts;
  InferenceServer server(opts);
  server.register_model("m", f.amm);
  const std::uint64_t staged = server.stage_model("m", f.amm.save_string());

  rollout::RolloutOptions ropts;
  ropts.seed = seed;
  ropts.min_shadow_rows = 1u << 20;  // never auto-decides in this test
  rollout::RolloutManager mgr(server, ropts);
  mgr.shadow_existing("m", staged);
  mgr.start();

  net::NetServerOptions nopts;
  net::NetServer net(server, nopts);
  net.set_rollout(&mgr);
  net::NetClient cli;
  cli.connect("127.0.0.1", net.port());

  // Acked traffic so compaction has a prunable prefix.
  for (std::size_t i = 0; i < 8; ++i)
    server.submit("m@latest", f.codes_for(i), 1).get();

  auto admin = [&](std::uint8_t op, const std::string& target) {
    net::AdminRequest req;
    req.correlation_id = 0x5000 + op;
    req.op = op;
    req.target = target;
    cli.send_admin(req);
    net::AdminResponse resp;
    EXPECT_TRUE(cli.recv_admin(&resp));
    EXPECT_EQ(resp.correlation_id, req.correlation_id);
    return resp;
  };

  // op 0: status — all models, then one model.
  net::AdminResponse st = admin(0, "");
  EXPECT_EQ(st.status, 0);
  EXPECT_NE(st.body.find("model=m"), std::string::npos);
  EXPECT_NE(st.body.find("state=shadowing"), std::string::npos);
  st = admin(0, "m");
  EXPECT_EQ(st.status, 0);
  EXPECT_NE(st.body.find("candidate=@2"), std::string::npos);

  // Typed failures: unmanaged target, unknown op.
  EXPECT_NE(admin(0, "nope").status, 0);
  EXPECT_NE(admin(42, "m").status, 0);

  // op 3: compact the journal (8 accepted + 8 completed, all acked).
  const net::AdminResponse comp = admin(3, "");
  EXPECT_EQ(comp.status, 0);
  EXPECT_GE(comp.arg, 16u);
  EXPECT_GT(journal.compaction_info().base_seq, 0u);

  // op 1: operator force-promote, budget notwithstanding.
  const net::AdminResponse prom = admin(1, "m");
  EXPECT_EQ(prom.status, 0);
  EXPECT_NE(prom.body.find("state=promoted"), std::string::npos);
  EXPECT_EQ(server.registry().latest_version("m"), staged);
  EXPECT_NE(admin(1, "m").status, 0);  // no candidate shadowing anymore

  // Detached plane: rollout ops answer a typed failure, compaction
  // still works (it only needs the inference server).
  net.set_rollout(nullptr);
  EXPECT_NE(admin(0, "").status, 0);
  EXPECT_EQ(admin(3, "").status, 0);

  cli.close();
  net.stop();
  server.shutdown();
  mgr.stop();
}

// ---------------------------------------------------------------------
// Compaction under replication: a caught-up follower keeps streaming
// across a leader compaction (generation reopen), and a fresh follower
// joining a compacted leader adopts the base and ends byte-identical.
// ---------------------------------------------------------------------

TEST(RolloutReplication, MidStreamCompactionKeepsFollowerConsistent) {
  const std::uint64_t seed = test_seed();
  SCOPED_TRACE(seed_trace(seed));
  RolloutFixture f = RolloutFixture::make();
  TmpDir ldir("compact-lead");
  TmpDir fdir("compact-follow");
  recovery::CheckpointManager ckpts(ldir.file("ckpts"));
  recovery::RequestJournal journal(ldir.file("wal.jnl"));
  replication::ReplicationOptions ropts;
  replication::ReplicationLog repl(journal, &ckpts, ropts);
  ServerOptions opts;
  opts.num_workers = 1;
  opts.recovery.journal = &journal;
  opts.recovery.checkpoints = &ckpts;
  opts.recovery.replication = &repl;
  InferenceServer server(opts);
  server.register_model("m", f.amm);

  replication::ApplierOptions aopts;
  aopts.leader_port = repl.port();
  aopts.dir = fdir.str();
  aopts.server.num_workers = 1;
  replication::ReplicaApplier applier(aopts);
  ASSERT_TRUE(repl.wait_follower(1, 10000ms));

  std::size_t submitted = 0;
  auto pump = [&](std::size_t n) {
    for (std::size_t k = 0; k < n; ++k, ++submitted)
      server.submit("m@latest", f.codes_for(submitted), 1).get();
  };

  pump(8);
  wait_journal_records(journal, 16);  // 8 accepts + 8 completions
  ASSERT_TRUE(applier.wait_caught_up(journal.durable_seq(), 10000ms));
  // The follower is durable; wait for its acks to land on the leader so
  // the compaction horizon deterministically covers everything.
  for (int spin = 0;
       spin < 10000 && repl.stats().replicated_seq < journal.durable_seq();
       ++spin)
    std::this_thread::sleep_for(1ms);
  ASSERT_EQ(repl.stats().replicated_seq, journal.durable_seq());

  // With the follower fully acked, the whole acked prefix is below the
  // compaction horizon.
  const std::uint64_t pruned = server.compact_journal();
  EXPECT_GE(pruned, 16u);
  EXPECT_GT(journal.compaction_info().base_seq, 0u);

  // The stream survives the physical rewrite: the tailer reopens on the
  // generation bump and keeps translating virtual offsets.
  pump(8);
  wait_journal_records(journal, 32);
  ASSERT_TRUE(applier.wait_caught_up(journal.durable_seq(), 10000ms));
  EXPECT_EQ(applier.stats().gap_reconnects, 0u);

  // The follower's journal was never compacted: full history, no base.
  const auto freplay =
      recovery::RequestJournal::read(applier.journal_path());
  EXPECT_EQ(freplay.accepted, 16u);
  EXPECT_EQ(freplay.completed, 16u);
  EXPECT_EQ(freplay.compacted_through, 0u);
  EXPECT_FALSE(freplay.torn_tail);

  applier.stop();
  server.shutdown();
  repl.stop();
}

TEST(RolloutReplication, FreshFollowerAdoptsCompactedBase) {
  const std::uint64_t seed = test_seed();
  SCOPED_TRACE(seed_trace(seed));
  RolloutFixture f = RolloutFixture::make();
  TmpDir ldir("adopt-lead");
  TmpDir f1dir("adopt-f1");
  TmpDir f2dir("adopt-f2");
  recovery::CheckpointManager ckpts(ldir.file("ckpts"));
  recovery::RequestJournal journal(ldir.file("wal.jnl"));
  replication::ReplicationOptions ropts;
  replication::ReplicationLog repl(journal, &ckpts, ropts);
  ServerOptions opts;
  opts.num_workers = 1;
  opts.recovery.journal = &journal;
  opts.recovery.checkpoints = &ckpts;
  opts.recovery.replication = &repl;
  InferenceServer server(opts);
  server.register_model("m", f.amm);

  replication::ApplierOptions a1;
  a1.leader_port = repl.port();
  a1.dir = f1dir.str();
  a1.server.num_workers = 1;
  replication::ReplicaApplier applier1(a1);
  ASSERT_TRUE(repl.wait_follower(1, 10000ms));

  std::size_t submitted = 0;
  auto pump = [&](std::size_t n) {
    for (std::size_t k = 0; k < n; ++k, ++submitted)
      server.submit("m@latest", f.codes_for(submitted), 1).get();
  };

  pump(8);
  wait_journal_records(journal, 16);
  ASSERT_TRUE(applier1.wait_caught_up(journal.durable_seq(), 10000ms));
  for (int spin = 0;
       spin < 10000 && repl.stats().replicated_seq < journal.durable_seq();
       ++spin)
    std::this_thread::sleep_for(1ms);
  ASSERT_GT(server.compact_journal(), 0u);
  const std::uint64_t base = journal.compaction_info().base_seq;
  ASSERT_GT(base, 0u);
  pump(4);
  wait_journal_records(journal, 24);

  // A fresh follower joining the compacted leader receives the base
  // frame, seeds its empty journal with it, and then the record stream
  // keeps it byte-identical to the leader's physical file.
  replication::ApplierOptions a2;
  a2.leader_port = repl.port();
  a2.dir = f2dir.str();
  a2.server.num_workers = 1;
  replication::ReplicaApplier applier2(a2);
  ASSERT_TRUE(repl.wait_follower(2, 10000ms));
  ASSERT_TRUE(applier2.wait_caught_up(journal.durable_seq(), 10000ms));

  const auto r2 = recovery::RequestJournal::read(applier2.journal_path());
  EXPECT_EQ(r2.compacted_through, base);
  // Only post-base records reached the fresh follower.
  EXPECT_EQ(r2.accepted + r2.completed, journal.durable_seq() - base);
  EXPECT_EQ(slurp(applier2.journal_path()), slurp(journal.path()));

  // And the adopted follower is a real standby: it promotes into a
  // server whose registry serves the leader's model.
  applier1.stop();
  applier2.stop();
  server.shutdown();
  repl.stop();
  auto promoted = applier2.promote();
  EXPECT_EQ(promoted->registry().latest_version("m"), 1u);
  EXPECT_EQ(promoted->submit("m@latest", f.codes_for(0), 1)
                .get()
                .model_version,
            1u);
  promoted->shutdown();
}

}  // namespace
}  // namespace ssma::serve
