// Tests for the public accelerator façade (tiling, bit-exactness across
// tile boundaries, report assembly) and the prior-work baseline models
// (process scaling reproducing Table II's normalized numbers, analog
// encoder PVT sensitivity, MAC-array energy reference).
#include <gtest/gtest.h>

#include "baselines/analog_encoder_model.hpp"
#include "baselines/exact_mac_model.hpp"
#include "baselines/prior_work.hpp"
#include "baselines/process_scaling.hpp"
#include "core/accelerator.hpp"
#include "core/experiments.hpp"
#include "core/layer_mapping.hpp"
#include "core/ppa_report.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ssma {
namespace {

maddness::Amm train_test_amm(Rng& rng, int ncodebooks, int nout,
                             std::size_t n = 240) {
  maddness::Config cfg;
  cfg.ncodebooks = ncodebooks;
  Matrix x(n, static_cast<std::size_t>(ncodebooks) * 9);
  for (std::size_t i = 0; i < x.size(); ++i)
    x.data()[i] = static_cast<float>(rng.next_double(0, 220));
  Matrix w(static_cast<std::size_t>(ncodebooks) * 9, nout);
  for (std::size_t i = 0; i < w.size(); ++i)
    w.data()[i] = static_cast<float>(rng.next_gaussian(0, 0.05));
  return maddness::Amm::train(cfg, x, w);
}

// ------------------------------------------------------------ layer tiling

TEST(LayerMapping, ExactFitSingleTile) {
  const auto plan = core::plan_tiles(8, 4, 8, 4);
  EXPECT_EQ(plan.tiles.size(), 1u);
  EXPECT_EQ(plan.input_tiles(), 1);
  EXPECT_EQ(plan.output_tiles(), 1);
  EXPECT_TRUE(plan.tiles[0].first_input_tile);
}

TEST(LayerMapping, SplitsInputAndOutputDims) {
  const auto plan = core::plan_tiles(20, 10, 8, 4);
  EXPECT_EQ(plan.input_tiles(), 3);   // 8+8+4
  EXPECT_EQ(plan.output_tiles(), 3);  // 4+4+2
  EXPECT_EQ(plan.tiles.size(), 9u);
  // Every output tile's first input tile gets the bias.
  int firsts = 0;
  for (const auto& t : plan.tiles) firsts += t.first_input_tile;
  EXPECT_EQ(firsts, 3);
  // Partial tail tiles.
  EXPECT_EQ(plan.tiles.back().block_n, 4);
  EXPECT_EQ(plan.tiles.back().lane_n, 2);
}

TEST(LayerMapping, CoversEveryCell) {
  const auto plan = core::plan_tiles(13, 7, 5, 3);
  std::vector<std::vector<int>> covered(13, std::vector<int>(7, 0));
  for (const auto& t : plan.tiles)
    for (int b = 0; b < t.block_n; ++b)
      for (int d = 0; d < t.lane_n; ++d)
        covered[t.block_lo + b][t.lane_lo + d] += 1;
  for (const auto& row : covered)
    for (int c : row) EXPECT_EQ(c, 1);
}

// -------------------------------------------------------------- accelerator

TEST(Accelerator, SingleTileMatchesSoftware) {
  Rng rng(1);
  const auto amm = train_test_amm(rng, 4, 6);
  const auto q = maddness::quantize_activations(
      Matrix(8, 36, 100.0f), amm.activation_scale());

  core::AcceleratorOptions opts;
  opts.ndec = 8;
  opts.ns = 4;
  core::Accelerator acc(opts);
  const auto res = acc.run(amm, q);
  EXPECT_EQ(res.plan.tiles.size(), 1u);
  EXPECT_EQ(res.outputs, amm.apply_int16(q));
}

TEST(Accelerator, TiledAcrossInputChannels) {
  // 6 codebooks on a 2-block macro: 3 chained input tiles with partial
  // re-injection must still be bit-exact.
  Rng rng(3);
  const auto amm = train_test_amm(rng, 6, 4);
  Matrix x(10, 54);
  for (std::size_t i = 0; i < x.size(); ++i)
    x.data()[i] = static_cast<float>(rng.next_double(0, 200));
  const auto q = maddness::quantize_activations(x, amm.activation_scale());

  core::AcceleratorOptions opts;
  opts.ndec = 4;
  opts.ns = 2;
  core::Accelerator acc(opts);
  const auto res = acc.run(amm, q);
  EXPECT_EQ(res.plan.input_tiles(), 3);
  EXPECT_EQ(res.outputs, amm.apply_int16(q));
}

TEST(Accelerator, TiledAcrossOutputLanes) {
  Rng rng(5);
  const auto amm = train_test_amm(rng, 2, 10);
  Matrix x(6, 18);
  for (std::size_t i = 0; i < x.size(); ++i)
    x.data()[i] = static_cast<float>(rng.next_double(0, 200));
  const auto q = maddness::quantize_activations(x, amm.activation_scale());

  core::AcceleratorOptions opts;
  opts.ndec = 4;
  opts.ns = 2;
  core::Accelerator acc(opts);
  const auto res = acc.run(amm, q);
  EXPECT_EQ(res.plan.output_tiles(), 3);
  EXPECT_EQ(res.outputs, amm.apply_int16(q));
}

TEST(Accelerator, TiledBothDimsWithBias) {
  Rng rng(7);
  const auto amm = train_test_amm(rng, 5, 6);
  Matrix x(7, 45);
  for (std::size_t i = 0; i < x.size(); ++i)
    x.data()[i] = static_cast<float>(rng.next_double(0, 200));
  const auto q = maddness::quantize_activations(x, amm.activation_scale());

  std::vector<std::int16_t> bias = {10, -20, 30, -40, 50, -60};
  core::AcceleratorOptions opts;
  opts.ndec = 4;
  opts.ns = 2;
  core::Accelerator acc(opts);
  const auto res = acc.run(amm, q, &bias);

  auto expect = amm.apply_int16(q);
  for (std::size_t k = 0; k < q.rows; ++k)
    for (int o = 0; o < 6; ++o)
      expect[k * 6 + o] =
          static_cast<std::int16_t>(expect[k * 6 + o] + bias[o]);
  EXPECT_EQ(res.outputs, expect);
}

TEST(Accelerator, ReportHasConsistentMetrics) {
  Rng rng(9);
  const auto amm = train_test_amm(rng, 4, 4);
  Matrix x(12, 36);
  for (std::size_t i = 0; i < x.size(); ++i)
    x.data()[i] = static_cast<float>(rng.next_double(0, 200));
  const auto q = maddness::quantize_activations(x, amm.activation_scale());

  core::AcceleratorOptions opts;
  opts.ndec = 4;
  opts.ns = 4;
  core::Accelerator acc(opts);
  const auto res = acc.run(amm, q);
  const core::PpaReport& r = res.report;
  EXPECT_GT(r.freq_mhz, 0.0);
  EXPECT_GT(r.tops_per_w, 0.0);
  EXPECT_GT(r.energy_per_op_fj, 0.0);
  EXPECT_NEAR(r.tops_per_w * r.energy_per_op_fj, 1e3, 1.0);
  EXPECT_NEAR(r.tops_per_mm2 * r.core_mm2, r.throughput_tops, 1e-9);
  const std::string text = r.render();
  EXPECT_NE(text.find("TOPS/W"), std::string::npos);
}

TEST(Accelerator, AnalyticReportMatchesPaperFlagship) {
  core::AcceleratorOptions opts;  // defaults: 16 x 32 @ 0.5 V
  core::Accelerator acc(opts);
  const auto r = acc.analytic_report(0);
  EXPECT_NEAR(r.tops_per_w, 174.0, 2.0);
  EXPECT_NEAR(r.core_mm2, 0.20, 0.002);
  EXPECT_NEAR(r.tops_per_mm2, 2.01, 0.05);
}

// --------------------------------------------------------------- experiments

TEST(Experiments, Fig6SweepShapes) {
  const auto pts = core::run_fig6_sweep({0.5, 0.8});
  EXPECT_EQ(pts.size(), 10u);  // 2 voltages x 5 corners
  // Energy efficiency decreases with voltage; area efficiency increases.
  const auto& ttg05 = pts[0];
  const auto& ttg08 = pts[5];
  EXPECT_EQ(ttg05.corner, ppa::Corner::TTG);
  EXPECT_GT(ttg05.avg_tops_per_w, ttg08.avg_tops_per_w);
  EXPECT_LT(ttg05.avg_tops_per_mm2, ttg08.avg_tops_per_mm2);
}

TEST(Experiments, Fig7BreakdownTrends) {
  const auto b4 = core::run_fig7_breakdown(4, 10, 4);
  const auto b16 = core::run_fig7_breakdown(16, 10, 4);
  // Decoder shares grow with Ndec in energy and area; encoder latency
  // share shrinks slightly (deeper RCD tree).
  EXPECT_GT(b16.energy_decoder_share, b4.energy_decoder_share);
  EXPECT_GT(b16.area_decoder_share, b4.area_decoder_share);
  EXPECT_LT(b16.encoder_latency_share_best, b4.encoder_latency_share_best);
  // Fig. 7B values.
  EXPECT_NEAR(b4.latency_best_ns, 16.1, 0.05);
  EXPECT_NEAR(b16.latency_worst_ns, 32.1, 0.05);
  EXPECT_NEAR(b4.encoder_latency_share_worst, 0.713, 0.005);
  EXPECT_NEAR(b16.encoder_latency_share_best, 0.415, 0.005);
}

TEST(Experiments, Table1RowsMatchPaper) {
  const auto rows = core::run_table1_sweep();
  const auto golden = core::table1_paper_values();
  ASSERT_EQ(rows.size(), golden.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].ndec, golden[i].ndec);
    EXPECT_NEAR(rows[i].eff_05v_tops_per_w, golden[i].w05,
                0.015 * golden[i].w05);
    EXPECT_NEAR(rows[i].eff_08v_tops_per_w, golden[i].w08,
                0.015 * golden[i].w08);
  }
}

// ------------------------------------------------------------------ scaling

TEST(ProcessScaling, IdealSquareLaw) {
  baselines::ScalingSpec spec{65.0, 22.0, 2.0, 0.0};
  EXPECT_NEAR(baselines::scale_area_mm2(1.0, spec), (22.0 / 65.0) * (22.0 / 65.0),
              1e-12);
}

TEST(ProcessScaling, UnscaledFractionStays) {
  baselines::ScalingSpec spec{65.0, 22.0, 2.0, 1.0};
  EXPECT_NEAR(baselines::scale_area_mm2(0.5, spec), 0.5, 1e-12);
}

TEST(PriorWork, NormalizedAreaEfficiencyMatchesTable2) {
  // Footnote 4 values: [21] 0.29 -> (0.40), [22] 5.1 -> (2.70).
  EXPECT_NEAR(baselines::normalized_area_efficiency(baselines::fuketa_tcas23()), 0.40,
              0.01);
  EXPECT_NEAR(baselines::normalized_area_efficiency(baselines::stella_nera()), 2.70,
              0.03);
}

TEST(PriorWork, ProposedBeatsBothBaselines) {
  // The headline: 2.5x energy efficiency vs [21], and at 0.8 V both
  // metrics beat [22]'s normalized numbers.
  ppa::AnalyticPerf p05({16, 32}, ppa::nominal_05v());
  const auto e05 = p05.envelope();
  EXPECT_GT(e05.avg_tops_per_w,
            2.4 * baselines::fuketa_tcas23().tops_per_w);
  EXPECT_GT(e05.avg_tops_per_mm2,
            4.8 * baselines::normalized_area_efficiency(baselines::fuketa_tcas23()));

  ppa::AnalyticPerf p08({16, 32}, ppa::nominal_08v());
  const auto e08 = p08.envelope();
  EXPECT_GT(e08.avg_tops_per_w,
            1.6 * baselines::stella_nera().tops_per_w);
  EXPECT_GT(e08.avg_tops_per_mm2,
            4.0 * baselines::normalized_area_efficiency(baselines::stella_nera()));
}

// ------------------------------------------------------------ analog model

TEST(AnalogEncoder, IdealEncodeIsManhattanArgmin) {
  Matrix protos(3, 2);
  protos(0, 0) = 0;
  protos(0, 1) = 0;
  protos(1, 0) = 30;
  protos(1, 1) = 30;
  protos(2, 0) = 60;
  protos(2, 1) = 60;
  Rng rng(11);
  baselines::AnalogTimeDomainEncoder enc(protos, 0.0, rng);
  EXPECT_EQ(enc.encode_ideal({1, 2}), 0);
  EXPECT_EQ(enc.encode_ideal({29, 31}), 1);
  EXPECT_EQ(enc.encode_ideal({63, 55}), 2);
}

TEST(AnalogEncoder, ZeroMismatchNeverFlips) {
  Rng rng(13);
  Matrix protos(8, 4);
  for (std::size_t i = 0; i < protos.size(); ++i)
    protos.data()[i] = static_cast<float>(rng.next_int(0, 63));
  const double rate = baselines::AnalogTimeDomainEncoder::
      misclassification_rate(protos, 0.0, 500, rng);
  EXPECT_DOUBLE_EQ(rate, 0.0);
}

TEST(AnalogEncoder, MismatchCausesFlipsMonotonically) {
  // The PVT-vulnerability mechanism of [21]: more mismatch, more flipped
  // encodings. The proposed digital BDT has no analog race to corrupt.
  Rng rng(17);
  Matrix protos(16, 9);
  for (std::size_t i = 0; i < protos.size(); ++i)
    protos.data()[i] = static_cast<float>(rng.next_int(0, 63));
  Rng r1(19), r2(19);
  const double low = baselines::AnalogTimeDomainEncoder::
      misclassification_rate(protos, 0.02, 800, r1);
  const double high = baselines::AnalogTimeDomainEncoder::
      misclassification_rate(protos, 0.15, 800, r2);
  EXPECT_GT(high, low);
  EXPECT_GT(high, 0.01);
}

// ---------------------------------------------------------------- MAC model

TEST(MacBaseline, EnergyScalesWithNodeAndVoltage) {
  baselines::MacBaselineModel m;
  EXPECT_LT(m.mac_energy_fj(22.0, 0.5), m.mac_energy_fj(45.0, 0.9));
  EXPECT_LT(m.mac_energy_fj(22.0, 0.5), m.mac_energy_fj(22.0, 0.8));
}

TEST(MacBaseline, MaddnessBeatsMacArrayByLargeFactor) {
  // The premise of the whole line of work: table lookup removes the
  // multiplier and the weight fetch, so the proposed macro's energy/op
  // is far below a conventional MAC datapath at the same node/VDD.
  baselines::MacBaselineModel m;
  const double mac_eff = m.tops_per_w(22.0, 0.5);
  ppa::AnalyticPerf perf({16, 32}, ppa::nominal_05v());
  EXPECT_GT(perf.envelope().avg_tops_per_w, 5.0 * mac_eff);
}

TEST(MacBaseline, WeightFetchDominates) {
  // Horowitz's observation: SRAM fetch costs more than the arithmetic.
  baselines::MacBaselineModel m;
  EXPECT_GT(m.energy_per_op_fj(22.0, 0.8, true),
            3.0 * m.energy_per_op_fj(22.0, 0.8, false));
}

}  // namespace
}  // namespace ssma
