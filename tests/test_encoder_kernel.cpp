// Correctness hardening of the vectorized batch encoder: every dispatch
// tier (scalar staging-tile walk, SSSE3/AVX2 staged traversal AND the
// windowed direct-gather fast path) must produce bit-identical leaf
// codes to the per-row HashTree::encode reference on randomized
// configurations — including ragged row tails around the 16/32-row SIMD
// blocks, duplicate split dims inside a codebook, thresholds pinned at
// the 0/255 rails, and the x == t equality edge at every level. The
// fused quantize+encode path must match quantize-then-encode to the
// bit, steady-state encoding must not allocate, and serve-side journal
// replay must stay bit-exact with the new encoder on the hot path.
#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "maddness/amm.hpp"
#include "maddness/encoder_kernel.hpp"
#include "maddness/framing.hpp"
#include "maddness/prototypes.hpp"
#include "serve/recovery/checkpoint.hpp"
#include "serve/recovery/fault_injector.hpp"
#include "serve/recovery/journal.hpp"
#include "serve/recovery/recovery.hpp"
#include "serve/server.hpp"
#include "serve_test_util.hpp"

// These suites deliberately keep exercising the deprecated v1
// one-model constructor — it is the compatibility shim under test.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

#include "util/rng.hpp"

using namespace ssma;
using namespace ssma::maddness;

namespace {

std::vector<KernelTier> available_encoder_tiers() {
  std::vector<KernelTier> tiers{KernelTier::kScalar};
  if (encoder_tier_available(KernelTier::kSsse3))
    tiers.push_back(KernelTier::kSsse3);
  if (encoder_tier_available(KernelTier::kAvx2))
    tiers.push_back(KernelTier::kAvx2);
  return tiers;
}

/// Random tree over `subvec_dim` dims; with_rails sprinkles 0/255
/// thresholds and duplicate split dims into the mix.
HashTree random_tree(Rng& rng, int subvec_dim, bool with_rails) {
  HashTree t;
  const int forced_dim = rng.next_int(0, subvec_dim - 1);
  for (int l = 0; l < HashTree::kLevels; ++l) {
    // ~1 in 3 levels reuse one dimension -> duplicate split dims.
    const bool dup = with_rails && rng.next_bool(0.33);
    t.set_split_dim(l, dup ? forced_dim : rng.next_int(0, subvec_dim - 1));
    for (int node = 0; node < (1 << l); ++node) {
      int thr = rng.next_int(0, 255);
      if (with_rails && rng.next_bool(0.2))
        thr = rng.next_bool() ? 0 : 255;
      t.set_threshold(l, node, static_cast<std::uint8_t>(thr));
    }
  }
  return t;
}

QuantizedActivations random_quantized(Rng& rng, std::size_t rows,
                                      std::size_t cols) {
  QuantizedActivations q;
  q.rows = rows;
  q.cols = cols;
  q.scale = 1.0f;
  q.codes.resize(rows * cols);
  for (auto& v : q.codes)
    v = static_cast<std::uint8_t>(rng.next_int(0, 255));
  return q;
}

/// Reference codes via the per-row HashTree walk, codebook-major.
std::vector<std::uint8_t> reference_codes(
    const Config& cfg, const std::vector<HashTree>& trees,
    const QuantizedActivations& q) {
  std::vector<std::uint8_t> codes(
      q.rows * static_cast<std::size_t>(cfg.ncodebooks));
  for (std::size_t n = 0; n < q.rows; ++n)
    for (int c = 0; c < cfg.ncodebooks; ++c)
      codes[static_cast<std::size_t>(c) * q.rows + n] =
          static_cast<std::uint8_t>(trees[c].encode(
              q.row(n) + static_cast<std::size_t>(c) * cfg.subvec_dim));
  return codes;
}

void expect_all_tiers_match(const Config& cfg,
                            const std::vector<HashTree>& trees,
                            const QuantizedActivations& q,
                            const char* what) {
  const EncoderBank bank = build_encoder_bank(cfg, trees);
  const auto ref = reference_codes(cfg, trees, q);
  EncodeScratch scratch;
  EncodedBatch out;
  for (const KernelTier tier : available_encoder_tiers()) {
    encode_batch_packed(bank, q, tier, scratch, out);
    ASSERT_EQ(out.rows, q.rows);
    ASSERT_EQ(out.ncodebooks, cfg.ncodebooks);
    ASSERT_EQ(out.codes, ref)
        << what << ": tier=" << kernel_tier_name(tier)
        << " ncb=" << cfg.ncodebooks << " rows=" << q.rows;
  }
}

}  // namespace

// ------------------------------------------------------------ bank layout

TEST(EncoderBank, FlattensTreesIntoSoaLayout) {
  Rng rng(4001);
  Config cfg;
  cfg.ncodebooks = 3;
  std::vector<HashTree> trees;
  for (int c = 0; c < cfg.ncodebooks; ++c)
    trees.push_back(random_tree(rng, cfg.subvec_dim, false));
  const EncoderBank bank = build_encoder_bank(cfg, trees);
  EXPECT_EQ(bank.ncodebooks, 3);
  EXPECT_EQ(bank.total_dims, 27);
  for (int c = 0; c < 3; ++c) {
    for (int l = 0; l < HashTree::kLevels; ++l)
      EXPECT_EQ(bank.split_dim(l, c),
                c * cfg.subvec_dim + trees[c].split_dims()[l]);
    const std::uint8_t* thr = bank.codebook_thresholds(c);
    for (int node = 0; node < HashTree::kNodes; ++node)
      EXPECT_EQ(thr[node], trees[c].threshold_flat(node));
    EXPECT_EQ(thr[15], 0) << "pad byte must be deterministic";
  }
  // 27 dims >= 16 and 9-dim subvectors always fit a 16-byte window.
  EXPECT_TRUE(bank.windowed);
  for (int c = 0; c < 3; ++c) {
    const std::uint8_t* pick = bank.pick_mask(c);
    for (int l = 0; l < HashTree::kLevels; ++l) {
      EXPECT_EQ(bank.window_off[c] + pick[l], bank.split_dim(l, c));
      EXPECT_LT(pick[l], EncoderBank::kThrStride);
    }
    EXPECT_LE(bank.window_off[c] + EncoderBank::kThrStride,
              bank.total_dims) << "window must never read past the row";
  }
}

TEST(EncoderBank, SingleCodebookBankIsNotWindowed) {
  // total_dims = 9 < 16: the window would read past the row, so the
  // bank must fall back to the staging-tile path.
  Rng rng(4003);
  Config cfg;
  cfg.ncodebooks = 1;
  std::vector<HashTree> trees{random_tree(rng, cfg.subvec_dim, false)};
  EXPECT_FALSE(build_encoder_bank(cfg, trees).windowed);
}

// --------------------------------------------------- tier bit-exactness

TEST(EncoderKernel, AllTiersBitExactOnRandomConfigMatrix) {
  Rng rng(4005);
  // Row counts bracket the 16-row (SSSE3) and 32-row (AVX2) blocks on
  // both sides; ncodebooks = 1 exercises the non-windowed staged path
  // in every tier.
  const int ncodebooks[] = {1, 2, 3, 5, 16, 32};
  const std::size_t row_counts[] = {1, 7, 15, 16, 17, 31, 32, 33, 64, 100};
  for (const int ncb : ncodebooks) {
    Config cfg;
    cfg.ncodebooks = ncb;
    std::vector<HashTree> trees;
    for (int c = 0; c < ncb; ++c)
      trees.push_back(random_tree(rng, cfg.subvec_dim, true));
    for (const std::size_t rows : row_counts) {
      QuantizedActivations q = random_quantized(
          rng, rows, static_cast<std::size_t>(cfg.total_dims()));
      // Plant exact-threshold values so the x == t edge fires inside
      // random data too.
      for (std::size_t n = 0; n < rows; n += 3) {
        const int c = rng.next_int(0, ncb - 1);
        const int l = rng.next_int(0, HashTree::kLevels - 1);
        q.codes[n * q.cols + static_cast<std::size_t>(c) * cfg.subvec_dim +
                trees[static_cast<std::size_t>(c)].split_dims()[l]] =
            trees[static_cast<std::size_t>(c)].threshold(
                l, rng.next_int(0, (1 << l) - 1));
      }
      expect_all_tiers_match(cfg, trees, q, "random matrix");
    }
  }
}

TEST(EncoderKernel, EqualityEdgeGoesRightAtEveryLevel) {
  // x == t must take the right branch (the hardware's >= rail) at every
  // level: with all thresholds equal to the data value the walk must
  // land in leaf 15, and one less must land in leaf 0.
  Config cfg;
  cfg.ncodebooks = 2;
  for (const int v : {1, 128, 255}) {
    std::vector<HashTree> trees(2);
    for (auto& t : trees) {
      for (int l = 0; l < HashTree::kLevels; ++l) {
        t.set_split_dim(l, l % cfg.subvec_dim);
        for (int node = 0; node < (1 << l); ++node)
          t.set_threshold(l, node, static_cast<std::uint8_t>(v));
      }
    }
    QuantizedActivations q;
    q.rows = 40;  // spans SIMD blocks and scalar tail
    q.cols = static_cast<std::size_t>(cfg.total_dims());
    q.codes.assign(q.rows * q.cols, static_cast<std::uint8_t>(v));
    for (std::size_t n = 1; n < q.rows; n += 2)
      for (std::size_t j = 0; j < q.cols; ++j)
        q.codes[n * q.cols + j] = static_cast<std::uint8_t>(v - 1);
    const EncoderBank bank = build_encoder_bank(cfg, trees);
    EncodeScratch scratch;
    EncodedBatch out;
    for (const KernelTier tier : available_encoder_tiers()) {
      encode_batch_packed(bank, q, tier, scratch, out);
      for (std::size_t n = 0; n < q.rows; ++n)
        for (int c = 0; c < 2; ++c)
          ASSERT_EQ(out.codebook(c)[n], n % 2 == 0 ? 15 : 0)
              << "v=" << v << " tier=" << kernel_tier_name(tier)
              << " row=" << n;
    }
    expect_all_tiers_match(cfg, trees, q, "equality edge");
  }
}

TEST(EncoderKernel, ThresholdRailsZeroAndMax) {
  // t = 0: every uint8 x satisfies x >= 0, so all-zero thresholds must
  // send every row to leaf 15 — including x = 0 (equality at the rail).
  // t = 255: only x = 255 goes right.
  Rng rng(4009);
  Config cfg;
  cfg.ncodebooks = 2;
  for (const int rail : {0, 255}) {
    std::vector<HashTree> trees(2);
    for (auto& t : trees)
      for (int l = 0; l < HashTree::kLevels; ++l) {
        t.set_split_dim(l, rng.next_int(0, cfg.subvec_dim - 1));
        for (int node = 0; node < (1 << l); ++node)
          t.set_threshold(l, node, static_cast<std::uint8_t>(rail));
      }
    QuantizedActivations q = random_quantized(
        rng, 50, static_cast<std::size_t>(cfg.total_dims()));
    expect_all_tiers_match(cfg, trees, q, "rail thresholds");
  }
}

TEST(EncoderKernel, DuplicateSplitDimsWithinACodebook) {
  // All four levels comparing the same dimension is legal (the learner
  // can emit it) and the tournament must still walk correctly.
  Rng rng(4011);
  Config cfg;
  cfg.ncodebooks = 3;
  std::vector<HashTree> trees(3);
  for (auto& t : trees) {
    const int dim = rng.next_int(0, cfg.subvec_dim - 1);
    for (int l = 0; l < HashTree::kLevels; ++l) {
      t.set_split_dim(l, dim);
      for (int node = 0; node < (1 << l); ++node)
        t.set_threshold(l, node,
                        static_cast<std::uint8_t>(rng.next_int(0, 255)));
    }
  }
  const QuantizedActivations q = random_quantized(
      rng, 77, static_cast<std::size_t>(cfg.total_dims()));
  expect_all_tiers_match(cfg, trees, q, "duplicate dims");
}

// ----------------------------------------------- fused quantize + encode

TEST(EncoderKernel, FusedQuantizeEncodeMatchesTwoPassPath) {
  Rng rng(4013);
  Config cfg;
  cfg.ncodebooks = 4;
  const std::size_t d = static_cast<std::size_t>(cfg.total_dims());
  Matrix x(53, d);
  for (std::size_t i = 0; i < x.size(); ++i)
    x.data()[i] = static_cast<float>(rng.next_double(0, 300));  // clips
  std::vector<HashTree> trees;
  for (int c = 0; c < cfg.ncodebooks; ++c)
    trees.push_back(random_tree(rng, cfg.subvec_dim, true));
  const EncoderBank bank = build_encoder_bank(cfg, trees);
  const float scale = 0.87f;
  const QuantizedActivations q = quantize_activations(x, scale);
  EncodeScratch scratch;
  EncodedBatch fused, two_pass;
  for (const KernelTier tier : available_encoder_tiers()) {
    encode_batch_packed(bank, x, scale, tier, scratch, fused);
    encode_batch_packed(bank, q, tier, scratch, two_pass);
    ASSERT_EQ(fused.codes, two_pass.codes) << kernel_tier_name(tier);
  }
}

TEST(EncoderKernel, AmmApplyUsesFusedEncodeBitExactly) {
  // Amm::apply runs the fused path; it must equal quantize + encode +
  // decode done explicitly.
  Rng rng(4015);
  Config cfg;
  cfg.ncodebooks = 4;
  const std::size_t d = static_cast<std::size_t>(cfg.total_dims());
  Matrix train(160, d);
  for (std::size_t i = 0; i < train.size(); ++i)
    train.data()[i] = static_cast<float>(rng.next_double(0, 220));
  Matrix w(d, 6);
  for (std::size_t i = 0; i < w.size(); ++i)
    w.data()[i] = static_cast<float>(rng.next_gaussian(0, 0.08));
  const Amm amm = Amm::train(cfg, train, w);
  Matrix x(37, d);
  for (std::size_t i = 0; i < x.size(); ++i)
    x.data()[i] = static_cast<float>(rng.next_double(0, 260));
  const auto q = quantize_activations(x, amm.activation_scale());
  const Matrix via_fused = amm.apply(x);
  const Matrix via_q = amm.dequantize_result(amm.apply_int16(q), q.rows);
  ASSERT_EQ(via_fused.rows(), via_q.rows());
  for (std::size_t i = 0; i < via_fused.size(); ++i)
    ASSERT_EQ(via_fused.data()[i], via_q.data()[i]) << "element " << i;
}

// -------------------------------------------------- Amm reference parity

TEST(EncoderKernel, AmmEncodePathsMatchReferenceWalk) {
  Rng rng(4017);
  Config cfg;
  cfg.ncodebooks = 5;
  const std::size_t d = static_cast<std::size_t>(cfg.total_dims());
  Matrix train(200, d);
  for (std::size_t i = 0; i < train.size(); ++i)
    train.data()[i] = static_cast<float>(rng.next_double(0, 220));
  const Amm amm = Amm::train(cfg, train, Matrix(d, 3));
  const auto q = quantize_activations(train, amm.activation_scale());
  // Row-major encode vs the scalar reference.
  EXPECT_EQ(amm.encode(q), encode_all(cfg, amm.trees(), q));
  // Codebook-major cache vs both scalar references.
  const EncodedBatch enc = amm.encode_batch(q);
  EXPECT_EQ(enc.codes, encode_all_codebook_major(cfg, amm.trees(), q));
  EXPECT_EQ(enc.codes, reference_codes(cfg, amm.trees(), q));
}

// ------------------------------------------------- steady-state scratch

TEST(EncoderKernel, SteadyStateEncodingDoesNotAllocate) {
  Rng rng(4019);
  Config cfg;
  cfg.ncodebooks = 8;
  const std::size_t d = static_cast<std::size_t>(cfg.total_dims());
  std::vector<HashTree> trees;
  for (int c = 0; c < cfg.ncodebooks; ++c)
    trees.push_back(random_tree(rng, cfg.subvec_dim, false));
  const EncoderBank bank = build_encoder_bank(cfg, trees);
  const KernelTier tier = select_encoder_tier();

  EncodeScratch scratch;
  EncodedBatch out;
  const QuantizedActivations big = random_quantized(rng, 96, d);
  encode_batch_packed(bank, big, tier, scratch, out);
  // Force the staging tile into existence too (the windowed fast path
  // may skip it): one scalar-tier pass establishes its capacity.
  encode_batch_packed(bank, big, KernelTier::kScalar, scratch, out);

  const std::uint8_t* stage_ptr = scratch.stage.data();
  const std::size_t stage_cap = scratch.stage.capacity();
  const std::uint8_t* codes_ptr = out.codes.data();
  const std::size_t codes_cap = out.codes.capacity();

  // Same-size batches, then smaller ones (both SIMD and scalar tiers):
  // neither buffer may reallocate once capacity is established.
  for (int iter = 0; iter < 8; ++iter) {
    const std::size_t rows = iter % 2 == 0 ? 96 : 41;
    const QuantizedActivations q = random_quantized(rng, rows, d);
    encode_batch_packed(bank, q, tier, scratch, out);
    encode_batch_packed(bank, q, KernelTier::kScalar, scratch, out);
    ASSERT_EQ(scratch.stage.data(), stage_ptr) << "iter " << iter;
    ASSERT_EQ(scratch.stage.capacity(), stage_cap) << "iter " << iter;
    ASSERT_EQ(out.codes.data(), codes_ptr) << "iter " << iter;
    ASSERT_EQ(out.codes.capacity(), codes_cap) << "iter " << iter;
  }
}

TEST(EncoderKernel, ApplyInt16IntoReusesOutputCapacity) {
  Rng rng(4021);
  Config cfg;
  cfg.ncodebooks = 4;
  const std::size_t d = static_cast<std::size_t>(cfg.total_dims());
  Matrix train(128, d);
  for (std::size_t i = 0; i < train.size(); ++i)
    train.data()[i] = static_cast<float>(rng.next_double(0, 220));
  Matrix w(d, 8);
  for (std::size_t i = 0; i < w.size(); ++i)
    w.data()[i] = static_cast<float>(rng.next_gaussian(0, 0.08));
  const Amm amm = Amm::train(cfg, train, w);
  const auto q = quantize_activations(train, amm.activation_scale());

  EncodeScratch scratch;
  EncodedBatch enc;
  std::vector<std::int16_t> out;
  amm.encode_batch(q, scratch, enc);
  amm.apply_int16(enc, out);
  EXPECT_EQ(out, amm.apply_int16(q));  // into-form is bit-exact
  const std::int16_t* out_ptr = out.data();
  const std::size_t out_cap = out.capacity();
  for (int iter = 0; iter < 6; ++iter) {
    amm.encode_batch(q, scratch, enc);
    amm.apply_int16(enc, out);
    ASSERT_EQ(out.data(), out_ptr) << "iter " << iter;
    ASSERT_EQ(out.capacity(), out_cap) << "iter " << iter;
  }
}

// ------------------------------------------------ serve replay bit-exact

TEST(EncoderKernel, ServeJournalReplayStaysBitExactWithNewEncoder) {
  using namespace ssma::serve;
  using recovery::CheckpointManager;
  using recovery::FaultInjector;
  using recovery::FaultKind;
  using recovery::FaultPlan;
  using recovery::FaultSite;
  using recovery::RequestJournal;

  const std::uint64_t seed = test_seed();
  SCOPED_TRACE(seed_trace(seed));
  const ServeFixture f = ServeFixture::make();
  TmpDir dir("encoder-replay");
  const std::string journal_path = dir.file("requests.jnl");
  constexpr std::size_t kRequests = 24;

  std::size_t served = 0;
  {
    FaultInjector fault(seed);
    CheckpointManager ckpts(dir.str(), &fault);
    RequestJournal journal(journal_path);
    FaultPlan kill;
    kill.site = FaultSite::kExecute;
    kill.kind = FaultKind::kKillShard;
    kill.fire_at = 4;
    fault.arm(kill);

    ServerOptions opts;
    opts.num_workers = 1;
    opts.queue_capacity = 2 * kRequests;
    opts.batcher.max_batch_tokens = 2;
    opts.batcher.max_wait = std::chrono::microseconds(0);
    opts.recovery.fault = &fault;
    opts.recovery.journal = &journal;
    opts.recovery.checkpoints = &ckpts;
    opts.recovery.checkpoint_every = 6;
    opts.recovery.supervise = false;
    InferenceServer server(f.amm, opts);
    std::vector<std::future<InferenceResult>> futs;
    for (std::size_t id = 0; id < kRequests; ++id)
      futs.push_back(server.submit(f.codes_for(id), 1));
    server.shutdown();
    for (auto& fut : futs) {
      try {
        const InferenceResult res = fut.get();
        served++;
      } catch (const std::runtime_error&) {
      }
    }
    ASSERT_LT(served, kRequests) << "the injected crash must lose work";
  }

  // Restart: replayed outputs — recomputed through the vectorized
  // encoder + packed kernel — must be bit-identical to the fault-free
  // reference for every journaled request.
  CheckpointManager ckpts(dir.str());
  const auto rs = serve::recovery::recover_state(ckpts, journal_path);
  EXPECT_EQ(rs.journal.accepted, kRequests);
  ASSERT_EQ(rs.journal.unacknowledged.size(), kRequests - served);
  RequestJournal journal(journal_path);
  ServerOptions opts;
  opts.num_workers = 2;
  opts.recovery.journal = &journal;
  opts.recovery.checkpoints = &ckpts;
  auto server = InferenceServer::restore(rs, opts);
  auto futs = server->replay(rs.journal.unacknowledged);
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const auto& rec = rs.journal.unacknowledged[i];
    const InferenceResult res = futs[i].get();
    EXPECT_EQ(res.outputs, f.expected_for(rec.codes, rec.rows))
        << "replayed request " << rec.id << " diverged";
  }
  server->shutdown();

  // The crashed run's acknowledged CRCs audit against a recompute.
  for (const auto& [id, crc] : rs.journal.completed_crc) {
    const auto want = f.expected_for(f.codes_for(id), 1);
    EXPECT_EQ(crc, maddness::crc32(want.data(),
                                   want.size() * sizeof(std::int16_t)))
        << "ack CRC mismatch for request " << id;
  }
}
