// Tests for the Engine API: ModelHandle blobs (single-stage and
// pipeline), the versioned ModelRegistry (atomic bump, ref resolution,
// retire, checkpoint serialization), the three ExecutionEngine backends
// (bit-exact vs the reference decode, PPA collection, pacing), the
// multi-stage pipeline semantics, and the MaddnessNetwork layer export.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "engine/execution_engine.hpp"
#include "engine/model_registry.hpp"
#include "engine/pipeline.hpp"
#include "nn/dataset.hpp"
#include "nn/maddness_network.hpp"
#include "nn/trainer.hpp"
#include "serve_test_util.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ssma::engine {
namespace {

using serve::ServeFixture;

// --------------------------------------------------------- ModelHandle

TEST(ModelHandle, SingleStageBlobRoundTrip) {
  const ServeFixture f = ServeFixture::make();
  const ModelRef h = ModelHandle::from_amm("embed", 3, f.amm);
  EXPECT_EQ(h->name(), "embed");
  EXPECT_EQ(h->version(), 3u);
  EXPECT_EQ(h->ref(), "embed@3");
  EXPECT_FALSE(h->is_pipeline());
  EXPECT_EQ(h->cols(), f.pool.cols);
  EXPECT_EQ(h->nout(),
            static_cast<std::size_t>(f.amm.lut().nout));

  // The canonical blob reconstructs an identical bank.
  const ModelRef again = ModelHandle::from_blob("embed", 3, h->blob());
  EXPECT_EQ(again->amm().apply_int16(f.pool), f.amm.apply_int16(f.pool));
}

TEST(ModelHandle, RejectsForeignBlobsAndBadNames) {
  const ServeFixture f = ServeFixture::make();
  EXPECT_THROW(ModelHandle::from_blob("m", 1, "NOTAMODELATALL"),
               CheckError);
  EXPECT_THROW(ModelHandle::from_amm("", 1, f.amm), CheckError);
  EXPECT_THROW(ModelHandle::from_amm("bad@name", 1, f.amm), CheckError);
  EXPECT_THROW(ModelHandle::from_amm("m", 0, f.amm), CheckError);
}

// ------------------------------------------------------- ModelRegistry

TEST(ModelRegistry, RegisterResolveAndAtomicVersionBump) {
  const ServeFixture a = ServeFixture::make(4, 8, 64, 7);
  const ServeFixture b = ServeFixture::make(4, 8, 64, 99);
  ModelRegistry reg;
  EXPECT_EQ(reg.register_model("m", a.amm), 1u);

  const ModelRef v1 = reg.resolve("m@latest");
  EXPECT_EQ(v1->version(), 1u);

  EXPECT_EQ(reg.register_model("m", b.amm), 2u);
  // latest moved; the pinned v1 handle still serves the old bank.
  EXPECT_EQ(reg.resolve("m")->version(), 2u);
  EXPECT_EQ(reg.resolve("m@1").get(), v1.get());
  EXPECT_EQ(v1->amm().apply_int16(a.pool), a.amm.apply_int16(a.pool));
  EXPECT_EQ(reg.resolve("m@2")->amm().apply_int16(b.pool),
            b.amm.apply_int16(b.pool));

  EXPECT_EQ(reg.latest_version("m"), 2u);
  EXPECT_EQ(reg.versions("m"), (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(reg.num_models(), 1u);

  EXPECT_THROW(reg.resolve("m@3"), CheckError);
  EXPECT_THROW(reg.resolve("nope"), CheckError);
  EXPECT_THROW(reg.resolve("m@abc"), CheckError);
  EXPECT_THROW(reg.resolve("m@"), CheckError);
  // "@0" is a bad ref, not a latest alias (0 is only the internal
  // sentinel of the (name, version) overload).
  EXPECT_THROW(reg.resolve("m@0"), CheckError);
  EXPECT_EQ(reg.try_resolve("m", 7), nullptr);
}

TEST(ModelRegistry, UnpublishedVersionStaysOffLatestUntilPublish) {
  // The server's durability protocol: stage (resolvable only by
  // explicit version, included in save()) -> checkpoint -> publish.
  const ServeFixture f = ServeFixture::make();
  ModelRegistry reg;
  reg.register_model("m", f.amm);
  EXPECT_EQ(reg.register_model("m", f.amm.save_string(),
                               /*publish=*/false),
            2u);

  EXPECT_EQ(reg.resolve("m@latest")->version(), 1u);  // not bumped
  EXPECT_EQ(reg.resolve("m@2")->version(), 2u);       // explicit works

  // save() already carries the staged version — that is the whole
  // point: durable before "@latest" traffic can pin it.
  std::ostringstream os;
  reg.save(os);
  ModelRegistry back;
  std::istringstream is(os.str());
  back.load(is);
  EXPECT_EQ(back.versions("m"), (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(back.latest_version("m"), 1u);

  reg.publish("m", 2);
  EXPECT_EQ(reg.resolve("m")->version(), 2u);
  EXPECT_THROW(reg.publish("m", 9), CheckError);
  EXPECT_THROW(reg.publish("nope", 1), CheckError);

  // A brand-new name whose only version is staged: restore must NOT
  // commit the uncommitted swap — "@latest" stays unresolvable while
  // the staged version remains explicitly resolvable (journal replay).
  ModelRegistry staged;
  staged.register_model("fresh", f.amm.save_string(),
                        /*publish=*/false);
  std::ostringstream sos;
  staged.save(sos);
  ModelRegistry sback;
  std::istringstream sis(sos.str());
  sback.load(sis);
  EXPECT_EQ(sback.latest_version("fresh"), 0u);
  EXPECT_EQ(sback.try_resolve("fresh", 0), nullptr);
  ASSERT_NE(sback.try_resolve("fresh", 1), nullptr);
}

TEST(ModelRegistry, RetireMovesLatestAndDropsEmptyNames) {
  const ServeFixture f = ServeFixture::make();
  ModelRegistry reg;
  reg.register_model("m", f.amm);
  reg.register_model("m", f.amm);
  const ModelRef pinned = reg.resolve("m@2");

  reg.retire("m", 2);
  EXPECT_EQ(reg.latest_version("m"), 1u);
  EXPECT_EQ(reg.try_resolve("m", 2), nullptr);
  // The pinned handle outlives its registry entry (in-flight batches
  // drain on retired banks).
  EXPECT_EQ(pinned->amm().apply_int16(f.pool), f.amm.apply_int16(f.pool));

  reg.retire("m", 1);
  EXPECT_EQ(reg.num_models(), 0u);
  EXPECT_THROW(reg.retire("m", 1), CheckError);

  // A re-register after full retirement starts versioning fresh.
  EXPECT_EQ(reg.register_model("m", f.amm), 1u);
}

TEST(ModelRegistry, SaveLoadRoundTripIsDeterministic) {
  const ServeFixture a = ServeFixture::make(4, 8, 64, 7);
  const ServeFixture b = ServeFixture::make(8, 16, 64, 8);
  ModelRegistry reg;
  reg.register_model("alpha", a.amm);
  reg.register_model("alpha", a.amm);
  reg.register_model("beta", b.amm);

  std::ostringstream os1;
  reg.save(os1);

  ModelRegistry back;
  std::istringstream is(os1.str());
  back.load(is);
  EXPECT_EQ(back.names(), reg.names());
  EXPECT_EQ(back.versions("alpha"), (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(back.latest_version("alpha"), 2u);
  EXPECT_EQ(back.resolve("beta@1")->amm().apply_int16(b.pool),
            b.amm.apply_int16(b.pool));

  // Identical registries encode byte-identically (checkpoint golden
  // format relies on this).
  std::ostringstream os2;
  back.save(os2);
  EXPECT_EQ(os1.str(), os2.str());
}

// ----------------------------------------------------- engine backends

TEST(ExecutionEngine, AllBackendsBitExactVsReference) {
  const ServeFixture f = ServeFixture::make();
  const ModelRef model = ModelHandle::from_amm("m", 1, f.amm);
  const std::vector<std::int16_t> want = f.amm.apply_int16(f.pool);

  for (const Backend backend :
       {Backend::kKernel, Backend::kSimulate, Backend::kDevicePaced}) {
    EngineOptions opts;
    opts.backend = backend;
    opts.accel.ns = 4;
    opts.accel.ndec = 8;
    opts.device_ns_per_token = 10.0;  // keep the paced run fast
    const auto eng = make_engine(opts);
    EXPECT_STREQ(eng->info().name, to_string(backend));
    EXPECT_EQ(eng->info().backend, backend);
    std::vector<std::int16_t> out;
    eng->run_batch(*model, f.pool, out);
    EXPECT_EQ(out, want) << to_string(backend)
                         << " diverged from Amm::apply_int16";
  }
}

TEST(ExecutionEngine, SimulateCollectsPpaAndIdleReportsSilicon) {
  const ServeFixture f = ServeFixture::make();
  const ModelRef model = ModelHandle::from_amm("m", 1, f.amm);
  EngineOptions opts;
  opts.backend = Backend::kSimulate;
  opts.accel.ns = 4;
  opts.accel.ndec = 8;

  const auto idle = make_engine(opts);
  EXPECT_TRUE(idle->info().collects_ppa);
  const core::PpaReport silicon = idle->ppa_report();
  EXPECT_GT(silicon.core_mm2, 0.0);          // the macro exists...
  EXPECT_DOUBLE_EQ(silicon.throughput_tops, 0.0);  // ...but ran nothing

  const auto busy = make_engine(opts);
  std::vector<std::int16_t> out;
  busy->run_batch(*model, f.pool, out);
  const core::PpaReport r = busy->ppa_report();
  EXPECT_GT(r.total_ops, 0);
  EXPECT_GT(r.energy_per_op_fj, 0.0);

  // Kernel engines stay PPA-silent.
  EngineOptions kopts;
  const auto kernel = make_engine(kopts);
  EXPECT_FALSE(kernel->info().collects_ppa);
  kernel->run_batch(*model, f.pool, out);
  EXPECT_EQ(kernel->ppa_report().total_ops, 0);
}

// ------------------------------------------------- multi-stage models

/// Two shape-chained stages: stage 0 (4 codebooks -> 36 outs) feeds
/// stage 1 (36 dims == 4 codebooks x 9 -> nout outs), trained with
/// error-aware chaining.
struct PipelineFixture {
  maddness::Amm stage0;
  maddness::Amm stage1;
  maddness::QuantizedActivations pool;  ///< stage-0 inputs

  static PipelineFixture make(std::uint64_t seed = 21) {
    Rng rng(seed);
    const std::size_t d0 = 4 * 9;
    Matrix calib(384, d0);
    for (std::size_t i = 0; i < calib.size(); ++i)
      calib.data()[i] = static_cast<float>(rng.next_double(0, 200));
    Matrix w0(d0, 36);
    for (std::size_t i = 0; i < w0.size(); ++i)
      w0.data()[i] = static_cast<float>(rng.next_gaussian(0, 0.08));
    Matrix w1(36, 12);
    for (std::size_t i = 0; i < w1.size(); ++i)
      w1.data()[i] = static_cast<float>(rng.next_gaussian(0, 0.08));

    maddness::Config cfg;
    cfg.ncodebooks = 4;
    PipelineFixture f;
    Matrix mid;
    f.stage0 = train_chained_stage(cfg, calib, w0, &mid);
    f.stage1 = train_chained_stage(cfg, mid, w1, nullptr);

    Matrix fresh(96, d0);
    for (std::size_t i = 0; i < fresh.size(); ++i)
      fresh.data()[i] = static_cast<float>(rng.next_double(0, 200));
    f.pool = maddness::quantize_activations(fresh,
                                            f.stage0.activation_scale());
    return f;
  }
};

TEST(Pipeline, HandleValidatesStageChain) {
  const PipelineFixture f = PipelineFixture::make();
  const ModelRef ok =
      ModelHandle::from_stages("mlp", 1, {&f.stage0, &f.stage1});
  EXPECT_TRUE(ok->is_pipeline());
  EXPECT_EQ(ok->num_stages(), 2u);
  EXPECT_EQ(ok->cols(), f.pool.cols);
  EXPECT_EQ(ok->nout(), 12u);
  // stage1 -> stage0 does not chain (12 outs vs 36 dims).
  EXPECT_THROW(
      ModelHandle::from_stages("bad", 1, {&f.stage1, &f.stage0}),
      CheckError);
}

TEST(Pipeline, AllBackendsMatchReferenceApplyBitExact) {
  const PipelineFixture f = PipelineFixture::make();
  const ModelRef model =
      ModelHandle::from_stages("mlp", 1, {&f.stage0, &f.stage1});
  const std::vector<std::int16_t> want =
      pipeline_reference_apply(*model, f.pool);
  ASSERT_EQ(want.size(), f.pool.rows * 12);

  for (const Backend backend :
       {Backend::kKernel, Backend::kSimulate, Backend::kDevicePaced}) {
    EngineOptions opts;
    opts.backend = backend;
    opts.accel.ns = 4;
    opts.accel.ndec = 8;
    opts.device_ns_per_token = 10.0;
    const auto eng = make_engine(opts);
    std::vector<std::int16_t> out;
    eng->run_batch(*model, f.pool, out);
    EXPECT_EQ(out, want) << "pipeline on " << to_string(backend)
                         << " diverged from the reference";
  }
}

TEST(Pipeline, BlobRoundTripPreservesEveryStage) {
  const PipelineFixture f = PipelineFixture::make();
  const ModelRef model =
      ModelHandle::from_stages("mlp", 1, {&f.stage0, &f.stage1});
  const ModelRef back = ModelHandle::from_blob("mlp", 2, model->blob());
  EXPECT_EQ(back->num_stages(), 2u);
  EXPECT_EQ(pipeline_reference_apply(*back, f.pool),
            pipeline_reference_apply(*model, f.pool));

  // Registry round trip carries pipelines too.
  ModelRegistry reg;
  EXPECT_EQ(reg.register_pipeline("mlp", {&f.stage0, &f.stage1}), 1u);
  std::ostringstream os;
  reg.save(os);
  ModelRegistry loaded;
  std::istringstream is(os.str());
  loaded.load(is);
  EXPECT_EQ(pipeline_reference_apply(*loaded.resolve("mlp"), f.pool),
            pipeline_reference_apply(*model, f.pool));
}

TEST(Pipeline, StageHandoffRejectsShapeMismatch) {
  const PipelineFixture f = PipelineFixture::make();
  const std::vector<std::int16_t> acc(f.pool.rows * 12, 1);
  EXPECT_THROW(stage_handoff(f.stage1, f.stage1, acc, f.pool.rows),
               CheckError);
}

TEST(Pipeline, FusedEngineOptionMatchesUnfusedBitExact) {
  // EngineOptions::fused_pipeline only chooses whether interior stage
  // boundaries run in-register or materialize — never the bits.
  const PipelineFixture f = PipelineFixture::make();
  const ModelRef model =
      ModelHandle::from_stages("mlp", 1, {&f.stage0, &f.stage1});
  const std::vector<std::int16_t> want =
      pipeline_reference_apply(*model, f.pool);
  for (const bool fused : {true, false}) {
    EngineOptions opts;
    opts.backend = Backend::kKernel;
    opts.fused_pipeline = fused;
    const auto eng = make_engine(opts);
    std::vector<std::int16_t> out;
    eng->run_batch(*model, f.pool, out);
    EXPECT_EQ(out, want) << (fused ? "fused" : "unfused")
                         << " kernel walk diverged";
  }
}

TEST(Pipeline, RegisterSegmentsCollapsesChainsAndSplitsAtBreaks) {
  const PipelineFixture f = PipelineFixture::make();
  // stage0 (36 -> 36) chains into stage1 (36 -> 12); a second stage0
  // cannot consume 12 outputs, so the run breaks there.
  ModelRegistry reg;
  const std::vector<std::string> names = register_segments(
      reg, "mlp", {&f.stage0, &f.stage1, &f.stage0});
  EXPECT_EQ(names,
            (std::vector<std::string>{"mlp.seg0", "mlp.seg1"}));

  const ModelRef seg0 = reg.resolve("mlp.seg0");
  EXPECT_TRUE(seg0->is_pipeline());
  EXPECT_EQ(seg0->num_stages(), 2u);
  const ModelRef seg1 = reg.resolve("mlp.seg1");
  EXPECT_FALSE(seg1->is_pipeline());

  // The collapsed segment serves the chained pair bit-exactly through
  // its fused plan.
  const auto eng = make_engine(EngineOptions{});
  std::vector<std::int16_t> out;
  eng->run_batch(*seg0, f.pool, out);
  EXPECT_EQ(out, pipeline_reference_apply(*seg0, f.pool));
}

// ------------------------------------------- MaddnessNetwork export

TEST(Pipeline, RegisterNetworkLayersServesConvPatchesBitExact) {
  Rng rng(1);
  nn::Dataset data = nn::make_synthetic_dataset(rng, 60, 8, 8);
  nn::Network net;
  net.emplace<nn::Conv2d>(3, 8, 3, 1, 1, rng);
  net.emplace<nn::BatchNorm2d>(8);
  net.emplace<nn::ReLU>();
  net.emplace<nn::Conv2d>(8, 8, 3, 1, 1, rng);
  net.emplace<nn::BatchNorm2d>(8);
  net.emplace<nn::ReLU>();
  net.emplace<nn::Flatten>();
  net.emplace<nn::Linear>(8 * 8 * 8, 10, rng);
  nn::TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 20;
  Rng trng(55);
  nn::train(net, data, tc, trng);

  std::vector<std::size_t> idx{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  const nn::Tensor calib = nn::take_batch(data, idx).first;
  const nn::MaddnessNetwork mnet(net, calib);
  ASSERT_EQ(mnet.num_substituted_convs(), 2u);

  ModelRegistry reg;
  const std::vector<std::string> names =
      register_network_layers(reg, "cnn", mnet);
  EXPECT_EQ(names, (std::vector<std::string>{"cnn.conv0", "cnn.conv1"}));

  // Each registered layer serves its conv's im2col patch matmul
  // bit-exactly: the served CNN-feature workload.
  for (std::size_t i = 0; i < names.size(); ++i) {
    const ModelRef layer = reg.resolve(names[i]);
    const maddness::Amm& amm = mnet.substituted_conv(i).amm();
    EXPECT_EQ(layer->cols(),
              static_cast<std::size_t>(amm.cfg().total_dims()));
    // A deterministic synthetic patch batch through both paths.
    maddness::QuantizedActivations patches;
    patches.rows = 24;
    patches.cols = layer->cols();
    patches.scale = amm.activation_scale();
    patches.codes.resize(patches.rows * patches.cols);
    for (std::size_t k = 0; k < patches.codes.size(); ++k)
      patches.codes[k] = static_cast<std::uint8_t>((k * 31 + 7) & 0xFF);
    const auto eng = make_engine(EngineOptions{});
    std::vector<std::int16_t> out;
    eng->run_batch(*layer, patches, out);
    EXPECT_EQ(out, amm.apply_int16(patches))
        << names[i] << " diverged from the network's operator";
  }

  // register_network on the same net: 3x3 conv shapes never chain
  // (conv1 consumes 9*8 patch columns, conv0 produced 8 channels), so
  // each layer becomes its own single-stage segment.
  ModelRegistry seg_reg;
  EXPECT_EQ(register_network(seg_reg, "cnn", mnet),
            (std::vector<std::string>{"cnn.seg0", "cnn.seg1"}));
  EXPECT_FALSE(seg_reg.resolve("cnn.seg0")->is_pipeline());
  EXPECT_FALSE(seg_reg.resolve("cnn.seg1")->is_pipeline());
}

}  // namespace
}  // namespace ssma::engine
