// Unit tests for the utility substrate: RNG determinism and
// distributions, streaming statistics, matrices/GEMM, Cholesky/ridge,
// fixed-point helpers, table rendering.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/check.hpp"
#include "util/fixed_point.hpp"
#include "util/linalg.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/wire.hpp"

namespace ssma {
namespace {

TEST(Check, ThrowsWithMessage) {
  EXPECT_THROW(SSMA_CHECK(false), CheckError);
  try {
    SSMA_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("custom 42"), std::string::npos);
  }
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRangeAndCoversValues) {
  Rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.next_below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng r(9);
  bool lo = false, hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = r.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    lo |= (v == -3);
    hi |= (v == 3);
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, GaussianMoments) {
  Rng r(13);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(r.next_gaussian());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, PermutationIsPermutation) {
  Rng r(17);
  auto p = r.permutation(50);
  std::set<std::size_t> s(p.begin(), p.end());
  EXPECT_EQ(s.size(), 50u);
  EXPECT_EQ(*s.begin(), 0u);
  EXPECT_EQ(*s.rbegin(), 49u);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(21);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 1.25, 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng r(31);
  RunningStats whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = r.next_double(-5, 5);
    whole.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
}

TEST(SampleSet, PercentilesExact) {
  SampleSet s;
  for (int i = 100; i >= 1; --i) s.add(i);  // 1..100
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);   // clamps to bin 0
  h.add(0.5);
  h.add(9.99);
  h.add(25.0);   // clamps to last bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bins()[0], 2u);
  EXPECT_EQ(h.bins()[9], 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(9), 10.0);
}

TEST(Matrix, GemmMatchesNaive) {
  Rng r(41);
  Matrix a(17, 23), b(23, 9);
  for (std::size_t i = 0; i < a.size(); ++i)
    a.data()[i] = static_cast<float>(r.next_double(-1, 1));
  for (std::size_t i = 0; i < b.size(); ++i)
    b.data()[i] = static_cast<float>(r.next_double(-1, 1));
  Matrix c1, c2;
  gemm(a, b, c1);
  gemm_naive(a, b, c2);
  EXPECT_LT(frobenius_diff(c1, c2), 1e-4);
}

TEST(Matrix, GemmBtAndAtMatchNaive) {
  Rng r(43);
  Matrix a(8, 12), b(12, 5);
  for (std::size_t i = 0; i < a.size(); ++i)
    a.data()[i] = static_cast<float>(r.next_double(-1, 1));
  for (std::size_t i = 0; i < b.size(); ++i)
    b.data()[i] = static_cast<float>(r.next_double(-1, 1));
  Matrix ref;
  gemm_naive(a, b, ref);

  Matrix c1;
  gemm_bt(a, b.transposed(), c1);
  EXPECT_LT(frobenius_diff(c1, ref), 1e-4);

  Matrix c2;
  gemm_at(a.transposed(), b, c2);
  EXPECT_LT(frobenius_diff(c2, ref), 1e-4);
}

TEST(Matrix, AtBoundsChecked) {
  Matrix m(2, 3);
  EXPECT_THROW(m.at(2, 0), CheckError);
  EXPECT_THROW(m.at(0, 3), CheckError);
}

TEST(Linalg, CholeskySolvesSpdSystem) {
  // A = L L^T with a known L.
  Matrix a(3, 3);
  const float vals[9] = {4, 2, 2, 2, 5, 3, 2, 3, 6};
  for (int i = 0; i < 9; ++i) a.data()[i] = vals[i];
  Matrix b(3, 1);
  b(0, 0) = 8;
  b(1, 0) = 10;
  b(2, 0) = 11;
  Matrix x = spd_solve(a, b);
  // Verify A x == b.
  for (int i = 0; i < 3; ++i) {
    double acc = 0;
    for (int j = 0; j < 3; ++j) acc += a(i, j) * x(j, 0);
    EXPECT_NEAR(acc, b(i, 0), 1e-3);
  }
}

TEST(Linalg, CholeskyRejectsIndefinite) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 1;  // eigenvalues 3, -1
  Matrix c = a;
  EXPECT_FALSE(cholesky_lower(c));
}

TEST(Linalg, RidgeRecoversCoefficients) {
  // y = 2*x0 - 3*x1, no noise, tiny lambda -> near-exact recovery.
  Rng r(47);
  Matrix g(100, 2), y(100, 1);
  for (int i = 0; i < 100; ++i) {
    g(i, 0) = static_cast<float>(r.next_double(-1, 1));
    g(i, 1) = static_cast<float>(r.next_double(-1, 1));
    y(i, 0) = 2.0f * g(i, 0) - 3.0f * g(i, 1);
  }
  Matrix p = ridge_regression(g, y, 1e-6);
  EXPECT_NEAR(p(0, 0), 2.0, 1e-2);
  EXPECT_NEAR(p(1, 0), -3.0, 1e-2);
}

TEST(FixedPoint, SaturateInt8) {
  EXPECT_EQ(saturate_int8(300), 127);
  EXPECT_EQ(saturate_int8(-300), -127);
  EXPECT_EQ(saturate_int8(-300, /*symmetric=*/false), -128);
  EXPECT_EQ(saturate_int8(5), 5);
}

TEST(FixedPoint, RoundHalfAway) {
  EXPECT_EQ(round_half_away(2.5), 3);
  EXPECT_EQ(round_half_away(-2.5), -3);
  EXPECT_EQ(round_half_away(2.4), 2);
  EXPECT_EQ(round_half_away(-2.4), -2);
}

TEST(FixedPoint, AddWrap16) {
  EXPECT_EQ(add_wrap16(32767, 1), -32768);
  EXPECT_EQ(add_wrap16(-32768, -1), 32767);
  EXPECT_EQ(add_wrap16(100, -50), 50);
}

TEST(FixedPoint, Popcount16) {
  EXPECT_EQ(popcount16(0x0000), 0);
  EXPECT_EQ(popcount16(0xFFFF), 16);
  EXPECT_EQ(popcount16(0xA5A5), 8);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", TextTable::num(1.2345, 2)});
  t.add_row({"b", TextTable::pct(0.5)});
  const std::string out = t.render();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.23"), std::string::npos);
  EXPECT_NE(out.find("50.0%"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one-cell"}), CheckError);
}

// Sink that accepts `budget` bytes, then reports failure — the
// full-disk / closed-socket shape a wire writer must not paper over.
class FailingStreambuf : public std::streambuf {
 public:
  explicit FailingStreambuf(std::size_t budget) : budget_(budget) {}
  std::size_t written() const { return written_; }

 protected:
  int_type overflow(int_type ch) override {
    if (written_ >= budget_) return traits_type::eof();
    ++written_;
    return ch;
  }

 private:
  std::size_t budget_;
  std::size_t written_ = 0;
};

// Regression: wire::put_* used to swallow write failures — a full disk
// or closed socket only surfaced as a CRC mismatch when the blob was
// read back, far from the fault. The helpers must now throw at the
// write site.
TEST(Wire, PutFailsLoudlyWhenSinkRejectsBytes) {
  FailingStreambuf sink(/*budget=*/2);  // dies mid-u32
  std::ostream os(&sink);
  EXPECT_THROW(wire::put_u32(os, 0xDEADBEEFu), CheckError);
  EXPECT_EQ(sink.written(), 2u);  // failed at the third byte, loudly

  FailingStreambuf sink64(/*budget=*/5);  // dies mid-u64
  std::ostream os64(&sink64);
  EXPECT_THROW(wire::put_u64(os64, 1), CheckError);

  FailingStreambuf dead(/*budget=*/0);  // first byte already fails
  std::ostream osd(&dead);
  EXPECT_THROW(wire::put_u8(osd, 7), CheckError);
}

TEST(Wire, PutGetRoundTripStillWorks) {
  std::stringstream ss;
  wire::put_u8(ss, 0xAB);
  wire::put_u32(ss, 0x01020304u);
  wire::put_u64(ss, 0x0102030405060708ull);
  wire::put_f32(ss, 1.5f);
  wire::put_f64(ss, -2.25);
  EXPECT_EQ(wire::get_u8(ss), 0xAB);
  EXPECT_EQ(wire::get_u32(ss), 0x01020304u);
  EXPECT_EQ(wire::get_u64(ss), 0x0102030405060708ull);
  EXPECT_EQ(wire::get_f32(ss), 1.5f);
  EXPECT_EQ(wire::get_f64(ss), -2.25);
}

}  // namespace
}  // namespace ssma
