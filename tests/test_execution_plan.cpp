// Tests for the compiled ExecutionPlan: compile-time metadata (stage
// chain, fused-epilogue constants, bytes-avoided accounting), fused
// run_plan bit-exactness vs pipeline_reference_apply on every available
// LUT tier across ragged row counts and a >=3-stage chain, fused ==
// unfused equivalence, the zero-allocation steady state of PlanScratch,
// and the fused epilogue's rounding boundary under adversarial scales
// (exact half-integer ties, denormal next_scale fallback, saturating
// extremes) driven through apply_lut_fused directly.
#include <gtest/gtest.h>

#include <cfloat>
#include <cstdint>
#include <limits>
#include <vector>

#include "engine/execution_plan.hpp"
#include "engine/model_registry.hpp"
#include "engine/pipeline.hpp"
#include "maddness/lut.hpp"
#include "maddness/lut_kernel.hpp"
#include "util/rng.hpp"

namespace ssma::engine {
namespace {

using maddness::EncodedBatch;
using maddness::FusedEpilogue;
using maddness::KernelTier;
using maddness::LutBankPacked;

// Three chained dense stages (36 -> 36 -> 36 -> 12) trained the same
// way the serve path trains them: each stage calibrated on the previous
// stage's rectified dequantized output. 48 pool rows cover every ragged
// row-count prefix the SIMD tile walks care about.
struct ChainFixture {
  ModelRef model;
  maddness::QuantizedActivations pool;

  static ChainFixture make(std::uint64_t seed = 33) {
    Rng rng(seed);
    const std::size_t d0 = 4 * 9;
    Matrix calib(384, d0);
    for (std::size_t i = 0; i < calib.size(); ++i)
      calib.data()[i] = static_cast<float>(rng.next_double(0, 200));
    Matrix w0(d0, 36);
    for (std::size_t i = 0; i < w0.size(); ++i)
      w0.data()[i] = static_cast<float>(rng.next_gaussian(0, 0.08));
    Matrix w1(36, 36);
    for (std::size_t i = 0; i < w1.size(); ++i)
      w1.data()[i] = static_cast<float>(rng.next_gaussian(0, 0.08));
    Matrix w2(36, 12);
    for (std::size_t i = 0; i < w2.size(); ++i)
      w2.data()[i] = static_cast<float>(rng.next_gaussian(0, 0.08));

    maddness::Config cfg;
    cfg.ncodebooks = 4;
    Matrix mid0;
    Matrix mid1;
    std::vector<maddness::Amm> stages;
    stages.reserve(3);
    stages.push_back(train_chained_stage(cfg, calib, w0, &mid0));
    stages.push_back(train_chained_stage(cfg, mid0, w1, &mid1));
    stages.push_back(train_chained_stage(cfg, mid1, w2, nullptr));

    ChainFixture f;
    f.model = ModelHandle::from_stages(
        "mlp", 1, {&stages[0], &stages[1], &stages[2]});
    Matrix fresh(48, d0);
    for (std::size_t i = 0; i < fresh.size(); ++i)
      fresh.data()[i] = static_cast<float>(rng.next_double(0, 200));
    f.pool = maddness::quantize_activations(
        fresh, f.model->stage(0).activation_scale());
    return f;
  }
};

maddness::QuantizedActivations prefix(
    const maddness::QuantizedActivations& q, std::size_t rows) {
  maddness::QuantizedActivations sub;
  sub.rows = rows;
  sub.cols = q.cols;
  sub.scale = q.scale;
  sub.codes.assign(q.codes.begin(),
                   q.codes.begin() + static_cast<std::ptrdiff_t>(
                                         rows * q.cols));
  return sub;
}

// ---------------------------------------------------------- compile()

TEST(ExecutionPlan, CompileCachesChainAndEpilogueConstants) {
  const ChainFixture f = ChainFixture::make();
  const ExecutionPlan& plan = f.model->plan();
  ASSERT_EQ(plan.num_stages(), 3u);
  EXPECT_TRUE(plan.is_pipeline());
  for (std::size_t s = 0; s < 3; ++s)
    EXPECT_EQ(plan.stage(s).amm, &f.model->stage(s));
  // Each interior epilogue carries the CONSUMING stage's activation
  // scale — the requantization constant of the fused handoff.
  EXPECT_EQ(plan.stage(0).epilogue.next_scale,
            f.model->stage(1).activation_scale());
  EXPECT_EQ(plan.stage(1).epilogue.next_scale,
            f.model->stage(2).activation_scale());
}

TEST(ExecutionPlan, BytesAvoidedCountsInteriorBoundariesOnly) {
  const ChainFixture f = ChainFixture::make();
  // Per interior boundary the materializing walk writes + reads the
  // int16 accumulator (4 B/elem) and writes + reads the dequantized
  // float (8 B/elem): 12 bytes per element, nout elements per row.
  // Interior nouts here are both 36; the final stage materializes in
  // both walks and is not counted.
  EXPECT_EQ(f.model->plan().fused_bytes_avoided_per_row(),
            12u * (36 + 36));

  // A single-stage plan has no interior boundary and no fused traffic.
  const ModelRef single =
      ModelHandle::from_amm("one", 1, f.model->stage(0));
  EXPECT_EQ(single->plan().num_stages(), 1u);
  EXPECT_FALSE(single->plan().is_pipeline());
  EXPECT_EQ(single->plan().fused_bytes_avoided_per_row(), 0u);
}

// -------------------------------------------- run_plan bit-exactness

TEST(ExecutionPlan, FusedMatchesReferenceEveryTierEveryRaggedRowCount) {
  const ChainFixture f = ChainFixture::make();
  // Row counts straddling both SIMD row tiles (16 for SSSE3, 32 for
  // AVX2) and their scalar tails, plus the degenerate single row.
  const std::size_t kRows[] = {1, 2, 3, 5, 7, 8, 15, 16, 17,
                               31, 32, 33, 47, 48};
  for (const KernelTier tier :
       {KernelTier::kScalar, KernelTier::kSsse3, KernelTier::kAvx2}) {
    if (!maddness::kernel_tier_available(tier)) continue;
    PlanScratch scratch;
    std::vector<std::int16_t> fused_out;
    std::vector<std::int16_t> unfused_out;
    for (const std::size_t rows : kRows) {
      const maddness::QuantizedActivations sub = prefix(f.pool, rows);
      const std::vector<std::int16_t> want =
          pipeline_reference_apply(*f.model, sub);
      ASSERT_EQ(want.size(), rows * 12);
      run_plan(f.model->plan(), sub, scratch, fused_out,
               /*fused=*/true, tier);
      EXPECT_EQ(fused_out, want)
          << "fused plan diverged on "
          << maddness::kernel_tier_name(tier) << " rows=" << rows;
      run_plan(f.model->plan(), sub, scratch, unfused_out,
               /*fused=*/false, tier);
      EXPECT_EQ(unfused_out, want)
          << "unfused plan diverged on "
          << maddness::kernel_tier_name(tier) << " rows=" << rows;
    }
  }
}

TEST(ExecutionPlan, SingleStagePlanMatchesAmmApply) {
  const ChainFixture f = ChainFixture::make();
  const ModelRef single =
      ModelHandle::from_amm("one", 1, f.model->stage(0));
  const std::vector<std::int16_t> want =
      single->amm().apply_int16(f.pool);
  PlanScratch scratch;
  std::vector<std::int16_t> out;
  for (const bool fused : {true, false}) {
    run_plan(single->plan(), f.pool, scratch, out, fused);
    EXPECT_EQ(out, want);
  }
}

// ----------------------------------------------- zero-alloc steady state

TEST(ExecutionPlan, SteadyStateReusesEveryScratchBuffer) {
  const ChainFixture f = ChainFixture::make();
  PlanScratch scratch;
  std::vector<std::int16_t> out;
  // Warm-up run at the largest batch establishes every capacity.
  run_plan(f.model->plan(), f.pool, scratch, out, /*fused=*/true);

  const std::uint8_t* enc_ptr = scratch.enc.codes.data();
  const std::size_t enc_cap = scratch.enc.codes.capacity();
  const std::uint8_t* inter_ptr = scratch.inter.codes.data();
  const std::size_t inter_cap = scratch.inter.codes.capacity();
  const std::int16_t* out_ptr = out.data();
  const std::size_t out_cap = out.capacity();

  // Same-shape and smaller batches must not move or grow any buffer:
  // the worker-shard contract is zero allocations at steady state.
  for (const std::size_t rows : {48u, 17u, 1u, 48u}) {
    run_plan(f.model->plan(), prefix(f.pool, rows), scratch, out,
             /*fused=*/true);
    EXPECT_EQ(scratch.enc.codes.data(), enc_ptr) << "rows=" << rows;
    EXPECT_EQ(scratch.enc.codes.capacity(), enc_cap) << "rows=" << rows;
    EXPECT_EQ(scratch.inter.codes.data(), inter_ptr) << "rows=" << rows;
    EXPECT_EQ(scratch.inter.codes.capacity(), inter_cap)
        << "rows=" << rows;
    EXPECT_EQ(out.data(), out_ptr) << "rows=" << rows;
    EXPECT_EQ(out.capacity(), out_cap) << "rows=" << rows;
  }
}

// ------------------------------------- epilogue rounding boundaries

// Hand-built pshufb-shaped bank with full-range int8 entries and
// power-of-two scales: with scales[o] = 1.0 every dequantized value is
// an exact integer, so next_scale = 2.0 makes every odd accumulator an
// EXACT half-integer tie — the round-half-away boundary the SIMD
// epilogue's exact-comparison fixup must get right.
struct AdversarialBank {
  LutBankPacked lut;
  EncodedBatch enc;
  std::size_t rows = 0;

  static AdversarialBank make(bool per_column, std::uint64_t seed) {
    AdversarialBank a;
    a.rows = 37;  // ragged vs both SIMD row tiles
    a.lut.ncodebooks = 4;
    a.lut.nprotos = 16;
    a.lut.nout = 20;  // ragged vs the 16-output tile
    a.lut.per_column_scale = per_column;
    Rng rng(seed);
    a.lut.q.resize(static_cast<std::size_t>(4) * 20 * 16);
    for (auto& v : a.lut.q)
      v = static_cast<std::int8_t>(rng.next_double(-128, 128));
    if (per_column) {
      // Powers of two keep y = acc * scale exact in float.
      const float pows[] = {0.25f, 0.5f, 1.0f, 2.0f, 4.0f};
      a.lut.scales.resize(20);
      for (int o = 0; o < 20; ++o) a.lut.scales[o] = pows[o % 5];
    } else {
      a.lut.scales = {1.0f};
    }
    a.enc.rows = a.rows;
    a.enc.ncodebooks = 4;
    a.enc.codes.resize(a.rows * 4);
    for (auto& c : a.enc.codes)
      c = static_cast<std::uint8_t>(rng.next_double(0, 16));
    return a;
  }

  std::vector<std::uint8_t> expected(float next_scale) const {
    const std::vector<std::int16_t> acc =
        apply_lut_packed(lut, enc, KernelTier::kScalar);
    std::vector<std::uint8_t> want(acc.size());
    for (std::size_t i = 0; i < acc.size(); ++i)
      want[i] = maddness::detail::fused_requantize(
          acc[i], maddness::detail::packed_scale(
                      lut, static_cast<int>(i % 20)),
          next_scale);
    return want;
  }
};

TEST(FusedEpilogue, ExactHalfIntegerTiesMatchReferenceOnEveryTier) {
  // next_scale = 2 with unit LUT scales: every odd accumulator sits on
  // an exact .5 boundary. next_scale = 0.25 with power-of-two column
  // scales: quotients are exact multiples of 1, 2, 4, 8 or 16 — dense
  // tie coverage plus both saturation edges from the full-range q.
  const AdversarialBank uniform = AdversarialBank::make(false, 101);
  const AdversarialBank columns = AdversarialBank::make(true, 202);
  const struct {
    const AdversarialBank* bank;
    float next_scale;
  } kCases[] = {
      {&uniform, 2.0f},      {&uniform, 0.5f},  {&columns, 0.25f},
      {&columns, 1.0f},      {&uniform, 3.0f},  // non-power-of-two
      {&uniform, 1e30f},     // everything rounds to 0
      {&uniform, 1e-30f},    // everything saturates (or clamps at 0)
  };
  for (const auto& c : kCases) {
    const std::vector<std::uint8_t> want = c.bank->expected(c.next_scale);
    const FusedEpilogue ep{c.next_scale};
    for (const KernelTier tier :
         {KernelTier::kScalar, KernelTier::kSsse3, KernelTier::kAvx2}) {
      if (!maddness::kernel_tier_available(tier)) continue;
      std::vector<std::uint8_t> got(want.size(), 0xAB);
      apply_lut_fused(c.bank->lut, c.bank->enc, ep, tier, got.data());
      EXPECT_EQ(got, want)
          << maddness::kernel_tier_name(tier)
          << " next_scale=" << c.next_scale
          << " per_column=" << c.bank->lut.per_column_scale;
    }
  }
}

TEST(FusedEpilogue, DenormalNextScaleFallsBackToReferenceMath) {
  // The SIMD epilogues require fl(1/next_scale) at full float
  // precision; a denormal next_scale must re-route to the scalar
  // divide-based path and still match the reference element math.
  const AdversarialBank bank = AdversarialBank::make(false, 303);
  const float denormal = std::numeric_limits<float>::min() / 4.0f;
  ASSERT_GT(denormal, 0.0f);
  ASSERT_LT(denormal, std::numeric_limits<float>::min());
  const std::vector<std::uint8_t> want = bank.expected(denormal);
  const FusedEpilogue ep{denormal};
  for (const KernelTier tier :
       {KernelTier::kScalar, KernelTier::kSsse3, KernelTier::kAvx2}) {
    if (!maddness::kernel_tier_available(tier)) continue;
    std::vector<std::uint8_t> got(want.size(), 0xAB);
    apply_lut_fused(bank.lut, bank.enc, ep, tier, got.data());
    EXPECT_EQ(got, want) << maddness::kernel_tier_name(tier);
  }
}

}  // namespace
}  // namespace ssma::engine
