// Pipeline-level simulator tests: bit-exact functional equivalence
// against the software MADDNESS decode, steady-state timing against the
// calibrated analytic model, best/worst-case latency envelopes, energy
// agreement, self-timed robustness under local variation, and the
// clocked baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "maddness/amm.hpp"
#include "ppa/analytic_perf.hpp"
#include "sim/clocked_macro.hpp"
#include "sim/macro.hpp"
#include "sim/monte_carlo.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ssma::sim {
namespace {

// ---------------------------------------------------------------- helpers

/// Random trees with thresholds spread over the operand space.
std::vector<maddness::HashTree> random_trees(Rng& rng, int ns) {
  std::vector<maddness::HashTree> trees(ns);
  for (auto& t : trees) {
    for (int l = 0; l < 4; ++l) t.set_split_dim(l, rng.next_int(0, 8));
    for (int l = 0; l < 4; ++l)
      for (int n = 0; n < (1 << l); ++n)
        t.set_threshold(l, n,
                        static_cast<std::uint8_t>(rng.next_int(1, 254)));
  }
  return trees;
}

std::vector<std::vector<std::array<std::int8_t, 16>>> random_luts(Rng& rng,
                                                                  int ns,
                                                                  int ndec) {
  std::vector<std::vector<std::array<std::int8_t, 16>>> luts(
      ns, std::vector<std::array<std::int8_t, 16>>(ndec));
  for (auto& block : luts)
    for (auto& table : block)
      for (auto& e : table)
        e = static_cast<std::int8_t>(rng.next_int(-127, 127));
  return luts;
}

std::vector<std::vector<Subvec>> random_inputs(Rng& rng, int ntokens,
                                               int ns) {
  std::vector<std::vector<Subvec>> in(ntokens, std::vector<Subvec>(ns));
  for (auto& tok : in)
    for (auto& sv : tok)
      for (auto& v : sv) v = static_cast<std::uint8_t>(rng.next_int(0, 255));
  return in;
}

/// Trees/inputs forcing every DLC to resolve at depth 1 (best case) or
/// depth 8 (worst case): thresholds 0x80 everywhere; x=0x00 differs at the
/// MSB, x=0x80 is equal (full ripple).
std::vector<maddness::HashTree> uniform_trees(int ns) {
  std::vector<maddness::HashTree> trees(ns);
  for (auto& t : trees) {
    for (int l = 0; l < 4; ++l) t.set_split_dim(l, l);
    for (int l = 0; l < 4; ++l)
      for (int n = 0; n < (1 << l); ++n) t.set_threshold(l, n, 0x80);
  }
  return trees;
}

std::vector<std::vector<Subvec>> constant_inputs(int ntokens, int ns,
                                                 std::uint8_t value) {
  Subvec sv;
  sv.fill(value);
  return std::vector<std::vector<Subvec>>(ntokens,
                                          std::vector<Subvec>(ns, sv));
}

MacroConfig small_cfg(int ndec = 4, int ns = 4) {
  MacroConfig cfg;
  cfg.ndec = ndec;
  cfg.ns = ns;
  cfg.op = ppa::nominal_05v();
  return cfg;
}

// ------------------------------------------------------- functional tests

struct ShapeParam {
  int ndec;
  int ns;
};

class MacroShapes : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(MacroShapes, BitExactAgainstReferenceModel) {
  const auto p = GetParam();
  Rng rng(100 + p.ndec * 37 + p.ns);
  Macro macro(small_cfg(p.ndec, p.ns));
  const auto trees = random_trees(rng, p.ns);
  const auto luts = random_luts(rng, p.ns, p.ndec);
  std::vector<std::int16_t> bias(p.ndec);
  for (auto& b : bias) b = static_cast<std::int16_t>(rng.next_int(-500, 500));
  macro.program(trees, luts, bias);

  const auto inputs = random_inputs(rng, 12, p.ns);
  const auto ref = macro.reference_outputs(inputs);
  const auto res = macro.run(inputs);
  ASSERT_EQ(res.outputs.size(), ref.size());
  for (std::size_t k = 0; k < ref.size(); ++k)
    for (int d = 0; d < p.ndec; ++d)
      EXPECT_EQ(res.outputs[k][d], ref[k][d])
          << "token " << k << " lane " << d;
}

INSTANTIATE_TEST_SUITE_P(Shapes, MacroShapes,
                         ::testing::Values(ShapeParam{1, 1}, ShapeParam{1, 4},
                                           ShapeParam{4, 1}, ShapeParam{2, 3},
                                           ShapeParam{4, 4}, ShapeParam{8, 2},
                                           ShapeParam{16, 8},
                                           ShapeParam{3, 5}));

TEST(Macro, MatchesSoftwareAmmBitExact) {
  // The full contract: the simulated circuit reproduces
  // maddness::Amm::apply_int16 exactly (same trees, LUTs, inputs).
  Rng rng(7);
  const int ns = 4, ndec = 6;
  maddness::Config cfg;
  cfg.ncodebooks = ns;

  Matrix x(300, 36);
  for (std::size_t i = 0; i < x.size(); ++i)
    x.data()[i] = static_cast<float>(rng.next_double(0, 200));
  Matrix w(36, ndec);
  for (std::size_t i = 0; i < w.size(); ++i)
    w.data()[i] = static_cast<float>(rng.next_gaussian(0, 0.05));
  const maddness::Amm amm = maddness::Amm::train(cfg, x, w);

  // Program the macro from the trained operator.
  Macro macro(small_cfg(ndec, ns));
  std::vector<std::vector<std::array<std::int8_t, 16>>> luts(
      ns, std::vector<std::array<std::int8_t, 16>>(ndec));
  for (int b = 0; b < ns; ++b)
    for (int d = 0; d < ndec; ++d) {
      const auto table = amm.lut().table(b, d);
      for (int k = 0; k < 16; ++k) luts[b][d][k] = table[k];
    }
  macro.program(amm.trees(), luts, std::vector<std::int16_t>(ndec, 0));

  // Quantized activations -> per-block subvectors.
  const auto q =
      maddness::quantize_activations(x, amm.activation_scale());
  const int ntok = 20;
  std::vector<std::vector<Subvec>> inputs(ntok, std::vector<Subvec>(ns));
  for (int k = 0; k < ntok; ++k)
    for (int b = 0; b < ns; ++b)
      for (int j = 0; j < 9; ++j)
        inputs[k][b][j] = q.at(k, static_cast<std::size_t>(b) * 9 + j);

  const auto sw = amm.apply_int16(q);
  const auto hw = macro.run(inputs);
  for (int k = 0; k < ntok; ++k)
    for (int d = 0; d < ndec; ++d)
      EXPECT_EQ(hw.outputs[k][d], sw[static_cast<std::size_t>(k) * ndec + d]);
}

TEST(Macro, BiasInjectionAddsToAllLanes) {
  Rng rng(17);
  Macro m0(small_cfg(2, 2));
  Macro m1(small_cfg(2, 2));
  const auto trees = random_trees(rng, 2);
  const auto luts = random_luts(rng, 2, 2);
  m0.program(trees, luts, {0, 0});
  m1.program(trees, luts, {100, -200});
  const auto inputs = random_inputs(rng, 5, 2);
  const auto r0 = m0.run(inputs);
  const auto r1 = m1.run(inputs);
  for (int k = 0; k < 5; ++k) {
    EXPECT_EQ(r1.outputs[k][0],
              static_cast<std::int16_t>(r0.outputs[k][0] + 100));
    EXPECT_EQ(r1.outputs[k][1],
              static_cast<std::int16_t>(r0.outputs[k][1] - 200));
  }
}

TEST(Macro, DeterministicAcrossRuns) {
  Rng rng(23);
  const auto trees = random_trees(rng, 3);
  const auto luts = random_luts(rng, 3, 4);
  const auto inputs = random_inputs(rng, 10, 3);

  auto run_once = [&] {
    Macro m(small_cfg(4, 3));
    m.program(trees, luts, {0, 0, 0, 0});
    return m.run(inputs);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_DOUBLE_EQ(a.stats.duration_ns, b.stats.duration_ns);
  EXPECT_EQ(a.stats.events, b.stats.events);
  EXPECT_NEAR(a.stats.ledger.total_fj(), b.stats.ledger.total_fj(), 1e-9);
}

TEST(Macro, ProgramValidatesShapes) {
  Macro macro(small_cfg(2, 2));
  Rng rng(29);
  EXPECT_THROW(macro.program(random_trees(rng, 3), random_luts(rng, 2, 2),
                             {0, 0}),
               CheckError);
  EXPECT_THROW(macro.program(random_trees(rng, 2), random_luts(rng, 2, 2),
                             {0}),
               CheckError);
  EXPECT_THROW(macro.run({}), CheckError);  // must program first
}

// ----------------------------------------------------------- timing tests

TEST(Macro, BestCaseIntervalMatchesAnalytic) {
  const int ndec = 16, ns = 4;
  Macro macro(small_cfg(ndec, ns));
  macro.program(uniform_trees(ns), [&] {
    Rng rng(31);
    return random_luts(rng, ns, ndec);
  }(), std::vector<std::int16_t>(ndec, 0));
  const auto res = macro.run(constant_inputs(24, ns, 0x00));  // depth 1

  ppa::AnalyticPerf perf({ndec, ns}, ppa::nominal_05v());
  const double expect = perf.block_latency_ns(1);  // 17.8 ns
  EXPECT_NEAR(res.stats.output_interval_ns.mean(), expect, 0.05);
  EXPECT_NEAR(res.stats.output_interval_ns.max(), expect, 0.05);
}

TEST(Macro, WorstCaseIntervalMatchesAnalytic) {
  const int ndec = 16, ns = 4;
  Macro macro(small_cfg(ndec, ns));
  macro.program(uniform_trees(ns), [&] {
    Rng rng(37);
    return random_luts(rng, ns, ndec);
  }(), std::vector<std::int16_t>(ndec, 0));
  const auto res = macro.run(constant_inputs(24, ns, 0x80));  // equality

  ppa::AnalyticPerf perf({ndec, ns}, ppa::nominal_05v());
  const double expect = perf.block_latency_ns(8);  // 32.1 ns
  EXPECT_NEAR(res.stats.output_interval_ns.mean(), expect, 0.05);
}

TEST(Macro, Table2FrequenciesFromSimulation) {
  // The flagship config's best/worst token rates straight from the event
  // simulator: 56.2 / 31.2 MHz at 0.5 V (Table II).
  const int ndec = 16, ns = 32;
  for (const bool best : {true, false}) {
    Macro macro(small_cfg(ndec, ns));
    Rng rng(41);
    macro.program(uniform_trees(ns), random_luts(rng, ns, ndec),
                  std::vector<std::int16_t>(ndec, 0));
    const auto res =
        macro.run(constant_inputs(40, ns, best ? 0x00 : 0x80));
    const double freq_mhz = 1e3 / res.stats.output_interval_ns.mean();
    EXPECT_NEAR(freq_mhz, best ? 56.2 : 31.2, best ? 0.6 : 0.4);
  }
}

TEST(Macro, RandomDataIntervalBetweenEnvelopes) {
  const int ndec = 4, ns = 8;
  Macro macro(small_cfg(ndec, ns));
  Rng rng(43);
  macro.program(random_trees(rng, ns), random_luts(rng, ns, ndec),
                std::vector<std::int16_t>(ndec, 0));
  const auto res = macro.run(random_inputs(rng, 30, ns));
  ppa::AnalyticPerf perf({ndec, ns}, ppa::nominal_05v());
  EXPECT_GE(res.stats.output_interval_ns.min(),
            perf.block_latency_ns(1) - 0.05);
  EXPECT_LE(res.stats.output_interval_ns.max(),
            perf.block_latency_ns(8) + 0.05);
  // Random operands resolve high bits quickly on average: the mean sits
  // well below the worst case.
  EXPECT_LT(res.stats.output_interval_ns.mean(),
            0.8 * perf.block_latency_ns(8));
}

TEST(Macro, TokenLatencyScalesWithPipelineDepth) {
  Rng rng(47);
  auto latency = [&](int ns) {
    Macro m(small_cfg(2, ns));
    m.program(uniform_trees(ns), random_luts(rng, ns, 2), {0, 0});
    const auto res = m.run(constant_inputs(6, ns, 0x00));
    return res.stats.token_latency_ns.min();
  };
  const double l2 = latency(2);
  const double l6 = latency(6);
  // First-token latency grows ~linearly with NS.
  EXPECT_GT(l6, 2.5 * l2 / 2.0);
}

TEST(Macro, BlockLatencySamplesMatchFig7b) {
  const int ndec = 4, ns = 2;
  Macro macro(small_cfg(ndec, ns));
  Rng rng(53);
  macro.program(uniform_trees(ns), random_luts(rng, ns, ndec), {0, 0, 0, 0});
  macro.run(constant_inputs(8, ns, 0x00));
  // Per-block accept->REQ_out latency: Fig. 7B best @Ndec=4 = 16.1 ns.
  EXPECT_NEAR(macro.block(0).latency_ns().mean(), 16.1, 0.05);
}

// ----------------------------------------------------------- energy tests

TEST(Macro, EnergyPerOpMatchesAnalyticModel) {
  const int ndec = 8, ns = 8;
  Macro macro(small_cfg(ndec, ns));
  Rng rng(59);
  macro.program(random_trees(rng, ns), random_luts(rng, ns, ndec),
                std::vector<std::int16_t>(ndec, 0));
  const int ntok = 60;
  const auto res = macro.run(random_inputs(rng, ntok, ns));

  const long long ops =
      static_cast<long long>(ntok) * ns * ndec * ppa::kOpsPerLookup;
  const double sim_fj_per_op = res.stats.ledger.total_fj() / ops;

  ppa::AnalyticPerf perf({ndec, ns}, ppa::nominal_05v());
  const double interval =
      0.5 * (perf.block_latency_ns(1) + perf.block_latency_ns(8));
  const double ana_fj_per_op =
      perf.perf_at_interval(interval).energy_per_op_fj;
  // Event-driven accounting vs closed form within 6% (pipeline fill and
  // data-dependent terms explain the residual).
  EXPECT_NEAR(sim_fj_per_op, ana_fj_per_op, 0.06 * ana_fj_per_op);
}

TEST(Macro, DecoderDominatesEnergyAsInFig7a) {
  const int ndec = 16, ns = 8;
  Macro macro(small_cfg(ndec, ns));
  Rng rng(61);
  macro.program(random_trees(rng, ns), random_luts(rng, ns, ndec),
                std::vector<std::int16_t>(ndec, 0));
  const auto res = macro.run(random_inputs(rng, 40, ns));
  const auto& l = res.stats.ledger;
  const double dec_share = l.decoder_fj() / l.total_fj();
  EXPECT_GT(dec_share, 0.90);
  EXPECT_LT(l.encoder_fj() / l.total_fj(), 0.02);
}

TEST(Macro, HigherVddCostsMoreEnergyPerOp) {
  Rng rng(67);
  const auto trees = random_trees(rng, 4);
  const auto luts = random_luts(rng, 4, 4);
  const auto inputs = random_inputs(rng, 30, 4);
  auto fj_per_op = [&](double vdd) {
    MacroConfig cfg = small_cfg(4, 4);
    cfg.op.vdd = vdd;
    Macro m(cfg);
    m.program(trees, luts, {0, 0, 0, 0});
    const auto res = m.run(inputs);
    return res.stats.ledger.total_fj();
  };
  EXPECT_GT(fj_per_op(0.8), 1.8 * fj_per_op(0.5));
}

TEST(Macro, LeakageGrowsWithDuration) {
  // Worst-case (slow) data accumulates more leakage than best-case.
  Rng rng(71);
  const auto luts = random_luts(rng, 2, 2);
  auto leak = [&](std::uint8_t v) {
    Macro m(small_cfg(2, 2));
    m.program(uniform_trees(2), luts, {0, 0});
    const auto res = m.run(constant_inputs(20, 2, v));
    return res.stats.ledger.fj(EnergyCat::kLeakage);
  };
  EXPECT_GT(leak(0x80), 1.5 * leak(0x00));
}

// ------------------------------------------------- variation / self-timing

TEST(Macro, FunctionalUnderLocalVariation) {
  // The self-timed design's core claim: local variation shifts timing but
  // never corrupts results.
  Rng rng(73);
  const int ndec = 4, ns = 4;
  const auto trees = random_trees(rng, ns);
  const auto luts = random_luts(rng, ns, ndec);
  const auto inputs = random_inputs(rng, 15, ns);

  Macro nominal(small_cfg(ndec, ns));
  nominal.program(trees, luts, std::vector<std::int16_t>(ndec, 0));
  const auto ref = nominal.run(inputs);

  for (std::uint64_t die = 0; die < 5; ++die) {
    Rng vr(1000 + die);
    Macro m(small_cfg(ndec, ns));
    m.set_variation(sample_variation(ns, ndec, VariationConfig{}, vr));
    m.program(trees, luts, std::vector<std::int16_t>(ndec, 0));
    const auto res = m.run(inputs);
    EXPECT_EQ(res.outputs, ref.outputs) << "die " << die;
    EXPECT_NE(res.stats.duration_ns, ref.stats.duration_ns);
  }
}

TEST(Macro, VariationWidensLatencySpread) {
  Rng rng(79);
  const int ndec = 8, ns = 2;
  const auto trees = uniform_trees(ns);
  const auto luts = random_luts(rng, ns, ndec);
  const auto inputs = constant_inputs(20, ns, 0x00);

  Macro nominal(small_cfg(ndec, ns));
  nominal.program(trees, luts, std::vector<std::int16_t>(ndec, 0));
  const auto base = nominal.run(inputs);

  RunningStats spread;
  for (std::uint64_t die = 0; die < 8; ++die) {
    Rng vr(2000 + die);
    Macro m(small_cfg(ndec, ns));
    m.set_variation(sample_variation(ns, ndec, VariationConfig{}, vr));
    m.program(trees, luts, std::vector<std::int16_t>(ndec, 0));
    spread.add(m.run(inputs).stats.output_interval_ns.mean());
  }
  EXPECT_GT(spread.stddev(), 0.0);
  EXPECT_GT(spread.max(), base.stats.output_interval_ns.mean());
}

// --------------------------------------------------------- clocked baseline

TEST(ClockedMacro, BitExactWithAsyncMacro) {
  Rng rng(83);
  const int ndec = 4, ns = 4;
  const auto trees = random_trees(rng, ns);
  const auto luts = random_luts(rng, ns, ndec);
  const auto inputs = random_inputs(rng, 10, ns);
  std::vector<std::int16_t> bias = {5, -5, 17, 0};

  Macro async_macro(small_cfg(ndec, ns));
  async_macro.program(trees, luts, bias);
  const auto async_res = async_macro.run(inputs);

  ClockedMacro clocked({ndec, ns, ppa::nominal_05v(), 0.10});
  clocked.program(trees, luts, bias);
  const auto clk_res = clocked.run(inputs);
  EXPECT_EQ(clk_res.outputs, async_res.outputs);
}

TEST(ClockedMacro, AsyncBeatsClockedOnAverageData) {
  // The motivating claim of Sec. III-A: a clocked design pays the
  // worst-case period every cycle; the self-synchronous pipeline runs at
  // data speed.
  Rng rng(89);
  const int ndec = 8, ns = 8;
  const auto trees = random_trees(rng, ns);
  const auto luts = random_luts(rng, ns, ndec);
  const auto inputs = random_inputs(rng, 40, ns);

  Macro async_macro(small_cfg(ndec, ns));
  async_macro.program(trees, luts, std::vector<std::int16_t>(ndec, 0));
  const auto ares = async_macro.run(inputs);
  const double async_interval = ares.stats.output_interval_ns.mean();

  ClockedMacro clocked({ndec, ns, ppa::nominal_05v(), 0.10});
  clocked.program(trees, luts, std::vector<std::int16_t>(ndec, 0));
  EXPECT_GT(clocked.clock_period_ns(), async_interval);
}

TEST(ClockedMacro, PeriodCoversWorstCasePlusMargin) {
  ClockedMacro clocked({16, 32, ppa::nominal_05v(), 0.10});
  ppa::DelayModel delay(ppa::nominal_05v());
  const double floor_ns =
      delay.block_latency_worst_ns(16) + delay.precharge_ns();
  EXPECT_NEAR(clocked.clock_period_ns(), floor_ns * 1.1, 1e-9);
}

}  // namespace
}  // namespace ssma::sim
