// Correctness hardening of the LUT accumulation hot path: every packed
// kernel tier must be bit-exact vs the reference int32-accumulate /
// saturate-once decode on randomized configurations (including ragged
// row counts and non-16-multiple output tails), the packed layout must
// round-trip, and the saturation semantics must hold under adversarial
// all-±127 banks that overflow int16.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "maddness/amm.hpp"
#include "maddness/framing.hpp"
#include "maddness/lut.hpp"
#include "maddness/lut_kernel.hpp"
#include "ppa/tech_constants.hpp"
#include "util/rng.hpp"

using namespace ssma;
using namespace ssma::maddness;

namespace {

std::vector<KernelTier> available_tiers() {
  std::vector<KernelTier> tiers{KernelTier::kScalar};
  if (kernel_tier_available(KernelTier::kSsse3))
    tiers.push_back(KernelTier::kSsse3);
  if (kernel_tier_available(KernelTier::kAvx2))
    tiers.push_back(KernelTier::kAvx2);
  return tiers;
}

/// Handcrafted random bank: entries uniform in [-127, 127].
LutBank random_bank(Rng& rng, int ncodebooks, int nlevels, int nout) {
  LutBank bank;
  bank.cfg.ncodebooks = ncodebooks;
  bank.cfg.nlevels = nlevels;
  bank.nout = nout;
  const std::size_t entries = static_cast<std::size_t>(ncodebooks) *
                              bank.cfg.nprototypes() * nout;
  bank.q.resize(entries);
  for (auto& v : bank.q)
    v = static_cast<std::int8_t>(rng.next_int(-127, 127));
  bank.scales.assign(
      bank.cfg.per_column_lut_scale ? static_cast<std::size_t>(nout) : 1u,
      1.0f);
  return bank;
}

std::vector<std::uint8_t> random_codes(Rng& rng, std::size_t rows,
                                       int ncodebooks, int nprotos) {
  std::vector<std::uint8_t> codes(rows * static_cast<std::size_t>(ncodebooks));
  for (auto& c : codes)
    c = static_cast<std::uint8_t>(rng.next_int(0, nprotos - 1));
  return codes;
}

Matrix random_activations(Rng& rng, std::size_t n, std::size_t d) {
  Matrix x(n, d);
  for (std::size_t i = 0; i < x.size(); ++i)
    x.data()[i] = static_cast<float>(rng.next_double(0, 200));
  return x;
}

Matrix random_weights(Rng& rng, std::size_t d, std::size_t o) {
  Matrix w(d, o);
  for (std::size_t i = 0; i < w.size(); ++i)
    w.data()[i] = static_cast<float>(rng.next_gaussian(0, 0.05));
  return w;
}

}  // namespace

// ------------------------------------------------------- layout round trip

TEST(LutPacked, PackUnpackRoundTrip) {
  Rng rng(101);
  for (const int nout : {1, 5, 16, 37}) {
    const LutBank bank = random_bank(rng, 3, 4, nout);
    const LutBankPacked packed = pack_lut(bank);
    ASSERT_EQ(packed.q.size(), bank.q.size());
    for (int c = 0; c < 3; ++c)
      for (int k = 0; k < 16; ++k)
        for (int o = 0; o < nout; ++o)
          ASSERT_EQ(packed.at(c, k, o), bank.at(c, k, o))
              << "c=" << c << " k=" << k << " o=" << o;
    const LutBank back = unpack_lut(packed, bank.cfg);
    EXPECT_EQ(back.q, bank.q);
    EXPECT_EQ(back.scales, bank.scales);
    EXPECT_EQ(back.nout, bank.nout);
  }
}

TEST(LutPacked, TableIsContiguousPerCodebookOutput) {
  Rng rng(103);
  const LutBank bank = random_bank(rng, 2, 4, 7);
  const LutBankPacked packed = pack_lut(bank);
  for (int c = 0; c < 2; ++c)
    for (int o = 0; o < 7; ++o) {
      const std::int8_t* t = packed.table_ptr(c, o);
      for (int k = 0; k < 16; ++k) EXPECT_EQ(t[k], bank.at(c, k, o));
    }
}

// -------------------------------------------------- kernel bit-exactness

TEST(LutKernel, AllTiersBitExactOnRandomConfigMatrix) {
  Rng rng(2027);
  const auto tiers = available_tiers();
  // Dimensions chosen to stress tails: rows not multiples of the 16/32
  // row blocks, nout not multiples of the output block (including < 1
  // block), codebook counts around the SIMD chunk boundaries.
  const int cases[][3] = {
      // {ncodebooks, nout, rows}
      {1, 1, 1},    {1, 5, 7},     {3, 16, 31},  {7, 37, 33},
      {16, 64, 64}, {16, 130, 50}, {32, 128, 96}, {40, 23, 100},
  };
  for (const auto& cs : cases) {
    const int ncb = cs[0], nout = cs[1];
    const std::size_t rows = static_cast<std::size_t>(cs[2]);
    const LutBank bank = random_bank(rng, ncb, 4, nout);
    const auto codes = random_codes(rng, rows, ncb, 16);
    const auto ref = apply_lut_reference(bank, codes, rows);
    const LutBankPacked packed = pack_lut(bank);
    const EncodedBatch enc = make_encoded_batch(codes, rows, ncb);
    for (const KernelTier tier : tiers) {
      const auto got = apply_lut_packed(packed, enc, tier);
      ASSERT_EQ(got, ref) << "tier=" << kernel_tier_name(tier)
                          << " ncb=" << ncb << " nout=" << nout
                          << " rows=" << rows;
    }
  }
}

TEST(LutKernel, NonHardwarePrototypeCountFallsBackExactly) {
  // K=8 (nlevels=3) banks cannot use the pshufb tiers; requesting the
  // top tier must still produce reference-exact results via the scalar
  // fallback rather than silently misindexing a 16-wide shuffle.
  Rng rng(2029);
  const LutBank bank = random_bank(rng, 5, 3, 21);
  const auto codes = random_codes(rng, 40, 5, 8);
  const auto ref = apply_lut_reference(bank, codes, 40);
  const LutBankPacked packed = pack_lut(bank);
  ASSERT_EQ(packed.nprotos, 8);
  const EncodedBatch enc = make_encoded_batch(codes, 40, 5);
  for (const KernelTier tier : available_tiers())
    EXPECT_EQ(apply_lut_packed(packed, enc, tier), ref)
        << kernel_tier_name(tier);
}

TEST(LutKernel, EmptyBatchAndEmptyBank) {
  Rng rng(2031);
  const LutBank bank = random_bank(rng, 2, 4, 6);
  const LutBankPacked packed = pack_lut(bank);
  EncodedBatch empty;
  empty.ncodebooks = 2;
  EXPECT_TRUE(apply_lut_packed(packed, empty).empty());
  const LutBank nooutputs = random_bank(rng, 2, 4, 0);
  const auto codes = random_codes(rng, 9, 2, 16);
  EXPECT_TRUE(apply_lut_packed(pack_lut(nooutputs),
                               make_encoded_batch(codes, 9, 2))
                  .empty());
  EXPECT_TRUE(apply_lut_reference(nooutputs, codes, 9).empty());
}

// --------------------------------------------- accumulator saturation

TEST(LutKernel, AdversarialAllMaxLutsSaturateInsteadOfWrapping) {
  // 300 codebooks of all-(+127) entries sum to 38100 > INT16_MAX: the old
  // int16 wraparound accumulator produced a negative garbage value here;
  // the int32-accumulate / clamp-once path must pin to the rail.
  const int ncb = 300;
  LutBank bank;
  bank.cfg.ncodebooks = ncb;
  bank.cfg.nlevels = 4;
  bank.cfg.validate();
  bank.nout = 10;
  bank.q.assign(static_cast<std::size_t>(ncb) * 16 * 10, 127);
  bank.scales.assign(10, 1.0f);
  Rng rng(2033);
  const std::size_t rows = 37;
  const auto codes = random_codes(rng, rows, ncb, 16);

  const auto ref = apply_lut_reference(bank, codes, rows);
  for (const std::int16_t v : ref) ASSERT_EQ(v, 32767);

  const LutBankPacked packed = pack_lut(bank);
  const EncodedBatch enc = make_encoded_batch(codes, rows, ncb);
  for (const KernelTier tier : available_tiers())
    EXPECT_EQ(apply_lut_packed(packed, enc, tier), ref)
        << kernel_tier_name(tier);

  // Negative rail: all -127 must clamp at -32768, not wrap positive.
  for (auto& v : bank.q) v = -127;
  const auto ref_neg = apply_lut_reference(bank, codes, rows);
  for (const std::int16_t v : ref_neg) ASSERT_EQ(v, -32768);
  const LutBankPacked packed_neg = pack_lut(bank);
  for (const KernelTier tier : available_tiers())
    EXPECT_EQ(apply_lut_packed(packed_neg, enc, tier), ref_neg)
        << kernel_tier_name(tier);
}

TEST(LutKernel, MixedSignNearRailStaysExact) {
  // Alternating ±127 banks hover around zero with large intermediate
  // partials; saturating per-add (e.g. adds_epi16) would diverge from
  // clamp-once semantics. All tiers must agree with the reference.
  const int ncb = 300;
  LutBank bank;
  bank.cfg.ncodebooks = ncb;
  bank.nout = 8;
  bank.q.resize(static_cast<std::size_t>(ncb) * 16 * 8);
  for (std::size_t i = 0; i < bank.q.size(); ++i) {
    const std::size_t c = i / (16u * 8u);
    bank.q[i] = (c % 2 == 0) ? 127 : -127;
  }
  bank.scales.assign(8, 1.0f);
  Rng rng(2035);
  const auto codes = random_codes(rng, 33, ncb, 16);
  const auto ref = apply_lut_reference(bank, codes, 33);
  for (const std::int16_t v : ref) ASSERT_EQ(v, 0);
  const LutBankPacked packed = pack_lut(bank);
  const EncodedBatch enc = make_encoded_batch(codes, 33, ncb);
  for (const KernelTier tier : available_tiers())
    EXPECT_EQ(apply_lut_packed(packed, enc, tier), ref)
        << kernel_tier_name(tier);
}

// ------------------------------------------------------ Amm integration

TEST(LutKernel, TrainedOperatorPackedMatchesReference) {
  Rng rng(2037);
  for (const int nout : {3, 17, 64}) {
    Config cfg;
    cfg.ncodebooks = 8;
    const std::size_t d = 8 * 9;
    const Matrix x = random_activations(rng, 200, d);
    const Matrix w = random_weights(rng, d, static_cast<std::size_t>(nout));
    const Amm amm = Amm::train(cfg, x, w);
    const auto q = quantize_activations(x, amm.activation_scale());
    EXPECT_EQ(amm.apply_int16(q), amm.apply_int16_reference(q))
        << "nout=" << nout;
  }
}

TEST(LutKernel, EncodeBatchCacheMatchesRowMajorEncode) {
  Rng rng(2039);
  Config cfg;
  cfg.ncodebooks = 4;
  const std::size_t d = 4 * 9;
  const Matrix x = random_activations(rng, 65, d);
  const Amm amm = Amm::train(cfg, x, random_weights(rng, d, 6));
  const auto q = quantize_activations(x, amm.activation_scale());
  const auto row_major = amm.encode(q);
  const EncodedBatch enc = amm.encode_batch(q);
  ASSERT_EQ(enc.rows, q.rows);
  ASSERT_EQ(enc.ncodebooks, 4);
  for (std::size_t n = 0; n < q.rows; ++n)
    for (int c = 0; c < 4; ++c)
      ASSERT_EQ(enc.codebook(c)[n], row_major[n * 4 + c]);
  // Applying through the cache equals the one-shot path.
  EXPECT_EQ(amm.apply_int16(enc), amm.apply_int16(q));
}

TEST(LutKernel, DispatchReportsAConsistentTier) {
  const KernelTier best = best_kernel_tier();
  EXPECT_TRUE(kernel_tier_available(best));
  EXPECT_TRUE(kernel_tier_available(KernelTier::kScalar));
  EXPECT_LE(static_cast<int>(select_kernel_tier()),
            static_cast<int>(best));
  EXPECT_STREQ(kernel_tier_name(KernelTier::kScalar), "scalar");
  EXPECT_STREQ(kernel_tier_name(KernelTier::kSsse3), "ssse3");
  EXPECT_STREQ(kernel_tier_name(KernelTier::kAvx2), "avx2");
}

// ------------------------------------------- serialization edge cases

TEST(LutSerialize, EmptyBankRoundTripsThroughCrcFrame) {
  Rng rng(2041);
  Config cfg;
  cfg.ncodebooks = 2;
  const std::size_t d = 2 * 9;
  const Matrix x = random_activations(rng, 120, d);
  const Amm amm = Amm::train(cfg, x, Matrix(d, 0));
  ASSERT_EQ(amm.lut().nout, 0);
  ASSERT_TRUE(amm.lut().q.empty());
  std::stringstream ss;
  amm.save(ss);
  const Amm loaded = Amm::load(ss);
  EXPECT_EQ(loaded.lut().nout, 0);
  EXPECT_TRUE(loaded.lut().q.empty());
  EXPECT_EQ(loaded.packed_lut().q.size(), 0u);
  const auto q = quantize_activations(x, loaded.activation_scale());
  EXPECT_TRUE(loaded.apply_int16(q).empty());
}

TEST(LutSerialize, BroadcastScaleRoundTrips) {
  Rng rng(2043);
  Config cfg;
  cfg.ncodebooks = 2;
  cfg.per_column_lut_scale = false;
  const std::size_t d = 2 * 9;
  const Matrix x = random_activations(rng, 150, d);
  const Amm amm = Amm::train(cfg, x, random_weights(rng, d, 5));
  ASSERT_EQ(amm.lut().scales.size(), 1u);  // single broadcast scale
  std::stringstream ss;
  amm.save(ss);
  const Amm loaded = Amm::load(ss);
  ASSERT_EQ(loaded.lut().scales.size(), 1u);
  EXPECT_EQ(loaded.lut().scales, amm.lut().scales);
  EXPECT_EQ(loaded.lut().q, amm.lut().q);
  EXPECT_FALSE(loaded.packed_lut().per_column_scale);
  // scale(o) broadcasts the single entry to every column.
  for (int o = 0; o < 5; ++o)
    EXPECT_EQ(loaded.lut().scale(o), loaded.lut().scales[0]);
  const auto q = quantize_activations(x, loaded.activation_scale());
  EXPECT_EQ(loaded.apply_int16(q), amm.apply_int16_reference(q));
}

TEST(LutSerialize, PackedUnpackedRoundTripUnderCrcFraming) {
  // The packed layout is derived state: serializing and reloading an
  // operator must (a) keep the SSMAAMM2 frame byte-identical, (b) yield
  // a packed bank equal to repacking the original, and (c) unpack back
  // to the exact proto-major entries that were framed.
  Rng rng(2045);
  Config cfg;
  cfg.ncodebooks = 3;
  const std::size_t d = 3 * 9;
  const Matrix x = random_activations(rng, 180, d);
  const Amm amm = Amm::train(cfg, x, random_weights(rng, d, 7));
  std::stringstream ss;
  amm.save(ss);
  const std::string bytes = ss.str();
  std::istringstream is(bytes);
  const Amm loaded = Amm::load(is);
  EXPECT_EQ(loaded.packed_lut().q, amm.packed_lut().q);
  EXPECT_EQ(loaded.packed_lut().scales, amm.packed_lut().scales);
  const LutBank unpacked = unpack_lut(loaded.packed_lut(), loaded.cfg());
  EXPECT_EQ(unpacked.q, amm.lut().q);
  // Re-serializing the loaded operator reproduces the original frame
  // bit-for-bit (and therefore the same CRC).
  std::stringstream ss2;
  loaded.save(ss2);
  EXPECT_EQ(ss2.str(), bytes);
  // The framed payload itself still validates through the CRC reader.
  std::istringstream frame(bytes);
  char magic[8];
  frame.read(magic, 8);
  std::string payload;
  EXPECT_TRUE(try_read_framed_blob(frame, &payload));
  EXPECT_FALSE(payload.empty());
  // Flipping one payload byte must fail the CRC check, proving the frame
  // actually guards the LUT bytes the packed layout is derived from.
  std::string corrupt = bytes;
  corrupt[corrupt.size() - 1] ^= 0x01;
  std::istringstream bad(corrupt);
  bad.read(magic, 8);
  std::string dropped;
  EXPECT_FALSE(try_read_framed_blob(bad, &dropped));
}
