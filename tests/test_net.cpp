// TCP front-door tests: frame decoding (round trips, incremental
// feeds, CRC/length corruption), RPC message round trips, and loopback
// end-to-end serving — bit-exact responses under pipelining and
// connection backpressure, typed wire rejections for every refusal
// class (unknown model, malformed payload, rate limiting, expired
// deadlines, shutdown), protocol-error hangups, concurrent
// connections, and graceful stop with clients attached (no hangs, no
// lost acks).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "maddness/framing.hpp"
#include "net/server.hpp"
#include "net/wire_protocol.hpp"
#include "serve/server.hpp"
#include "serve_test_util.hpp"
#include "util/check.hpp"

namespace ssma::net {
namespace {

using serve::RejectReason;
using serve::ServeFixture;

RpcRequest make_request(std::uint64_t corr,
                        const std::vector<std::uint8_t>& codes,
                        std::uint64_t rows = 1,
                        const std::string& model = "m") {
  RpcRequest r;
  r.correlation_id = corr;
  r.model_ref = model;
  r.rows = rows;
  r.codes = codes;
  return r;
}

// ------------------------------------------------------- frame decoder

TEST(FrameDecoderTest, RoundTripsSingleAndMultipleFrames) {
  std::ostringstream os;
  maddness::write_framed_blob(os, "alpha");
  maddness::write_framed_blob(os, "");
  maddness::write_framed_blob(os, std::string(10000, 'x'));
  const std::string bytes = os.str();

  FrameDecoder dec(1 << 20);
  dec.feed(bytes.data(), bytes.size());
  std::string payload;
  ASSERT_EQ(dec.next(&payload), FrameDecoder::Result::kFrame);
  EXPECT_EQ(payload, "alpha");
  ASSERT_EQ(dec.next(&payload), FrameDecoder::Result::kFrame);
  EXPECT_EQ(payload, "");
  ASSERT_EQ(dec.next(&payload), FrameDecoder::Result::kFrame);
  EXPECT_EQ(payload, std::string(10000, 'x'));
  EXPECT_EQ(dec.next(&payload), FrameDecoder::Result::kNeedMore);
  EXPECT_EQ(dec.buffered_bytes(), 0u);
}

TEST(FrameDecoderTest, ByteAtATimeFeedReassembles) {
  std::ostringstream os;
  maddness::write_framed_blob(os, "drip-fed payload");
  const std::string bytes = os.str();

  FrameDecoder dec(1 << 20);
  std::string payload;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    dec.feed(&bytes[i], 1);
    ASSERT_EQ(dec.next(&payload), FrameDecoder::Result::kNeedMore);
  }
  dec.feed(&bytes[bytes.size() - 1], 1);
  ASSERT_EQ(dec.next(&payload), FrameDecoder::Result::kFrame);
  EXPECT_EQ(payload, "drip-fed payload");
}

TEST(FrameDecoderTest, CrcMismatchIsBad) {
  std::ostringstream os;
  maddness::write_framed_blob(os, "to be corrupted");
  std::string bytes = os.str();
  bytes[bytes.size() - 1] ^= 0x01;  // flip a payload bit

  FrameDecoder dec(1 << 20);
  dec.feed(bytes.data(), bytes.size());
  std::string payload;
  EXPECT_EQ(dec.next(&payload), FrameDecoder::Result::kBad);
}

TEST(FrameDecoderTest, OversizedLengthWordIsBadImmediately) {
  // 12 header bytes claiming a larger-than-allowed frame: kBad without
  // waiting for (or buffering) the impossible payload.
  std::string hdr(12, '\0');
  const std::uint64_t huge = (1u << 20) + 1;
  std::memcpy(&hdr[0], &huge, 8);  // test host is little-endian x86
  FrameDecoder dec(1 << 20);
  dec.feed(hdr.data(), hdr.size());
  std::string payload;
  EXPECT_EQ(dec.next(&payload), FrameDecoder::Result::kBad);
}

// ----------------------------------------------------- message codecs

TEST(WireProtocolTest, RequestRoundTrips) {
  RpcRequest req;
  req.correlation_id = 0xC0FFEE;
  req.tenant = "gold";
  req.model_ref = "embed@3";
  req.deadline_ms = 250;
  req.priority = 2;
  req.rows = 3;
  req.codes = {1, 2, 3, 4, 5, 6};

  const std::string frame = req.encode();
  FrameDecoder dec(1 << 20);
  dec.feed(frame.data(), frame.size());
  std::string payload;
  ASSERT_EQ(dec.next(&payload), FrameDecoder::Result::kFrame);

  RpcRequest back;
  ASSERT_TRUE(parse_request(payload, &back));
  EXPECT_EQ(back.correlation_id, req.correlation_id);
  EXPECT_EQ(back.tenant, req.tenant);
  EXPECT_EQ(back.model_ref, req.model_ref);
  EXPECT_EQ(back.deadline_ms, req.deadline_ms);
  EXPECT_EQ(back.priority, req.priority);
  EXPECT_EQ(back.rows, req.rows);
  EXPECT_EQ(back.codes, req.codes);
}

TEST(WireProtocolTest, ResponseRoundTrips) {
  RpcResponse resp;
  resp.correlation_id = 77;
  resp.status = kStatusOk;
  resp.model = "embed";
  resp.model_version = 3;
  resp.rows = 2;
  resp.outputs = {-32768, -1, 0, 1, 32767, 123};
  resp.message = "";

  const std::string frame = resp.encode();
  FrameDecoder dec(1 << 20);
  dec.feed(frame.data(), frame.size());
  std::string payload;
  ASSERT_EQ(dec.next(&payload), FrameDecoder::Result::kFrame);

  RpcResponse back;
  ASSERT_TRUE(parse_response(payload, &back));
  EXPECT_EQ(back.correlation_id, resp.correlation_id);
  EXPECT_EQ(back.status, kStatusOk);
  EXPECT_EQ(back.model, "embed");
  EXPECT_EQ(back.model_version, 3u);
  EXPECT_EQ(back.rows, 2u);
  EXPECT_EQ(back.outputs, resp.outputs);
}

TEST(WireProtocolTest, MalformedPayloadsAreRejectedNotRead) {
  RpcRequest req = make_request(1, {1, 2, 3});
  const std::string frame = req.encode();
  FrameDecoder dec(1 << 20);
  dec.feed(frame.data(), frame.size());
  std::string payload;
  ASSERT_EQ(dec.next(&payload), FrameDecoder::Result::kFrame);

  RpcRequest out;
  ASSERT_TRUE(parse_request(payload, &out));
  // Every strict prefix is a truncation; none may parse (or crash).
  for (std::size_t cut = 0; cut < payload.size(); ++cut)
    EXPECT_FALSE(parse_request(payload.substr(0, cut), &out))
        << "prefix of length " << cut << " parsed";
  // Trailing junk must be rejected too.
  EXPECT_FALSE(parse_request(payload + "z", &out));
  // Wrong version byte.
  std::string wrong = payload;
  wrong[0] = static_cast<char>(kWireVersion + 1);
  EXPECT_FALSE(parse_request(wrong, &out));
  // A response payload is not a request.
  EXPECT_FALSE(parse_request(RpcResponse{}.encode().substr(12), &out));
}

// -------------------------------------------------------- end to end

/// Raw TCP writer for protocol-error tests (NetClient refuses to send
/// garbage on purpose).
class RawConn {
 public:
  void connect(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    ASSERT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
  }
  void send_bytes(const std::string& b) {
    std::size_t off = 0;
    while (off < b.size()) {
      const ssize_t n =
          ::send(fd_, b.data() + off, b.size() - off, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      off += static_cast<std::size_t>(n);
    }
  }
  ssize_t recv_some(char* buf, std::size_t cap) {
    return ::recv(fd_, buf, cap, 0);
  }
  /// Blocks until the peer closes; true on EOF.
  bool drain_to_eof() {
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n == 0) return true;
      if (n < 0) return false;
    }
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

 private:
  int fd_ = -1;
};

struct Loopback {
  ServeFixture fix = ServeFixture::make();
  std::unique_ptr<serve::InferenceServer> server;
  std::unique_ptr<NetServer> net;

  explicit Loopback(NetServerOptions nopts = {},
                    serve::ServerOptions sopts = {}) {
    server = std::make_unique<serve::InferenceServer>(sopts);
    server->register_model("m", fix.amm);
    net = std::make_unique<NetServer>(*server, nopts);
  }
  ~Loopback() {
    net->stop();
    server->shutdown();
  }
};

TEST(NetServerTest, LoopbackPipelinedRequestsAreBitExact) {
  Loopback lb;
  NetClient cli;
  cli.connect("127.0.0.1", lb.net->port());

  constexpr std::uint64_t kN = 48;
  for (std::uint64_t i = 0; i < kN; ++i)
    cli.send(make_request(i, lb.fix.codes_for(i)));

  std::map<std::uint64_t, RpcResponse> got;
  for (std::uint64_t i = 0; i < kN; ++i) {
    RpcResponse resp;
    ASSERT_TRUE(cli.recv_response(&resp));
    got[resp.correlation_id] = std::move(resp);
  }
  ASSERT_EQ(got.size(), kN);  // every correlation id answered once
  for (std::uint64_t i = 0; i < kN; ++i) {
    const RpcResponse& r = got.at(i);
    EXPECT_EQ(r.status, kStatusOk);
    EXPECT_EQ(r.model, "m");
    EXPECT_EQ(r.model_version, 1u);
    EXPECT_EQ(r.rows, 1u);
    EXPECT_EQ(r.outputs, lb.fix.expected_for(lb.fix.codes_for(i), 1))
        << "response " << i << " not bit-exact";
  }
  const NetServerStats st = lb.net->stats();
  EXPECT_EQ(st.requests_admitted, kN);
  EXPECT_EQ(st.frames_received, kN);
  cli.close();
}

TEST(NetServerTest, UnknownModelAndBadShapeGetTypedRejections) {
  Loopback lb;
  NetClient cli;
  cli.connect("127.0.0.1", lb.net->port());

  cli.send(make_request(1, lb.fix.codes_for(0), 1, "nope"));
  RpcResponse resp;
  ASSERT_TRUE(cli.recv_response(&resp));
  EXPECT_EQ(resp.correlation_id, 1u);
  EXPECT_EQ(resp.status, status_of(RejectReason::kUnknownModel));

  // Payload size != rows x cols.
  cli.send(make_request(2, {1, 2, 3}, 1, "m"));
  ASSERT_TRUE(cli.recv_response(&resp));
  EXPECT_EQ(resp.correlation_id, 2u);
  EXPECT_EQ(resp.status, status_of(RejectReason::kMalformed));

  // rows == 0 is malformed, not a crash.
  cli.send(make_request(3, {}, 0, "m"));
  ASSERT_TRUE(cli.recv_response(&resp));
  EXPECT_EQ(resp.status, status_of(RejectReason::kMalformed));

  // The connection is still healthy after typed rejections.
  cli.send(make_request(4, lb.fix.codes_for(4)));
  ASSERT_TRUE(cli.recv_response(&resp));
  EXPECT_EQ(resp.correlation_id, 4u);
  EXPECT_EQ(resp.status, kStatusOk);
  cli.close();
}

TEST(NetServerTest, RateLimitedTenantShedsWithAckForEveryRequest) {
  NetServerOptions nopts;
  nopts.admission.tenants["limited"] =
      serve::TenantConfig{/*tokens_per_sec=*/0.001, /*burst_tokens=*/2.0,
                          serve::Priority::kLow};
  Loopback lb(nopts);
  NetClient cli;
  cli.connect("127.0.0.1", lb.net->port());

  constexpr std::uint64_t kN = 6;
  for (std::uint64_t i = 0; i < kN; ++i) {
    RpcRequest r = make_request(i, lb.fix.codes_for(i));
    r.tenant = "limited";
    cli.send(r);
  }
  std::size_t ok = 0, limited = 0;
  for (std::uint64_t i = 0; i < kN; ++i) {
    RpcResponse resp;
    ASSERT_TRUE(cli.recv_response(&resp));  // every request acked
    if (resp.status == kStatusOk)
      ok++;
    else if (resp.status == status_of(RejectReason::kRateLimited))
      limited++;
  }
  EXPECT_EQ(ok, 2u);       // exactly the burst
  EXPECT_EQ(limited, kN - 2);
  const NetServerStats st = lb.net->stats();
  EXPECT_EQ(st.rejects[static_cast<std::size_t>(
                RejectReason::kRateLimited)],
            kN - 2);
  cli.close();
}

TEST(NetServerTest, ExpiredDeadlineGetsTypedRejection) {
  // A paced engine wedges the single worker long enough that a
  // short-deadline request expires in the queue and is dropped at
  // batch formation with the typed wire status.
  serve::ServerOptions sopts;
  sopts.num_workers = 1;
  sopts.engine.backend = engine::Backend::kDevicePaced;
  sopts.engine.device_ns_per_token = 2'000'000;  // 2 ms/token
  Loopback lb({}, sopts);
  NetClient cli;
  cli.connect("127.0.0.1", lb.net->port());

  // 64 tokens x 2 ms = ~128 ms of device busy.
  std::vector<std::uint8_t> big(64 * lb.fix.pool.cols);
  for (std::size_t i = 0; i < big.size(); ++i)
    big[i] = lb.fix.codes_for(i % 8)[i % lb.fix.pool.cols];
  cli.send(make_request(1, big, 64));
  // Let the worker pick the big batch up before the doomed request
  // arrives (otherwise they could coalesce).
  std::this_thread::sleep_for(std::chrono::milliseconds(40));

  RpcRequest doomed = make_request(2, lb.fix.codes_for(2));
  doomed.deadline_ms = 5;  // expires ~80 ms before the worker frees up
  cli.send(doomed);

  std::map<std::uint64_t, std::uint8_t> status;
  for (int i = 0; i < 2; ++i) {
    RpcResponse resp;
    ASSERT_TRUE(cli.recv_response(&resp));
    status[resp.correlation_id] = resp.status;
  }
  EXPECT_EQ(status.at(1), kStatusOk);
  EXPECT_EQ(status.at(2), status_of(RejectReason::kDeadlineExpired));
  cli.close();
}

TEST(NetServerTest, ShutdownIsATypedWireRejection) {
  Loopback lb;
  NetClient cli;
  cli.connect("127.0.0.1", lb.net->port());
  lb.server->shutdown();  // drain the inference server under the net layer

  cli.send(make_request(9, lb.fix.codes_for(0)));
  RpcResponse resp;
  ASSERT_TRUE(cli.recv_response(&resp));
  EXPECT_EQ(resp.correlation_id, 9u);
  EXPECT_EQ(resp.status, status_of(RejectReason::kShutdown));
  cli.close();
}

TEST(NetServerTest, CorruptFrameClosesConnection) {
  Loopback lb;
  RawConn raw;
  raw.connect(lb.net->port());

  std::string frame = make_request(1, lb.fix.codes_for(0)).encode();
  frame[frame.size() - 1] ^= 0x40;  // break the payload CRC
  raw.send_bytes(frame);
  EXPECT_TRUE(raw.drain_to_eof()) << "server must hang up on bad CRC";

  // Wait for the close to be accounted, then check it was typed as a
  // protocol error and the server still serves new connections.
  for (int i = 0; i < 100 && lb.net->stats().protocol_errors == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(lb.net->stats().protocol_errors, 1u);

  NetClient cli;
  cli.connect("127.0.0.1", lb.net->port());
  cli.send(make_request(2, lb.fix.codes_for(2)));
  RpcResponse resp;
  ASSERT_TRUE(cli.recv_response(&resp));
  EXPECT_EQ(resp.status, kStatusOk);
  cli.close();
}

TEST(NetServerTest, WellFramedGarbageAnsweredMalformedAndConnSurvives) {
  Loopback lb;
  RawConn raw;
  raw.connect(lb.net->port());

  std::ostringstream os;
  maddness::write_framed_blob(os, "not an rpc message at all");
  raw.send_bytes(os.str());
  // The same socket then carries a valid request — the malformed
  // payload must not have poisoned the stream.
  raw.send_bytes(make_request(5, lb.fix.codes_for(5)).encode());

  // Read both responses through a bare decoder on the raw socket.
  FrameDecoder dec(1 << 20);
  std::map<std::uint64_t, std::uint8_t> status;
  char buf[4096];
  std::string payload;
  int got = 0;
  while (got < 2) {
    FrameDecoder::Result r = dec.next(&payload);
    if (r == FrameDecoder::Result::kFrame) {
      RpcResponse resp;
      ASSERT_TRUE(parse_response(payload, &resp));
      status[resp.correlation_id] = resp.status;
      got++;
      continue;
    }
    ASSERT_NE(r, FrameDecoder::Result::kBad);
    const ssize_t n = raw.recv_some(buf, sizeof(buf));
    ASSERT_GT(n, 0);
    dec.feed(buf, static_cast<std::size_t>(n));
  }
  EXPECT_EQ(status.at(0), status_of(RejectReason::kMalformed));
  EXPECT_EQ(status.at(5), kStatusOk);
}

TEST(NetServerTest, BackpressurePausesReadsButLosesNothing) {
  NetServerOptions nopts;
  nopts.max_inflight_per_conn = 4;  // aggressive pause threshold
  Loopback lb(nopts);

  constexpr std::uint64_t kN = 64;
  NetClient cli;
  cli.connect("127.0.0.1", lb.net->port());

  // Sender and receiver threads pipeline hard against the tiny window.
  std::thread sender([&] {
    for (std::uint64_t i = 0; i < kN; ++i)
      cli.send(make_request(i, lb.fix.codes_for(i)));
  });
  std::map<std::uint64_t, RpcResponse> got;
  for (std::uint64_t i = 0; i < kN; ++i) {
    RpcResponse resp;
    ASSERT_TRUE(cli.recv_response(&resp));
    got[resp.correlation_id] = std::move(resp);
  }
  sender.join();
  ASSERT_EQ(got.size(), kN);
  for (std::uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(got.at(i).status, kStatusOk);
    EXPECT_EQ(got.at(i).outputs,
              lb.fix.expected_for(lb.fix.codes_for(i), 1));
  }
  cli.close();
}

TEST(NetServerTest, ConcurrentConnectionsServeIndependently) {
  Loopback lb;
  constexpr int kConns = 4;
  constexpr std::uint64_t kPerConn = 16;
  std::vector<std::thread> clients;
  std::vector<std::string> errors(kConns);
  for (int t = 0; t < kConns; ++t) {
    clients.emplace_back([&, t] {
      try {
        NetClient cli;
        cli.connect("127.0.0.1", lb.net->port());
        for (std::uint64_t i = 0; i < kPerConn; ++i)
          cli.send(make_request(i, lb.fix.codes_for(i + 7 * t)));
        std::map<std::uint64_t, RpcResponse> got;
        for (std::uint64_t i = 0; i < kPerConn; ++i) {
          RpcResponse resp;
          if (!cli.recv_response(&resp))
            throw CheckError("early close");
          got[resp.correlation_id] = std::move(resp);
        }
        for (std::uint64_t i = 0; i < kPerConn; ++i) {
          if (got.at(i).status != kStatusOk)
            throw CheckError("non-ok status");
          if (got.at(i).outputs !=
              lb.fix.expected_for(lb.fix.codes_for(i + 7 * t), 1))
            throw CheckError("not bit-exact");
        }
        cli.close();
      } catch (const std::exception& e) {
        errors[static_cast<std::size_t>(t)] = e.what();
      }
    });
  }
  for (auto& th : clients) th.join();
  for (int t = 0; t < kConns; ++t)
    EXPECT_EQ(errors[static_cast<std::size_t>(t)], "") << "conn " << t;
}

TEST(NetServerTest, StopWithConnectedClientDoesNotHang) {
  ServeFixture fix = ServeFixture::make();
  serve::ServerOptions sopts;
  sopts.num_workers = 2;
  serve::InferenceServer server(sopts);
  server.register_model("m", fix.amm);
  auto net = std::make_unique<NetServer>(server, NetServerOptions{});

  NetClient cli;
  cli.connect("127.0.0.1", net->port());
  // One request in flight, then stop: the response must still arrive
  // (graceful drain), after which the server closes the connection.
  cli.send(make_request(3, fix.codes_for(3)));
  RpcResponse resp;
  ASSERT_TRUE(cli.recv_response(&resp));
  EXPECT_EQ(resp.status, kStatusOk);

  net->stop();  // idle client attached — must return promptly
  EXPECT_FALSE(cli.recv_response(&resp));  // clean EOF, not a hang
  cli.close();
  net.reset();
  server.shutdown();
}

}  // namespace
}  // namespace ssma::net
