// Tests for the simulator extensions: signal tracing (text + VCD),
// AMM serialization round trips, and the speculative-encode pipeline
// option (bit-exactness preserved, encoder latency hidden).
#include <gtest/gtest.h>

#include <sstream>

#include "maddness/amm.hpp"
#include "ppa/delay_model.hpp"
#include "sim/macro.hpp"
#include "sim/trace.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ssma::sim {
namespace {

std::vector<maddness::HashTree> random_trees(Rng& rng, int ns) {
  std::vector<maddness::HashTree> trees(ns);
  for (auto& t : trees) {
    for (int l = 0; l < 4; ++l) t.set_split_dim(l, rng.next_int(0, 8));
    for (int l = 0; l < 4; ++l)
      for (int n = 0; n < (1 << l); ++n)
        t.set_threshold(l, n, static_cast<std::uint8_t>(rng.next_int(1, 254)));
  }
  return trees;
}

std::vector<maddness::HashTree> uniform_trees(int ns) {
  std::vector<maddness::HashTree> trees(ns);
  for (auto& t : trees) {
    for (int l = 0; l < 4; ++l) t.set_split_dim(l, l);
    for (int l = 0; l < 4; ++l)
      for (int n = 0; n < (1 << l); ++n) t.set_threshold(l, n, 0x80);
  }
  return trees;
}

std::vector<std::vector<std::array<std::int8_t, 16>>> random_luts(Rng& rng,
                                                                  int ns,
                                                                  int ndec) {
  std::vector<std::vector<std::array<std::int8_t, 16>>> luts(
      ns, std::vector<std::array<std::int8_t, 16>>(ndec));
  for (auto& b : luts)
    for (auto& tb : b)
      for (auto& e : tb) e = static_cast<std::int8_t>(rng.next_int(-127, 127));
  return luts;
}

std::vector<std::vector<Subvec>> random_inputs(Rng& rng, int n, int ns) {
  std::vector<std::vector<Subvec>> in(n, std::vector<Subvec>(ns));
  for (auto& tok : in)
    for (auto& sv : tok)
      for (auto& v : sv) v = static_cast<std::uint8_t>(rng.next_int(0, 255));
  return in;
}

std::vector<std::vector<Subvec>> constant_inputs(int n, int ns,
                                                 std::uint8_t v) {
  Subvec sv;
  sv.fill(v);
  return std::vector<std::vector<Subvec>>(n, std::vector<Subvec>(ns, sv));
}

// ------------------------------------------------------------------ trace

TEST(Trace, RecordsHandshakeEdgesInProtocolOrder) {
  Rng rng(1);
  MacroConfig cfg;
  cfg.ndec = 2;
  cfg.ns = 2;
  Macro macro(cfg);
  TraceSink trace;
  macro.set_trace(&trace);
  macro.program(random_trees(rng, 2), random_luts(rng, 2, 2), {0, 0});
  macro.run(random_inputs(rng, 3, 2));

  ASSERT_GT(trace.size(), 0u);
  // For every link: req/ack edges strictly alternate 1,1,0,0 per cycle.
  for (int l = 0; l <= 2; ++l) {
    const std::string base = "link" + std::to_string(l);
    const auto reqs = trace.for_signal(base + ".req");
    const auto acks = trace.for_signal(base + ".ack");
    ASSERT_EQ(reqs.size(), acks.size());
    ASSERT_EQ(reqs.size() % 2, 0u);
    for (std::size_t i = 0; i + 1 < reqs.size(); i += 2) {
      EXPECT_EQ(reqs[i].value, "1");
      EXPECT_EQ(reqs[i + 1].value, "0");
      EXPECT_EQ(acks[i].value, "1");
      EXPECT_EQ(acks[i + 1].value, "0");
      // REQ rises no later than ACK rises; REQ falls no later than ACK
      // falls (four-phase ordering).
      EXPECT_LE(reqs[i].t, acks[i].t);
      EXPECT_LE(reqs[i + 1].t, acks[i + 1].t);
    }
  }
}

TEST(Trace, BlockStatesAndLeavesRecorded) {
  Rng rng(3);
  MacroConfig cfg;
  cfg.ndec = 2;
  cfg.ns = 1;
  Macro macro(cfg);
  TraceSink trace;
  macro.set_trace(&trace);
  macro.program(random_trees(rng, 1), random_luts(rng, 1, 2), {0, 0});
  macro.run(random_inputs(rng, 4, 1));

  const auto states = trace.for_signal("block0.state");
  EXPECT_EQ(states.size(), 8u);  // compute+ready per token
  const auto leaves = trace.for_signal("block0.leaf");
  EXPECT_EQ(leaves.size(), 4u);
  for (const auto& r : leaves) {
    const int leaf = std::stoi(r.value);
    EXPECT_GE(leaf, 0);
    EXPECT_LT(leaf, 16);
  }
}

TEST(Trace, VcdRendering) {
  TraceSink t;
  t.record(0, "a.req", "1");
  t.record(100, "a.req", "0");
  t.record(100, "b.state", "compute");
  const std::string vcd = t.render_vcd("test");
  EXPECT_NE(vcd.find("$timescale 1ps $end"), std::string::npos);
  EXPECT_NE(vcd.find("$scope module test $end"), std::string::npos);
  EXPECT_NE(vcd.find("a.req"), std::string::npos);
  EXPECT_NE(vcd.find("#100"), std::string::npos);
  EXPECT_NE(vcd.find("scompute"), std::string::npos);

  const std::string text = t.render_text();
  EXPECT_NE(text.find("0.100 ns"), std::string::npos);
}

TEST(Trace, NoTracingCostWhenDetached) {
  Rng rng(5);
  MacroConfig cfg;
  cfg.ndec = 2;
  cfg.ns = 2;
  Macro macro(cfg);
  macro.program(random_trees(rng, 2), random_luts(rng, 2, 2), {0, 0});
  // No sink attached: run must not crash and produces no records.
  const auto res = macro.run(random_inputs(rng, 3, 2));
  EXPECT_EQ(res.outputs.size(), 3u);
}

// -------------------------------------------------------------- serialize

TEST(Serialize, RoundTripPreservesBehaviour) {
  Rng rng(7);
  maddness::Config cfg;
  cfg.ncodebooks = 3;
  Matrix x(200, 27);
  for (std::size_t i = 0; i < x.size(); ++i)
    x.data()[i] = static_cast<float>(rng.next_double(0, 200));
  Matrix w(27, 5);
  for (std::size_t i = 0; i < w.size(); ++i)
    w.data()[i] = static_cast<float>(rng.next_gaussian(0, 0.05));
  const maddness::Amm amm = maddness::Amm::train(cfg, x, w);

  std::stringstream ss;
  amm.save(ss);
  const maddness::Amm loaded = maddness::Amm::load(ss);

  EXPECT_EQ(loaded.cfg().ncodebooks, 3);
  EXPECT_EQ(loaded.activation_scale(), amm.activation_scale());
  EXPECT_EQ(loaded.lut().q, amm.lut().q);
  EXPECT_EQ(loaded.lut().scales, amm.lut().scales);

  const auto q = maddness::quantize_activations(x, amm.activation_scale());
  EXPECT_EQ(loaded.apply_int16(q), amm.apply_int16(q));
  EXPECT_EQ(loaded.encode(q), amm.encode(q));
}

TEST(Serialize, RejectsCorruptStream) {
  std::stringstream ss;
  ss << "not an amm stream at all";
  EXPECT_THROW(maddness::Amm::load(ss), CheckError);
}

TEST(Serialize, FileRoundTrip) {
  Rng rng(9);
  maddness::Config cfg;
  cfg.ncodebooks = 2;
  Matrix x(100, 18);
  for (std::size_t i = 0; i < x.size(); ++i)
    x.data()[i] = static_cast<float>(rng.next_double(0, 100));
  Matrix w(18, 3);
  for (std::size_t i = 0; i < w.size(); ++i)
    w.data()[i] = static_cast<float>(rng.next_gaussian(0, 0.1));
  const maddness::Amm amm = maddness::Amm::train(cfg, x, w);

  const std::string path = "/tmp/ssma_amm_roundtrip.bin";
  amm.save_file(path);
  const maddness::Amm loaded = maddness::Amm::load_file(path);
  const auto q = maddness::quantize_activations(x, amm.activation_scale());
  EXPECT_EQ(loaded.apply_int16(q), amm.apply_int16(q));
  EXPECT_THROW(maddness::Amm::load_file("/nonexistent/amm.bin"),
               CheckError);
}

// ------------------------------------------------------------ speculative

TEST(SpeculativeEncode, BitExactAgainstBaseline) {
  Rng rng(11);
  const int ndec = 4, ns = 4;
  const auto trees = random_trees(rng, ns);
  const auto luts = random_luts(rng, ns, ndec);
  const auto inputs = random_inputs(rng, 20, ns);

  MacroConfig base;
  base.ndec = ndec;
  base.ns = ns;
  Macro m0(base);
  m0.program(trees, luts, std::vector<std::int16_t>(ndec, 0));
  const auto r0 = m0.run(inputs);

  MacroConfig spec = base;
  spec.speculative_encode = true;
  Macro m1(spec);
  m1.program(trees, luts, std::vector<std::int16_t>(ndec, 0));
  const auto r1 = m1.run(inputs);

  EXPECT_EQ(r1.outputs, r0.outputs);
}

TEST(SpeculativeEncode, HidesWorstCaseEncoderLatency) {
  // Worst-case data (every DLC full-ripple): baseline interval =
  // enc_worst + B; speculative interval ~ max(B, enc + pch).
  const int ndec = 16, ns = 4;
  Rng rng(13);
  const auto luts = random_luts(rng, ns, ndec);
  const auto inputs = constant_inputs(30, ns, 0x80);

  MacroConfig base;
  base.ndec = ndec;
  base.ns = ns;
  Macro m0(base);
  m0.program(uniform_trees(ns), luts, std::vector<std::int16_t>(ndec, 0));
  const double base_int = m0.run(inputs).stats.output_interval_ns.mean();

  MacroConfig spec = base;
  spec.speculative_encode = true;
  Macro m1(spec);
  m1.program(uniform_trees(ns), luts, std::vector<std::int16_t>(ndec, 0));
  const double spec_int = m1.run(inputs).stats.output_interval_ns.mean();

  ppa::DelayModel delay(ppa::nominal_05v());
  EXPECT_NEAR(base_int, delay.block_latency_worst_ns(ndec), 0.1);
  // The speculative interval is bounded by encoder + precharge (the
  // encoder becomes the pipeline bottleneck once decode is hidden).
  const double bound =
      delay.encoder_worst_ns() + delay.precharge_ns() + 1.0;
  EXPECT_LT(spec_int, bound);
  EXPECT_LT(spec_int, 0.8 * base_int);  // >= 1.25x speedup
}

TEST(SpeculativeEncode, BestCaseBottleneckIsDecoder) {
  // Best-case data: encoder (7.4 ns) is faster than the decode path, so
  // the interval approaches the decoder path latency.
  const int ndec = 16, ns = 4;
  Rng rng(17);
  MacroConfig spec;
  spec.ndec = ndec;
  spec.ns = ns;
  spec.speculative_encode = true;
  Macro m(spec);
  m.program(uniform_trees(ns), random_luts(rng, ns, ndec),
            std::vector<std::int16_t>(ndec, 0));
  const double interval =
      m.run(constant_inputs(30, ns, 0x00)).stats.output_interval_ns.mean();
  ppa::DelayModel delay(ppa::nominal_05v());
  EXPECT_LT(interval, delay.block_latency_best_ns(ndec));
  EXPECT_GT(interval, delay.decoder_path_ns(ndec) - 0.1);
}

TEST(SpeculativeEncode, WorksWithVariationAndSingleToken) {
  Rng rng(19);
  MacroConfig spec;
  spec.ndec = 2;
  spec.ns = 2;
  spec.speculative_encode = true;
  Macro m(spec);
  const auto trees = random_trees(rng, 2);
  const auto luts = random_luts(rng, 2, 2);
  m.program(trees, luts, {0, 0});
  // Single token: no speculation possible, still correct.
  const auto inputs = random_inputs(rng, 1, 2);
  const auto res = m.run(inputs);
  EXPECT_EQ(res.outputs, m.reference_outputs(inputs));
}

}  // namespace
}  // namespace ssma::sim
