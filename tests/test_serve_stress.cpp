// Hardened concurrency tests for the serving runtime's moving parts:
// MPMC RequestQueue churn under many producers/consumers with
// randomized close/drain (no request lost or duplicated), the
// recovery requeue path, batcher property tests (budget ceiling, FIFO
// order, per-shard ordering under a live pool), and a full-pool
// bit-exactness run with seed-driven injected delays shaking the
// thread interleavings. Every randomized test derives from one seed
// (SSMA_TEST_SEED to override) that is printed into failure logs.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <map>
#include <thread>
#include <vector>

#include "serve/batcher.hpp"
#include "serve/recovery/fault_injector.hpp"
#include "serve/request_queue.hpp"
#include "serve/server.hpp"
#include "serve_test_util.hpp"

// These suites deliberately keep exercising the deprecated v1
// one-model constructor — it is the compatibility shim under test.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"


namespace ssma::serve {
namespace {

using recovery::FaultInjector;

InferenceRequest make_request(std::uint64_t id, std::size_t rows,
                              std::size_t cols) {
  InferenceRequest req;
  req.id = id;
  req.rows = rows;
  req.codes.assign(rows * cols, static_cast<std::uint8_t>(id & 0xff));
  req.enqueued_at = Clock::now();
  return req;
}

// ----------------------------------------------------------- MPMC churn

TEST(RequestQueueStress, MpmcChurnLosesNothingDuplicatesNothing) {
  const std::uint64_t seed = test_seed();
  SCOPED_TRACE(seed_trace(seed));
  constexpr int kProducers = 6;
  constexpr int kConsumers = 4;
  constexpr std::uint64_t kPerProducer = 400;
  constexpr std::uint64_t kTotal = kProducers * kPerProducer;

  RequestQueue queue(32);
  std::vector<std::atomic<int>> seen(kTotal);
  for (auto& s : seen) s.store(0);

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c)
    consumers.emplace_back([&] {
      InferenceRequest req;
      while (queue.pop_wait(&req) == PopStatus::kOk)
        seen[req.id].fetch_add(1, std::memory_order_relaxed);
    });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&, p] {
      Rng rng(seed + static_cast<std::uint64_t>(p));
      for (std::uint64_t k = 0; k < kPerProducer; ++k) {
        const std::uint64_t id =
            static_cast<std::uint64_t>(p) * kPerProducer + k;
        // Mix blocking and non-blocking pushes; try_push may bounce off
        // a full queue and must then be retried via the blocking path.
        if (rng.next_bool() && queue.try_push(make_request(id, 1, 4)))
          continue;
        ASSERT_TRUE(queue.push(make_request(id, 1, 4)));
      }
    });

  for (auto& t : producers) t.join();
  queue.close();
  for (auto& t : consumers) t.join();

  std::uint64_t lost = 0, duplicated = 0;
  for (std::uint64_t id = 0; id < kTotal; ++id) {
    const int n = seen[id].load();
    lost += n == 0;
    duplicated += n > 1;
  }
  EXPECT_EQ(lost, 0u);
  EXPECT_EQ(duplicated, 0u);
}

TEST(RequestQueueStress, RandomizedCloseDrainsExactlyTheAccepted) {
  const std::uint64_t seed = test_seed();
  SCOPED_TRACE(seed_trace(seed));
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr std::uint64_t kPerProducer = 300;
  constexpr std::uint64_t kTotal = kProducers * kPerProducer;

  // Several rounds with a close racing the producers at a seed-chosen
  // instant: everything accepted must drain, everything rejected must
  // stay rejected — no request may fall between the two sets.
  for (int round = 0; round < 3; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    RequestQueue queue(16);
    std::vector<std::atomic<int>> consumed(kTotal);
    for (auto& s : consumed) s.store(0);
    std::vector<std::atomic<int>> accepted(kTotal);
    for (auto& s : accepted) s.store(0);

    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; ++c)
      consumers.emplace_back([&] {
        InferenceRequest req;
        while (queue.pop_wait(&req) == PopStatus::kOk)
          consumed[req.id].fetch_add(1, std::memory_order_relaxed);
      });

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p)
      producers.emplace_back([&, p] {
        for (std::uint64_t k = 0; k < kPerProducer; ++k) {
          const std::uint64_t id =
              static_cast<std::uint64_t>(p) * kPerProducer + k;
          if (queue.push(make_request(id, 1, 4)))
            accepted[id].store(1, std::memory_order_relaxed);
        }
      });

    Rng rng(seed + static_cast<std::uint64_t>(round) * 1315423911u);
    std::this_thread::sleep_for(
        std::chrono::microseconds(rng.next_below(2000)));
    queue.close();
    for (auto& t : producers) t.join();
    for (auto& t : consumers) t.join();

    for (std::uint64_t id = 0; id < kTotal; ++id)
      ASSERT_EQ(consumed[id].load(), accepted[id].load())
          << "request " << id
          << (accepted[id].load() ? " was accepted but never drained"
                                  : " was rejected but still served");
  }
}

TEST(RequestQueueStress, RequeueFrontBypassesCapacityAndKeepsOrder) {
  RequestQueue queue(2);
  ASSERT_TRUE(queue.push(make_request(10, 1, 4)));
  ASSERT_TRUE(queue.push(make_request(11, 1, 4)));
  EXPECT_FALSE(queue.try_push(make_request(12, 1, 4)));  // full

  // A crashed shard's batch goes back to the head, above capacity,
  // even after close().
  queue.close();
  std::vector<InferenceRequest> orphans;
  orphans.push_back(make_request(1, 1, 4));
  orphans.push_back(make_request(2, 1, 4));
  orphans.push_back(make_request(3, 1, 4));
  queue.requeue_front(std::move(orphans));
  EXPECT_EQ(queue.size(), 5u);

  std::vector<std::uint64_t> order;
  InferenceRequest req;
  while (queue.pop_wait(&req) == PopStatus::kOk) order.push_back(req.id);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2, 3, 10, 11}));
}

// ------------------------------------------------- batcher properties

TEST(BatcherProperty, BudgetCeilingAndGlobalFifoUnderRandomSizes) {
  const std::uint64_t seed = test_seed();
  SCOPED_TRACE(seed_trace(seed));
  Rng rng(seed);
  constexpr std::uint64_t kRequests = 600;

  BatcherOptions opts;
  opts.max_batch_tokens = 16;
  opts.max_wait = std::chrono::microseconds(0);
  const Batcher batcher(opts);
  RequestQueue queue(64);

  std::thread producer([&] {
    for (std::uint64_t id = 0; id < kRequests; ++id)
      ASSERT_TRUE(queue.push(
          make_request(id, 1 + rng.next_below(12), 4)));
    queue.close();
  });

  // Single consumer: batches must preserve global FIFO id order and
  // never exceed the budget unless a single oversized request forces a
  // batch of one.
  std::uint64_t expect_id = 0;
  for (;;) {
    Batch batch = batcher.next_batch(queue);
    if (batch.empty()) break;
    if (batch.tokens > batcher.budget_tokens()) {
      EXPECT_EQ(batch.requests.size(), 1u)
          << "over-budget batch was not a lone oversized request";
    }
    for (const InferenceRequest& req : batch.requests)
      EXPECT_EQ(req.id, expect_id++) << "FIFO order violated";
  }
  producer.join();
  EXPECT_EQ(expect_id, kRequests);
}

TEST(BatcherProperty, PerShardFifoUnderLivePool) {
  const std::uint64_t seed = test_seed();
  SCOPED_TRACE(seed_trace(seed));
  const ServeFixture f = ServeFixture::make();

  ServerOptions opts;
  opts.num_workers = 3;
  opts.batcher.max_batch_tokens = 8;
  opts.batcher.max_wait = std::chrono::microseconds(50);
  InferenceServer server(f.amm, opts);

  // One client submits in id order, so within any one shard the
  // completion times must be monotonic in id (batches are formed FIFO
  // and executed serially per shard).
  constexpr std::size_t kRequests = 150;
  std::vector<std::future<InferenceResult>> futs;
  for (std::size_t id = 0; id < kRequests; ++id)
    futs.push_back(server.submit(f.codes_for(id), 1));

  std::map<int, Clock::time_point> last_done;
  for (std::size_t id = 0; id < futs.size(); ++id) {
    const InferenceResult res = futs[id].get();
    EXPECT_EQ(res.outputs, f.expected(id % f.pool.rows, 1));
    const auto it = last_done.find(res.worker_id);
    if (it != last_done.end()) {
      EXPECT_LE(it->second, res.completed_at)
          << "shard " << res.worker_id
          << " completed request " << id << " before an earlier one";
    }
    last_done[res.worker_id] = res.completed_at;
  }
  server.shutdown();
  EXPECT_EQ(server.metrics().requests, kRequests);
}

// --------------------------------- full pool under seed-driven chaos

TEST(ServeStress, InjectedDelaysShakeInterleavingsBitExact) {
  const std::uint64_t seed = test_seed();
  SCOPED_TRACE(seed_trace(seed));
  const ServeFixture f = ServeFixture::make();

  // Seed-derived delay faults at the queue-push and batch-formed sites
  // reshuffle producer/consumer interleavings deterministically.
  FaultInjector fault(seed);
  fault.arm_random_delays(/*count=*/24, /*max_fire_at=*/200,
                          std::chrono::microseconds(800));

  ServerOptions opts;
  opts.num_workers = 4;
  opts.queue_capacity = 32;
  opts.batcher.max_batch_tokens = 8;
  opts.batcher.max_wait = std::chrono::microseconds(100);
  opts.recovery.fault = &fault;
  InferenceServer server(f.amm, opts);

  constexpr int kClients = 4;
  constexpr std::size_t kPerClient = 60;
  struct Issued {
    std::future<InferenceResult> fut;
    std::size_t first_row;
    std::size_t rows;
  };
  std::vector<std::vector<Issued>> issued(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c)
    clients.emplace_back([&, c] {
      Rng rng(seed + 1000 + static_cast<std::uint64_t>(c));
      for (std::size_t k = 0; k < kPerClient; ++k) {
        const std::size_t rows = 1 + rng.next_below(4);
        const std::size_t first = rng.next_below(f.pool.rows);
        std::vector<std::uint8_t> codes;
        std::size_t r = first;
        for (std::size_t i = 0; i < rows; ++i) {
          codes.insert(codes.end(), f.pool.row(r),
                       f.pool.row(r) + f.pool.cols);
          r = (r + 1) % f.pool.rows;
        }
        issued[static_cast<std::size_t>(c)].push_back(
            {server.submit(std::move(codes), rows), first, rows});
      }
    });
  for (auto& t : clients) t.join();

  std::size_t checked = 0;
  for (auto& shard : issued)
    for (Issued& is : shard) {
      const InferenceResult res = is.fut.get();
      ASSERT_EQ(res.rows, is.rows);
      EXPECT_EQ(res.outputs, f.expected(is.first_row, is.rows))
          << "served output diverged under injected delays";
      checked++;
    }
  EXPECT_EQ(checked, kClients * kPerClient);
  EXPECT_GT(fault.fired(), 0u) << "chaos run injected no delays";
  server.shutdown();
  EXPECT_EQ(server.metrics().requests, kClients * kPerClient);
}

}  // namespace
}  // namespace ssma::serve
