// Admission-layer tests: per-tenant token buckets (deterministic
// injected clock, refill across tenant churn and LRU eviction),
// priority-watermark load shedding, priority-aware queue ordering, the
// pop_compatible starvation guard (regression for the unbounded
// model-affine skip), deadline handling at batch formation, typed
// rejection taxonomy, and the closed-loop offered_rps JSON fix.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "engine/model_registry.hpp"
#include "serve/admission.hpp"
#include "serve/batcher.hpp"
#include "serve/load_generator.hpp"
#include "serve/request_queue.hpp"
#include "serve/server.hpp"
#include "serve_test_util.hpp"

namespace ssma::serve {
namespace {

using namespace std::chrono_literals;

Clock::time_point t0() {
  static const Clock::time_point t = Clock::now();
  return t;
}

constexpr auto kNoDeadline = Clock::time_point::max();

// ------------------------------------------------------- token bucket

TEST(AdmissionTest, TokenBucketRefillsAtConfiguredRate) {
  AdmissionOptions opts;
  opts.tenants["t"] = TenantConfig{/*tokens_per_sec=*/10.0,
                                   /*burst_tokens=*/20.0,
                                   Priority::kNormal};
  AdmissionController adm(opts);

  // Full burst up front, then empty.
  auto now = t0();
  EXPECT_TRUE(adm.admit("t", 20, now, kNoDeadline, 0, 100).admitted);
  auto out = adm.admit("t", 1, now, kNoDeadline, 0, 100);
  EXPECT_FALSE(out.admitted);
  EXPECT_EQ(out.reason, RejectReason::kRateLimited);

  // 1 s of refill at 10 tok/s buys exactly 10 rows.
  now += 1s;
  EXPECT_TRUE(adm.admit("t", 10, now, kNoDeadline, 0, 100).admitted);
  EXPECT_FALSE(adm.admit("t", 1, now, kNoDeadline, 0, 100).admitted);

  // Refill clamps at the burst cap no matter how long the idle.
  now += 3600s;
  EXPECT_TRUE(adm.admit("t", 20, now, kNoDeadline, 0, 100).admitted);
  EXPECT_FALSE(adm.admit("t", 1, now, kNoDeadline, 0, 100).admitted);

  const AdmissionStats st = adm.stats();
  EXPECT_EQ(st.admitted, 3u);
  EXPECT_EQ(st.rejects[static_cast<std::size_t>(
                RejectReason::kRateLimited)],
            3u);
}

TEST(AdmissionTest, DefaultTenantIsUnlimitedByDefault) {
  AdmissionController adm(AdmissionOptions{});
  const auto now = t0();
  for (int i = 0; i < 1000; ++i)
    ASSERT_TRUE(
        adm.admit("anyone", 1000, now, kNoDeadline, 0, 100).admitted);
}

TEST(AdmissionTest, TokenBucketRefillAcrossTenantChurn) {
  // Dynamic (default-policy) tenants are tracked LRU up to the bound;
  // an evicted tenant that returns gets a fresh burst — the documented
  // bounded over-admit — while a *configured* tenant's bucket survives
  // any amount of churn.
  AdmissionOptions opts;
  opts.default_tenant =
      TenantConfig{/*tokens_per_sec=*/1.0, /*burst_tokens=*/5.0,
                   Priority::kNormal};
  opts.tenants["vip"] = TenantConfig{1.0, 5.0, Priority::kHigh};
  opts.max_tracked_tenants = 2;
  AdmissionController adm(opts);

  const auto now = t0();
  // Drain vip's and a's buckets completely.
  EXPECT_TRUE(adm.admit("vip", 5, now, kNoDeadline, 0, 100).admitted);
  EXPECT_FALSE(adm.admit("vip", 1, now, kNoDeadline, 0, 100).admitted);
  EXPECT_TRUE(adm.admit("a", 5, now, kNoDeadline, 0, 100).admitted);
  EXPECT_FALSE(adm.admit("a", 1, now, kNoDeadline, 0, 100).admitted);

  // Churn: b and c push a out of the 2-slot LRU.
  EXPECT_TRUE(adm.admit("b", 1, now, kNoDeadline, 0, 100).admitted);
  EXPECT_TRUE(adm.admit("c", 1, now, kNoDeadline, 0, 100).admitted);
  EXPECT_GE(adm.stats().evicted_tenants, 1u);

  // a returns post-eviction: full burst again (no refill time passed).
  EXPECT_TRUE(adm.admit("a", 5, now, kNoDeadline, 0, 100).admitted);

  // vip is configured, never evicted: its bucket is still empty.
  EXPECT_FALSE(adm.admit("vip", 1, now, kNoDeadline, 0, 100).admitted);
  // ...and refills on schedule.
  EXPECT_TRUE(
      adm.admit("vip", 2, now + 2s, kNoDeadline, 0, 100).admitted);
}

// -------------------------------------------------- watermark shedding

TEST(AdmissionTest, ShedsByPriorityWatermark) {
  AdmissionOptions opts;  // defaults: high 1.01, normal 0.75, low 0.5
  opts.tenants["gold"] = TenantConfig{0.0, 0.0, Priority::kHigh};
  opts.tenants["free"] = TenantConfig{0.0, 0.0, Priority::kLow};
  AdmissionController adm(opts);
  const auto now = t0();

  // Below every watermark: everyone passes.
  EXPECT_TRUE(adm.admit("free", 1, now, kNoDeadline, 49, 100).admitted);
  // Depth 50/100 >= 0.5: low sheds, normal and high pass.
  auto out = adm.admit("free", 1, now, kNoDeadline, 50, 100);
  EXPECT_FALSE(out.admitted);
  EXPECT_EQ(out.reason, RejectReason::kQueueFull);
  EXPECT_EQ(out.priority, Priority::kLow);
  EXPECT_TRUE(adm.admit("anon", 1, now, kNoDeadline, 50, 100).admitted);
  EXPECT_TRUE(adm.admit("gold", 1, now, kNoDeadline, 50, 100).admitted);
  // Depth 75: normal sheds too, high still passes.
  EXPECT_FALSE(adm.admit("anon", 1, now, kNoDeadline, 75, 100).admitted);
  EXPECT_TRUE(adm.admit("gold", 1, now, kNoDeadline, 75, 100).admitted);
  // Even a brim-full queue never depth-sheds high (watermark > 1): the
  // bounded queue's own kQueueFull handles the true limit.
  EXPECT_TRUE(adm.admit("gold", 1, now, kNoDeadline, 100, 100).admitted);
}

TEST(AdmissionTest, ExpiredDeadlineRefusedBeforeBucketDebit) {
  AdmissionOptions opts;
  opts.tenants["t"] = TenantConfig{10.0, 10.0, Priority::kNormal};
  AdmissionController adm(opts);
  const auto now = t0();
  const auto out = adm.admit("t", 5, now, now - 1ms, 0, 100);
  EXPECT_FALSE(out.admitted);
  EXPECT_EQ(out.reason, RejectReason::kDeadlineExpired);
  // The refusal must not have debited the bucket.
  EXPECT_TRUE(adm.admit("t", 10, now, kNoDeadline, 0, 100).admitted);
}

// ------------------------------------------------------ queue ordering

class AdmissionQueueTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fix_ = std::make_unique<ServeFixture>(ServeFixture::make());
    registry_.register_model("hot", fix_->amm);
    registry_.register_model("cold", fix_->amm);
    hot_ = registry_.resolve("hot");
    cold_ = registry_.resolve("cold");
  }

  InferenceRequest make_req(std::uint64_t id, engine::ModelRef model,
                            Priority pri = Priority::kNormal,
                            Clock::time_point deadline = kNoDeadline) {
    InferenceRequest r;
    r.id = id;
    r.rows = 1;
    r.codes = fix_->codes_for(id);
    r.model = std::move(model);
    r.enqueued_at = Clock::now();
    r.priority = pri;
    r.deadline = deadline;
    return r;
  }

  std::unique_ptr<ServeFixture> fix_;
  engine::ModelRegistry registry_;
  engine::ModelRef hot_, cold_;
};

TEST_F(AdmissionQueueTest, PopWaitServesMostUrgentClassFirst) {
  RequestQueue q(16);
  ASSERT_TRUE(q.push(make_req(1, hot_, Priority::kLow)));
  ASSERT_TRUE(q.push(make_req(2, hot_, Priority::kNormal)));
  ASSERT_TRUE(q.push(make_req(3, hot_, Priority::kHigh)));
  ASSERT_TRUE(q.push(make_req(4, hot_, Priority::kHigh)));

  InferenceRequest out;
  ASSERT_EQ(q.pop_wait(&out), PopStatus::kOk);
  EXPECT_EQ(out.id, 3u);  // oldest high
  ASSERT_EQ(q.pop_wait(&out), PopStatus::kOk);
  EXPECT_EQ(out.id, 4u);
  ASSERT_EQ(q.pop_wait(&out), PopStatus::kOk);
  EXPECT_EQ(out.id, 2u);  // then normal
  ASSERT_EQ(q.pop_wait(&out), PopStatus::kOk);
  EXPECT_EQ(out.id, 1u);  // low last
}

TEST_F(AdmissionQueueTest, PopCompatibleExpiredDeadlineReturnsWithoutBlocking) {
  RequestQueue q(4);
  InferenceRequest out;
  const auto start = Clock::now();
  // Empty queue + a wait deadline already in the past: must return
  // kTimeout immediately, not park on the condition variable.
  EXPECT_EQ(q.pop_compatible(8, start - 1s, &out), PopStatus::kTimeout);
  EXPECT_LT(Clock::now() - start, 200ms);
}

TEST_F(AdmissionQueueTest, StarvationGuardStopsModelAffineSkipping) {
  // Regression for the unbounded skip: a cold model's aged head used to
  // be hopped over indefinitely while hot-model traffic kept batching.
  RequestQueue q(16);
  ASSERT_TRUE(q.push(make_req(1, hot_)));
  InferenceRequest cold_req = make_req(2, cold_);
  cold_req.enqueued_at = Clock::now() - 10ms;  // aged past the bound
  ASSERT_TRUE(q.push(std::move(cold_req)));
  ASSERT_TRUE(q.push(make_req(3, hot_)));
  ASSERT_TRUE(q.push(make_req(4, hot_)));

  BatcherOptions bopts;
  bopts.max_batch_tokens = 8;
  bopts.max_wait = std::chrono::microseconds(2000);
  bopts.max_skip_age = std::chrono::microseconds(5000);  // 5 ms
  const Batcher batcher(bopts);

  // Pre-fix this coalesced [1, 3, 4]; the guard must close the batch at
  // the aged cold head instead.
  Batch b1 = batcher.next_batch(q);
  ASSERT_EQ(b1.requests.size(), 1u);
  EXPECT_EQ(b1.requests[0].id, 1u);

  // The starved request is served next, at the head of its own batch.
  Batch b2 = batcher.next_batch(q);
  ASSERT_GE(b2.requests.size(), 1u);
  EXPECT_EQ(b2.requests[0].id, 2u);
}

TEST_F(AdmissionQueueTest, FreshOtherModelTrafficStillSkipsAndCoalesces) {
  // Control for the guard: a *fresh* other-model request must not block
  // coalescing (that would destroy multi-model batching).
  RequestQueue q(16);
  ASSERT_TRUE(q.push(make_req(1, hot_)));
  ASSERT_TRUE(q.push(make_req(2, cold_)));
  ASSERT_TRUE(q.push(make_req(3, hot_)));

  BatcherOptions bopts;
  bopts.max_batch_tokens = 2;
  bopts.max_wait = std::chrono::microseconds(200);
  bopts.max_skip_age = std::chrono::microseconds(1000000);  // 1 s
  const Batcher batcher(bopts);

  Batch b = batcher.next_batch(q);
  ASSERT_EQ(b.requests.size(), 2u);
  EXPECT_EQ(b.requests[0].id, 1u);
  EXPECT_EQ(b.requests[1].id, 3u);
  EXPECT_EQ(q.size(), 1u);  // cold stays queued for its own batch
}

TEST_F(AdmissionQueueTest, OversizedFirstRequestServedAlone) {
  RequestQueue q(4);
  InferenceRequest big = make_req(1, hot_);
  big.rows = 32;
  big.codes = std::vector<std::uint8_t>(32 * fix_->pool.cols, 0);
  ASSERT_TRUE(q.push(std::move(big)));

  BatcherOptions bopts;
  bopts.max_batch_tokens = 8;  // budget far below the request
  bopts.max_wait = std::chrono::microseconds(100);
  const Batcher batcher(bopts);
  Batch b = batcher.next_batch(q);
  ASSERT_EQ(b.requests.size(), 1u);
  EXPECT_EQ(b.tokens, 32u);
}

TEST_F(AdmissionQueueTest, ExpiredRequestsDroppedAtFormationWithTypedError) {
  RequestQueue q(16);
  InferenceRequest doomed = make_req(7, hot_, Priority::kNormal,
                                     Clock::now() - 1ms);
  std::future<InferenceResult> doomed_fut = doomed.result.get_future();
  bool hook_fired = false;
  doomed.on_done = [&](const InferenceResult* res,
                       const std::exception_ptr& err) {
    hook_fired = true;
    EXPECT_EQ(res, nullptr);
    EXPECT_TRUE(err != nullptr);
  };
  ASSERT_TRUE(q.push(std::move(doomed)));
  ASSERT_TRUE(q.push(make_req(8, hot_)));

  BatcherOptions bopts;
  bopts.max_wait = std::chrono::microseconds(100);
  const Batcher batcher(bopts);
  Batch b = batcher.next_batch(q);
  ASSERT_EQ(b.requests.size(), 1u);
  EXPECT_EQ(b.requests[0].id, 8u);
  EXPECT_EQ(b.expired, 1u);
  EXPECT_TRUE(hook_fired);
  try {
    doomed_fut.get();
    FAIL() << "expired request must not resolve";
  } catch (const RejectedError& e) {
    EXPECT_EQ(e.reason(), RejectReason::kDeadlineExpired);
  }
}

// ----------------------------------------------------- typed rejections

TEST(RejectTaxonomyTest, ShutdownErrorIsARejectedError) {
  InferenceServer server{ServerOptions{}};
  server.shutdown();
  ServeFixture f = ServeFixture::make();
  server.registry().register_model("m", f.amm);
  auto fut = server.submit("m", f.codes_for(0), 1);
  try {
    fut.get();
    FAIL() << "submit after shutdown must reject";
  } catch (const RejectedError& e) {  // catchable as the generic type
    EXPECT_EQ(e.reason(), RejectReason::kShutdown);
  }
}

TEST(RejectTaxonomyTest, ReasonNamesAreStable) {
  EXPECT_STREQ(reject_reason_name(RejectReason::kShutdown), "shutdown");
  EXPECT_STREQ(reject_reason_name(RejectReason::kRateLimited),
               "rate_limited");
  EXPECT_STREQ(reject_reason_name(RejectReason::kQueueFull),
               "queue_full");
  EXPECT_STREQ(reject_reason_name(RejectReason::kDeadlineExpired),
               "deadline_expired");
  EXPECT_STREQ(reject_reason_name(RejectReason::kUnknownModel),
               "unknown_model");
  EXPECT_STREQ(reject_reason_name(RejectReason::kMalformed),
               "malformed");
}

TEST(RejectTaxonomyTest, NonblockingSubmitRejectsWhenQueueFull) {
  ServeFixture f = ServeFixture::make();
  ServerOptions opts;
  opts.num_workers = 1;
  opts.queue_capacity = 2;
  opts.engine.backend = engine::Backend::kDevicePaced;
  opts.engine.device_ns_per_token = 50'000'000;  // 50 ms/token: wedge it
  InferenceServer server(opts);
  server.register_model("m", f.amm);
  const engine::ModelRef m = server.registry().resolve("m");

  // Fill the queue past capacity, then a nonblocking submit must come
  // back kQueueFull instead of parking the caller.
  std::vector<std::future<InferenceResult>> futs;
  bool saw_queue_full = false;
  for (int i = 0; i < 32 && !saw_queue_full; ++i) {
    SubmitExtras ex;
    ex.nonblocking = true;
    auto fut = server.submit(m, f.codes_for(0), 1, std::move(ex));
    if (fut.wait_for(std::chrono::seconds(0)) ==
        std::future_status::ready) {
      try {
        fut.get();
      } catch (const RejectedError& e) {
        EXPECT_EQ(e.reason(), RejectReason::kQueueFull);
        saw_queue_full = true;
      }
    } else {
      futs.push_back(std::move(fut));
    }
  }
  EXPECT_TRUE(saw_queue_full);
  EXPECT_GE(server.metrics().rejects[static_cast<std::size_t>(
                RejectReason::kQueueFull)],
            1u);
  server.shutdown();
}

// ------------------------------------------------------- offered_rps

TEST(LoadReportJsonTest, ClosedLoopOfferedRpsIsNullNotZero) {
  LoadReport r;  // closed-loop reports leave open_loop false
  const std::string j = r.json();
  EXPECT_NE(j.find("\"offered_rps\":null"), std::string::npos)
      << "closed-loop cells must not report a measured-looking 0: " << j;

  LoadReport open;
  open.open_loop = true;
  open.offered_rps = 1234.5;
  EXPECT_NE(open.json().find("\"offered_rps\":1234.500"),
            std::string::npos)
      << open.json();
}

}  // namespace
}  // namespace ssma::serve
