// Tests for the calibrated technology/PPA models, including golden-number
// checks against the paper's published results (Table I, Table II, Fig. 6,
// Fig. 7). Tolerances are stated per anchor; see DESIGN.md §5.
#include <gtest/gtest.h>

#include <cmath>

#include "ppa/analytic_perf.hpp"
#include "ppa/area_model.hpp"
#include "ppa/corner.hpp"
#include "ppa/delay_model.hpp"
#include "ppa/energy_model.hpp"
#include "util/check.hpp"

namespace ssma::ppa {
namespace {

double rel_err(double measured, double expected) {
  return std::abs(measured - expected) / std::abs(expected);
}

// ---------------------------------------------------------------- corners

TEST(Corner, NamesRoundTrip) {
  for (Corner c : {Corner::TTG, Corner::FFG, Corner::SSG, Corner::SFG,
                   Corner::FSG}) {
    EXPECT_EQ(corner_from_name(corner_name(c)), c);
  }
  EXPECT_THROW(corner_from_name("XXX"), CheckError);
}

TEST(Corner, FastCornersLowerVth) {
  EXPECT_LT(corner_params(Corner::FFG).dvth_n, 0.0);
  EXPECT_GT(corner_params(Corner::SSG).dvth_n, 0.0);
  // SFG: slow NMOS, fast PMOS.
  EXPECT_GT(corner_params(Corner::SFG).dvth_n, 0.0);
  EXPECT_LT(corner_params(Corner::SFG).dvth_p, 0.0);
}

TEST(Corner, LeakageOrderingAndTemperature) {
  OperatingPoint ff{0.5, Corner::FFG, 25.0};
  OperatingPoint tt{0.5, Corner::TTG, 25.0};
  OperatingPoint ss{0.5, Corner::SSG, 25.0};
  EXPECT_GT(leakage_multiplier(ff), leakage_multiplier(tt));
  EXPECT_LT(leakage_multiplier(ss), leakage_multiplier(tt));
  OperatingPoint hot{0.5, Corner::TTG, 45.0};
  EXPECT_NEAR(leakage_multiplier(hot), 2.0, 1e-9);  // doubles per 20K
}

// ------------------------------------------------------------ delay model

TEST(DelayModel, ScaleIsOneAtReference) {
  OperatingPoint ref = nominal_05v();
  EXPECT_NEAR(delay_scale(DelayClass::kEncoder, ref), 1.0, 1e-12);
  EXPECT_NEAR(delay_scale(DelayClass::kDecoder, ref), 1.0, 1e-12);
}

TEST(DelayModel, DelayDecreasesMonotonicallyWithVdd) {
  double prev_e = 1e9, prev_d = 1e9;
  for (double v = 0.5; v <= 1.01; v += 0.05) {
    OperatingPoint op{v, Corner::TTG, 25.0};
    const double e = delay_scale(DelayClass::kEncoder, op);
    const double d = delay_scale(DelayClass::kDecoder, op);
    EXPECT_LT(e, prev_e);
    EXPECT_LT(d, prev_d);
    prev_e = e;
    prev_d = d;
  }
}

TEST(DelayModel, CornerOrderingFFGFasterSSGSlower) {
  OperatingPoint ff{0.6, Corner::FFG, 25.0};
  OperatingPoint tt{0.6, Corner::TTG, 25.0};
  OperatingPoint ss{0.6, Corner::SSG, 25.0};
  for (auto cls : {DelayClass::kEncoder, DelayClass::kDecoder}) {
    EXPECT_LT(delay_scale(cls, ff), delay_scale(cls, tt));
    EXPECT_GT(delay_scale(cls, ss), delay_scale(cls, tt));
  }
}

TEST(DelayModel, TemperatureSlowsDelay) {
  OperatingPoint cold{0.6, Corner::TTG, 25.0};
  OperatingPoint hot{0.6, Corner::TTG, 85.0};
  EXPECT_GT(delay_scale(DelayClass::kDecoder, hot),
            delay_scale(DelayClass::kDecoder, cold));
}

TEST(DelayModel, SubthresholdRegimeExplodesButStaysFinite) {
  // Below the effective threshold the exponential extension takes over:
  // delays blow up (the circuit still functions, self-timed) but remain
  // finite and monotone.
  OperatingPoint op{0.30, Corner::TTG, 25.0};
  const double sub = delay_scale(DelayClass::kDecoder, op);
  EXPECT_TRUE(std::isfinite(sub));
  EXPECT_GT(sub, 50.0);  // vs 1.0 at the 0.5 V reference
  OperatingPoint deeper{0.25, Corner::TTG, 25.0};
  EXPECT_GT(delay_scale(DelayClass::kDecoder, deeper), sub);
  OperatingPoint absurd{0.01, Corner::TTG, 25.0};
  EXPECT_THROW(delay_scale(DelayClass::kDecoder, absurd), CheckError);
}

TEST(DelayModel, DlcDepthMonotone) {
  DelayModel m(nominal_05v());
  double prev = 0.0;
  for (int depth = 1; depth <= 8; ++depth) {
    const double d = m.dlc_eval_ns(depth);
    EXPECT_GT(d, prev);
    prev = d;
  }
  EXPECT_THROW(m.dlc_eval_ns(0), CheckError);
  EXPECT_THROW(m.dlc_eval_ns(9), CheckError);
}

TEST(DelayModel, EncoderBoundsMatchPaper) {
  // DESIGN.md §5: encoder best 7.4 ns / worst 21.7 ns at 0.5 V TTG.
  DelayModel m(nominal_05v());
  EXPECT_NEAR(m.encoder_best_ns(), 7.4, 0.01);
  EXPECT_NEAR(m.encoder_worst_ns(), 21.7, 0.01);
}

TEST(DelayModel, DecoderPathMatchesCalibration) {
  DelayModel m(nominal_05v());
  EXPECT_NEAR(m.decoder_path_ns(4), 8.70, 0.01);
  EXPECT_NEAR(m.decoder_path_ns(16), 10.40, 0.01);
}

TEST(DelayModel, Fig7bBlockLatencies) {
  // Fig. 7B: Ndec=4: 16.1/30.4 ns; Ndec=16: 17.8/32.1 ns (0.5 V TTG).
  DelayModel m(nominal_05v());
  EXPECT_NEAR(m.block_latency_best_ns(4), 16.1, 0.05);
  EXPECT_NEAR(m.block_latency_worst_ns(4), 30.4, 0.05);
  EXPECT_NEAR(m.block_latency_best_ns(16), 17.8, 0.05);
  EXPECT_NEAR(m.block_latency_worst_ns(16), 32.1, 0.05);
}

TEST(DelayModel, Table2FrequenciesBothVoltages) {
  // Table II: 31.2-56.2 MHz @0.5 V and 144-353 MHz @0.8 V (Ndec=16).
  DelayModel m05(nominal_05v());
  EXPECT_LT(rel_err(1e3 / m05.block_latency_worst_ns(16), 31.2), 0.02);
  EXPECT_LT(rel_err(1e3 / m05.block_latency_best_ns(16), 56.2), 0.02);
  DelayModel m08(nominal_08v());
  EXPECT_LT(rel_err(1e3 / m08.block_latency_worst_ns(16), 144.0), 0.03);
  EXPECT_LT(rel_err(1e3 / m08.block_latency_best_ns(16), 353.0), 0.03);
}

TEST(DelayModel, RcaChainBounds) {
  DelayModel m(nominal_05v());
  EXPECT_GT(m.rca_ns(16), m.rca_ns(0));
  EXPECT_THROW(m.rca_ns(17), CheckError);
}

// ------------------------------------------------------------ energy model

TEST(EnergyModel, DynamicScalesQuadratically) {
  EnergyModel e05(nominal_05v());
  EnergyModel e10({1.0, Corner::TTG, 25.0});
  EXPECT_NEAR(e10.column_read_fj() / e05.column_read_fj(), 4.0, 1e-9);
  EXPECT_NEAR(e10.latch_fj() / e05.latch_fj(), 4.0, 1e-9);
}

TEST(EnergyModel, DecoderLookupIs90fJAtReference) {
  EnergyModel e(nominal_05v());
  EXPECT_NEAR(e.decoder_lookup_avg_fj(), 90.0, 0.5);
}

TEST(EnergyModel, CsaEnergyDataDependent) {
  EnergyModel e(nominal_05v());
  EXPECT_LT(e.csa_fj(0), e.csa_fj(16));
  EXPECT_LT(e.csa_fj(16), e.csa_fj(32));
  EXPECT_NEAR(e.csa_fj(16), 16.0, 1e-9);  // random-data average
  EXPECT_THROW(e.csa_fj(33), CheckError);
}

TEST(EnergyModel, LeakageScalesWithNdecAndCorner) {
  EnergyModel e(nominal_05v());
  EXPECT_GT(e.block_leakage_uw(16), e.block_leakage_uw(4));
  EnergyModel eff({0.5, Corner::FFG, 25.0});
  EXPECT_GT(eff.block_leakage_uw(16), e.block_leakage_uw(16));
  EXPECT_NEAR(e.macro_leakage_uw(16, 32), 32.0 * e.block_leakage_uw(16),
              1e-9);
}

// -------------------------------------------------------------- area model

TEST(AreaModel, FlagshipCoreAreaMatchesPaper) {
  AreaModel a;
  // Paper: 0.20 mm^2 core, 64 kb SRAM @ (Ndec=16, NS=32).
  EXPECT_NEAR(a.core_mm2(16, 32), 0.20, 0.002);
  EXPECT_EQ(a.sram_bits(16, 32), 64 * 1024);
  // Total chip 0.66 mm^2.
  EXPECT_NEAR(a.chip_mm2(16, 32), 0.66, 0.02);
}

TEST(AreaModel, Fig7cDecoderShares) {
  AreaModel a;
  // Fig. 7C: decoder area share 56.9% @Ndec=4 -> 82.9% @Ndec=16 (NS=32).
  EXPECT_NEAR(a.macro_area(4, 32).decoder_share(), 0.569, 0.01);
  EXPECT_NEAR(a.macro_area(16, 32).decoder_share(), 0.829, 0.005);
}

TEST(AreaModel, AreaMonotoneInParameters) {
  AreaModel a;
  EXPECT_GT(a.core_mm2(8, 32), a.core_mm2(4, 32));
  EXPECT_GT(a.core_mm2(4, 64), a.core_mm2(4, 32));
}

// ------------------------------------------------------- analytic envelope

struct Table1Golden {
  int ndec;
  double vdd;
  double tops_per_w;   // paper Table I
  double tops_per_mm2; // paper Table I
};

class Table1Test : public ::testing::TestWithParam<Table1Golden> {};

TEST_P(Table1Test, EnergyAndAreaEfficiencyMatchPaper) {
  const auto g = GetParam();
  AnalyticPerf perf({g.ndec, 32}, {g.vdd, Corner::TTG, 25.0});
  const PerfEnvelope env = perf.envelope();
  // Energy efficiency reproduces to <= 1.5%; area efficiency to <= 8%
  // (the paper's Table I/Fig. 7 latency data are not perfectly mutually
  // consistent at Ndec=4/32 — see EXPERIMENTS.md).
  EXPECT_LT(rel_err(env.avg_tops_per_w, g.tops_per_w), 0.015)
      << "TOPS/W: got " << env.avg_tops_per_w << " want " << g.tops_per_w;
  EXPECT_LT(rel_err(env.avg_tops_per_mm2, g.tops_per_mm2), 0.08)
      << "TOPS/mm2: got " << env.avg_tops_per_mm2 << " want "
      << g.tops_per_mm2;
}

INSTANTIATE_TEST_SUITE_P(
    PaperTable1, Table1Test,
    ::testing::Values(Table1Golden{4, 0.5, 167.5, 1.4},
                      Table1Golden{8, 0.5, 171.8, 1.8},
                      Table1Golden{16, 0.5, 174.0, 2.0},
                      Table1Golden{32, 0.5, 174.9, 2.0},
                      Table1Golden{4, 0.8, 73.0, 8.7},
                      Table1Golden{8, 0.8, 74.4, 10.8},
                      Table1Golden{16, 0.8, 75.1, 11.3},
                      Table1Golden{32, 0.8, 75.4, 11.5}));

struct Fig6Golden {
  double vdd;
  double tops_per_w;
  double tops_per_mm2;
};

class Fig6Test : public ::testing::TestWithParam<Fig6Golden> {};

TEST_P(Fig6Test, VoltageSweepEfficiency) {
  const auto g = GetParam();
  // Fig. 6 uses Ndec=4, NS=4 at TTG.
  AnalyticPerf perf({4, 4}, {g.vdd, Corner::TTG, 25.0});
  const PerfEnvelope env = perf.envelope();
  EXPECT_LT(rel_err(env.avg_tops_per_w, g.tops_per_w), 0.04)
      << "TOPS/W: got " << env.avg_tops_per_w << " want " << g.tops_per_w;
  // Area efficiency (throughput-driven) holds within 20% across the
  // sweep; the paper's own best/worst frequency pairs constrain the model
  // tightly only at 0.5/0.8 V, and its 0.9/1.0 V points deviate from any
  // single alpha-power law through those anchors (see EXPERIMENTS.md).
  EXPECT_LT(rel_err(env.avg_tops_per_mm2, g.tops_per_mm2), 0.20)
      << "TOPS/mm2: got " << env.avg_tops_per_mm2 << " want "
      << g.tops_per_mm2;
}

INSTANTIATE_TEST_SUITE_P(PaperFig6, Fig6Test,
                         ::testing::Values(Fig6Golden{0.5, 164.0, 1.45},
                                           Fig6Golden{0.6, 123.0, 3.46},
                                           Fig6Golden{0.7, 92.8, 5.94},
                                           Fig6Golden{0.8, 72.2, 8.55},
                                           Fig6Golden{0.9, 57.5, 11.03},
                                           Fig6Golden{1.0, 46.6, 13.25}));

TEST(AnalyticPerf, Table2FlagshipNumbers) {
  // Proposed column of Table II @ (Ndec=16, NS=32).
  AnalyticPerf p05({16, 32}, nominal_05v());
  const auto e05 = p05.envelope();
  EXPECT_LT(rel_err(e05.worst.throughput_tops, 0.28), 0.04);
  EXPECT_LT(rel_err(e05.best.throughput_tops, 0.51), 0.04);
  EXPECT_LT(rel_err(e05.avg_tops_per_w, 174.0), 0.01);
  EXPECT_LT(rel_err(e05.avg_tops_per_mm2, 2.01), 0.02);

  AnalyticPerf p08({16, 32}, nominal_08v());
  const auto e08 = p08.envelope();
  EXPECT_LT(rel_err(e08.worst.throughput_tops, 1.33), 0.03);
  EXPECT_LT(rel_err(e08.best.throughput_tops, 3.26), 0.03);
  EXPECT_LT(rel_err(e08.avg_tops_per_w, 75.1), 0.01);
  EXPECT_LT(rel_err(e08.avg_tops_per_mm2, 11.34), 0.03);
}

TEST(AnalyticPerf, Fig7aEnergyBreakdownDecoderDominates) {
  // Fig. 7A: decoder >= 94% of energy at 0.5 V, NS=32; share grows with
  // Ndec (94.2% @4 -> 97.7% @16).
  AnalyticPerf p4({4, 32}, nominal_05v());
  AnalyticPerf p16({16, 32}, nominal_05v());
  const auto b4 = p4.energy_breakdown();
  const auto b16 = p16.energy_breakdown();
  EXPECT_GT(b4.decoder_share(), 0.90);
  EXPECT_GT(b16.decoder_share(), b4.decoder_share());
  EXPECT_GT(b16.decoder_share(), 0.95);
  // Encoder energy/op: Table II reports 0.054 fJ @0.5 V (Ndec=16).
  EXPECT_NEAR(b16.encoder_fj, 0.054, 0.02);
}

TEST(AnalyticPerf, EnergyPerOpMatchesTable2DecoderRow) {
  // Table II: decoder 5.6 fJ/op @0.5 V, 14.7 fJ/op @0.8 V (Ndec=16).
  AnalyticPerf p05({16, 32}, nominal_05v());
  EXPECT_LT(rel_err(p05.energy_breakdown().decoder_fj, 5.6), 0.03);
  AnalyticPerf p08({16, 32}, nominal_08v());
  EXPECT_LT(rel_err(p08.energy_breakdown().decoder_fj, 14.7), 0.14);
}

TEST(AnalyticPerf, OpsAccounting) {
  AnalyticPerf p({16, 32}, nominal_05v());
  EXPECT_EQ(p.ops_per_token(), 32LL * 16 * 18);
}

TEST(AnalyticPerf, EnergyEfficiencyNearlyCornerInvariant) {
  // Fig. 6's observation: TOPS/W depends mainly on VDD, not corner.
  for (double v : {0.5, 0.8}) {
    AnalyticPerf tt({4, 4}, {v, Corner::TTG, 25.0});
    AnalyticPerf ff({4, 4}, {v, Corner::FFG, 25.0});
    AnalyticPerf ss({4, 4}, {v, Corner::SSG, 25.0});
    const double t = tt.envelope().avg_tops_per_w;
    EXPECT_LT(rel_err(ff.envelope().avg_tops_per_w, t), 0.08);
    EXPECT_LT(rel_err(ss.envelope().avg_tops_per_w, t), 0.08);
  }
}

TEST(AnalyticPerf, CornerSpreadsAreaEfficiency) {
  // Latency (hence TOPS/mm^2) is corner sensitive: FFG fastest.
  AnalyticPerf tt({4, 4}, {0.5, Corner::TTG, 25.0});
  AnalyticPerf ff({4, 4}, {0.5, Corner::FFG, 25.0});
  AnalyticPerf ss({4, 4}, {0.5, Corner::SSG, 25.0});
  EXPECT_GT(ff.envelope().avg_tops_per_mm2, tt.envelope().avg_tops_per_mm2);
  EXPECT_LT(ss.envelope().avg_tops_per_mm2, tt.envelope().avg_tops_per_mm2);
}

}  // namespace
}  // namespace ssma::ppa
