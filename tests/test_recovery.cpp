// Checkpoint/recovery tests: CRC framing, checkpoint versioning with
// torn-write fallback, journal replay with torn-tail tolerance, the
// crash-at-every-point matrix (a fault injected after each pipeline
// stage — enqueue / batch / execute / ack — with supervised in-process
// recovery), the hard-crash restart + journal-replay path, and the
// golden-file regression for the checkpoint format. The recovery
// contract under test: every acknowledged or replayed response is
// bit-exact vs a fault-free single-threaded Amm::apply_int16 run.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <thread>
#include <vector>

#include "engine/model_registry.hpp"
#include "engine/pipeline.hpp"
#include "maddness/framing.hpp"
#include "serve/recovery/checkpoint.hpp"
#include "serve/recovery/fault_injector.hpp"
#include "serve/recovery/journal.hpp"
#include "serve/recovery/recovery.hpp"
#include "serve/replication/replica_applier.hpp"
#include "serve/replication/replication.hpp"
#include "serve/server.hpp"
#include "serve_test_util.hpp"

// These suites deliberately keep exercising the deprecated v1
// one-model constructor — it is the compatibility shim under test.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"


namespace ssma::serve {
namespace {

using recovery::AcceptedRecord;
using recovery::CheckpointManager;
using recovery::CheckpointState;
using recovery::FaultInjector;
using recovery::FaultKind;
using recovery::FaultPlan;
using recovery::FaultSite;
using recovery::RequestJournal;

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.is_open()) << path;
  std::ostringstream oss;
  oss << is.rdbuf();
  return oss.str();
}

// ------------------------------------------------------------- framing

TEST(Framing, Crc32MatchesKnownVector) {
  // The canonical CRC-32 check value.
  EXPECT_EQ(maddness::crc32(std::string("123456789")), 0xCBF43926u);
  EXPECT_EQ(maddness::crc32(std::string()), 0u);
}

TEST(Framing, FramedBlobRoundTripAndCorruptionDetected) {
  std::ostringstream os;
  maddness::write_framed_blob(os, "hello, shard");
  std::string bytes = os.str();
  {
    std::istringstream is(bytes);
    EXPECT_EQ(maddness::read_framed_blob(is), "hello, shard");
  }
  // Flip one payload bit -> CRC must catch it.
  bytes[bytes.size() - 3] ^= 0x40;
  std::istringstream is(bytes);
  std::string out;
  EXPECT_FALSE(maddness::try_read_framed_blob(is, &out));
}

TEST(Framing, CorruptLengthHeaderIsTornNotOom) {
  // A bit-rotted length field far larger than the stream must come
  // back as a torn frame, never as a giant allocation or a throw.
  std::string bytes(12, '\0');
  bytes[3] = static_cast<char>(0xFF);  // len = 0xFF000000
  bytes += "short";
  std::istringstream is(bytes);
  std::string out;
  EXPECT_FALSE(maddness::try_read_framed_blob(is, &out));
}

TEST(Framing, AmmBlobIsSelfValidating) {
  const ServeFixture f = ServeFixture::make();
  std::ostringstream os;
  f.amm.save(os);
  std::string blob = os.str();
  {
    std::istringstream is(blob);
    const maddness::Amm replica = maddness::Amm::load(is);
    EXPECT_EQ(replica.apply_int16(f.pool), f.amm.apply_int16(f.pool));
  }
  // A single flipped byte deep in the payload fails the frame CRC
  // instead of silently corrupting LUT entries.
  blob[blob.size() / 2] ^= 0x01;
  std::istringstream is(blob);
  EXPECT_THROW(maddness::Amm::load(is), CheckError);
}

// --------------------------------------------------------- checkpoints

TEST(Checkpoint, WriteLoadRoundTrip) {
  TmpDir dir("ckpt");
  CheckpointManager mgr(dir.str());
  CheckpointState st;
  st.amm_blob = "not-a-real-blob-but-any-bytes";
  st.next_request_id = 42;
  st.accepted_requests = 40;
  st.completed_requests = 37;
  st.tokens = 80;
  st.batches = 11;
  EXPECT_EQ(mgr.write(st), 1u);
  EXPECT_EQ(mgr.write(st), 2u);

  std::uint64_t version = 0;
  const auto loaded = mgr.load_latest(&version);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(version, 2u);
  EXPECT_EQ(loaded->amm_blob, st.amm_blob);
  EXPECT_EQ(loaded->next_request_id, 42u);
  EXPECT_EQ(loaded->accepted_requests, 40u);
  EXPECT_EQ(loaded->completed_requests, 37u);
  EXPECT_EQ(loaded->tokens, 80u);
  EXPECT_EQ(loaded->batches, 11u);

  // A new manager over the same dir adopts the existing versions.
  CheckpointManager again(dir.str());
  EXPECT_EQ(again.versions(), (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(again.write(st), 3u);
}

TEST(Checkpoint, TornWriteFallsBackToLastValidVersion) {
  TmpDir dir("torn");
  FaultInjector fault(test_seed());
  CheckpointManager mgr(dir.str(), &fault);

  CheckpointState v1;
  v1.amm_blob = std::string(2048, 'a');
  v1.next_request_id = 100;
  EXPECT_EQ(mgr.write(v1), 1u);

  FaultPlan torn;
  torn.site = FaultSite::kCheckpointWrite;
  torn.kind = FaultKind::kTornCheckpoint;
  torn.fire_at = fault.polls(FaultSite::kCheckpointWrite) + 1;
  fault.arm(torn);

  CheckpointState v2 = v1;
  v2.next_request_id = 200;
  EXPECT_EQ(mgr.write(v2), 2u);  // lands torn on disk

  // Strict load of the torn file throws; latest-valid falls back to v1.
  EXPECT_THROW(CheckpointManager::load_file(mgr.path_of(2)), CheckError);
  std::uint64_t version = 0;
  const auto loaded = mgr.load_latest(&version);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(version, 1u);
  EXPECT_EQ(loaded->next_request_id, 100u);

  // A later good write shadows the torn version again.
  CheckpointState v3 = v1;
  v3.next_request_id = 300;
  EXPECT_EQ(mgr.write(v3), 3u);
  ASSERT_TRUE(mgr.load_latest(&version).has_value());
  EXPECT_EQ(version, 3u);
}

// ------------------------------------------------------------- journal

TEST(Journal, ReplaySeparatesUnacknowledgedFromCompleted) {
  TmpDir dir("jnl");
  const std::string path = dir.file("requests.jnl");
  {
    RequestJournal jnl(path);
    jnl.append_accepted(0, 1, {1, 2, 3, 4});
    jnl.append_accepted(1, 2, {5, 6, 7, 8});
    jnl.append_completed(0, /*worker_id=*/2, /*output_crc=*/0xDEAD);
    jnl.append_accepted(2, 1, {9, 9, 9, 9});
  }
  const auto replay = RequestJournal::read(path);
  EXPECT_EQ(replay.accepted, 3u);
  EXPECT_EQ(replay.completed, 1u);
  EXPECT_EQ(replay.max_id, 2u);
  EXPECT_FALSE(replay.torn_tail);
  ASSERT_EQ(replay.unacknowledged.size(), 2u);
  EXPECT_EQ(replay.unacknowledged[0].id, 1u);
  EXPECT_EQ(replay.unacknowledged[0].rows, 2u);
  EXPECT_EQ(replay.unacknowledged[0].codes,
            (std::vector<std::uint8_t>{5, 6, 7, 8}));
  EXPECT_EQ(replay.unacknowledged[1].id, 2u);
  EXPECT_EQ(replay.completed_crc.at(0), 0xDEADu);

  // Reopening appends instead of truncating history.
  {
    RequestJournal again(path);
    again.append_completed(1, 0, 0xBEEF);
  }
  const auto replay2 = RequestJournal::read(path);
  ASSERT_EQ(replay2.unacknowledged.size(), 1u);
  EXPECT_EQ(replay2.unacknowledged[0].id, 2u);
}

TEST(Journal, TornTailIsDroppedNotMisparsed) {
  TmpDir dir("jnltorn");
  const std::string path = dir.file("requests.jnl");
  {
    RequestJournal jnl(path);
    jnl.append_accepted(0, 1, {1, 2, 3, 4});
    jnl.append_accepted(1, 1, {5, 6, 7, 8});
  }
  // Truncate mid-record: the crash tail a real power cut leaves.
  const std::string whole = slurp(path);
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(whole.data(),
           static_cast<std::streamsize>(whole.size() - 7));
  os.close();

  const auto replay = RequestJournal::read(path);
  EXPECT_TRUE(replay.torn_tail);
  EXPECT_EQ(replay.accepted, 1u);
  ASSERT_EQ(replay.unacknowledged.size(), 1u);
  EXPECT_EQ(replay.unacknowledged[0].id, 0u);

  // Missing file == empty journal, not an error.
  const auto none = RequestJournal::read(dir.file("nope.jnl"));
  EXPECT_EQ(none.accepted, 0u);
  EXPECT_FALSE(none.torn_tail);
}

TEST(Journal, ReopenTruncatesTornTailSoNewAppendsStayReadable) {
  TmpDir dir("jnlreopen");
  const std::string path = dir.file("requests.jnl");
  {
    RequestJournal jnl(path);
    jnl.append_accepted(0, 1, {1, 2, 3, 4});
    jnl.append_accepted(1, 1, {5, 6, 7, 8});
  }
  // Crash tail: half of record 2 on disk.
  const std::string whole = slurp(path);
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(whole.data(),
             static_cast<std::streamsize>(whole.size() - 7));
  }
  // Reopening truncates back to the last whole frame — appending after
  // the torn bytes would hide every post-restart record behind the
  // tear (readers stop at the first bad frame) and break the
  // follower's byte-prefix resume.
  {
    RequestJournal jnl(path);
    EXPECT_EQ(jnl.durable_seq(), 1u);
    EXPECT_EQ(jnl.durable_bytes(),
              static_cast<std::uint64_t>(
                  std::filesystem::file_size(path)));
    jnl.append_accepted(9, 1, {9, 9, 9, 9});
    EXPECT_EQ(jnl.durable_bytes(),
              static_cast<std::uint64_t>(
                  std::filesystem::file_size(path)));
  }
  const auto replay = RequestJournal::read(path);
  EXPECT_FALSE(replay.torn_tail);
  EXPECT_EQ(replay.accepted, 2u);
  ASSERT_EQ(replay.unacknowledged.size(), 2u);
  EXPECT_EQ(replay.unacknowledged[0].id, 0u);
  EXPECT_EQ(replay.unacknowledged[1].id, 9u);
}

TEST(Journal, TornMagicIsRewrittenForeignFileIsRefused) {
  TmpDir dir("jnlmagic");
  // Crash during journal creation: fewer than 8 magic bytes on disk.
  // Reopening must start the journal over (no records can predate the
  // magic), not wedge every future read.
  const std::string torn = dir.file("torn.jnl");
  {
    std::ofstream os(torn, std::ios::binary);
    os.write("SSM", 3);
  }
  {
    RequestJournal jnl(torn);
    jnl.append_accepted(7, 1, {1, 2, 3, 4});
  }
  const auto replay = RequestJournal::read(torn);
  EXPECT_EQ(replay.accepted, 1u);
  EXPECT_EQ(replay.unacknowledged.at(0).id, 7u);

  // A full 8 bytes of something else is not ours to clobber.
  const std::string foreign = dir.file("foreign.jnl");
  {
    std::ofstream os(foreign, std::ios::binary);
    os.write("NOTAJRNL-data", 13);
  }
  EXPECT_THROW(RequestJournal{foreign}, CheckError);
}

// ---------------------------------------- crash-at-every-point matrix

// A fault after each worker pipeline stage; the supervisor requeues the
// dead shard's in-flight batch and respawns the shard from the latest
// checkpoint. Every future must still resolve bit-exact.
TEST(Recovery, CrashAtEveryStageSupervisedIsBitExact) {
  const std::uint64_t seed = test_seed();
  SCOPED_TRACE(seed_trace(seed));
  const ServeFixture f = ServeFixture::make();

  struct Scenario {
    FaultSite site;
    FaultKind kind;
  };
  const Scenario scenarios[] = {
      {FaultSite::kBatchFormed, FaultKind::kKillShard},
      {FaultSite::kExecute, FaultKind::kKillShard},
      {FaultSite::kAck, FaultKind::kKillShard},
      {FaultSite::kExecute, FaultKind::kDropBeforeAck},
      {FaultSite::kAck, FaultKind::kDropBeforeAck},
  };

  for (const Scenario& sc : scenarios) {
    SCOPED_TRACE(std::string(to_string(sc.kind)) + " after " +
                 to_string(sc.site));
    TmpDir dir("crash");
    FaultInjector fault(seed);
    CheckpointManager ckpts(dir.str(), &fault);
    RequestJournal journal(dir.file("requests.jnl"));

    FaultPlan plan;
    plan.site = sc.site;
    plan.kind = sc.kind;
    plan.fire_at = 3;  // let a couple of batches through first
    fault.arm(plan);

    ServerOptions opts;
    opts.num_workers = 2;
    opts.batcher.max_batch_tokens = 4;
    opts.batcher.max_wait = std::chrono::microseconds(50);
    opts.recovery.fault = &fault;
    opts.recovery.journal = &journal;
    opts.recovery.checkpoints = &ckpts;
    opts.recovery.supervise = true;
    InferenceServer server(f.amm, opts);

    constexpr std::size_t kRequests = 48;
    std::vector<std::future<InferenceResult>> futs;
    for (std::size_t id = 0; id < kRequests; ++id)
      futs.push_back(server.submit(f.codes_for(id), 1));
    for (std::size_t id = 0; id < futs.size(); ++id)
      EXPECT_EQ(futs[id].get().outputs, f.expected(id % f.pool.rows, 1))
          << "request " << id
          << " diverged from the fault-free reference";

    EXPECT_EQ(fault.fired(), 1u) << "armed fault did not fire";
    if (sc.kind == FaultKind::kKillShard) {
      EXPECT_EQ(server.respawn_count(), 1);
    }
    server.shutdown();
    EXPECT_EQ(server.metrics().requests, kRequests);

    // The journal must show every request acknowledged exactly once.
    const auto replay = RequestJournal::read(journal.path());
    EXPECT_EQ(replay.accepted, kRequests);
    EXPECT_EQ(replay.completed, kRequests);
    EXPECT_TRUE(replay.unacknowledged.empty());
  }
}

// The enqueue-stage crash: accepted into the WAL, lost before the
// queue. In-process supervision cannot see it — only journal replay
// recovers it. Combined here with a shard kill and no supervision: the
// full hard-crash + restart + replay path, verified to the bit.
TEST(Recovery, HardCrashRestartReplaysJournalBitExact) {
  const std::uint64_t seed = test_seed();
  SCOPED_TRACE(seed_trace(seed));
  const ServeFixture f = ServeFixture::make();
  TmpDir dir("restart");
  const std::string journal_path = dir.file("requests.jnl");
  constexpr std::size_t kRequests = 32;

  std::vector<std::vector<std::uint8_t>> payloads;
  for (std::size_t id = 0; id < kRequests; ++id)
    payloads.push_back(f.codes_for(id * 3 + 1));

  std::size_t served_before_crash = 0;
  {
    FaultInjector fault(seed);
    CheckpointManager ckpts(dir.str(), &fault);
    RequestJournal journal(journal_path);

    // Shard dies mid-load...
    FaultPlan kill;
    kill.site = FaultSite::kExecute;
    kill.kind = FaultKind::kKillShard;
    kill.fire_at = 5;
    fault.arm(kill);
    // ...and one request is lost between WAL accept and enqueue.
    FaultPlan lost;
    lost.site = FaultSite::kEnqueue;
    lost.kind = FaultKind::kKillShard;
    lost.fire_at = 11;
    fault.arm(lost);

    ServerOptions opts;
    opts.num_workers = 1;  // deterministic: the one shard dies
    opts.queue_capacity = 2 * kRequests;  // crash must not block submit
    opts.batcher.max_batch_tokens = 1;
    opts.batcher.max_wait = std::chrono::microseconds(0);
    opts.recovery.fault = &fault;
    opts.recovery.journal = &journal;
    opts.recovery.checkpoints = &ckpts;
    opts.recovery.checkpoint_every = 8;
    opts.recovery.supervise = false;  // a crash is a crash
    InferenceServer server(f.amm, opts);

    std::vector<std::future<InferenceResult>> futs;
    for (std::size_t id = 0; id < kRequests; ++id)
      futs.push_back(server.submit(payloads[id], 1));
    server.shutdown();  // the "process" dies: unserved futures fail

    for (std::size_t id = 0; id < futs.size(); ++id) {
      try {
        const InferenceResult res = futs[id].get();
        EXPECT_EQ(res.outputs, f.expected_for(payloads[id], 1));
        served_before_crash++;
      } catch (const std::runtime_error&) {
        // Lost to the crash; the journal owns it now.
      }
    }
    EXPECT_LT(served_before_crash, kRequests);
    EXPECT_GE(fault.fired(), 2u);
  }

  // ----- restart -----
  CheckpointManager ckpts(dir.str());
  const auto rs = recovery::recover_state(ckpts, journal_path);
  ASSERT_TRUE(rs.has_checkpoint());
  EXPECT_EQ(rs.journal.accepted, kRequests);
  EXPECT_EQ(rs.journal.completed, served_before_crash);
  EXPECT_EQ(rs.journal.unacknowledged.size(),
            kRequests - served_before_crash);
  EXPECT_EQ(rs.next_request_id, kRequests);

  RequestJournal journal(journal_path);  // keep journaling on recovery
  ServerOptions opts;
  opts.num_workers = 2;
  opts.recovery.journal = &journal;
  opts.recovery.checkpoints = &ckpts;
  auto server = InferenceServer::restore(rs, opts);

  // Replayed responses are bit-exact vs the fault-free reference —
  // including the enqueue-lost request the first run never served.
  auto futs = server->replay(rs.journal.unacknowledged);
  ASSERT_EQ(futs.size(), rs.journal.unacknowledged.size());
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const AcceptedRecord& rec = rs.journal.unacknowledged[i];
    const InferenceResult res = futs[i].get();
    EXPECT_EQ(res.request_id, rec.id);
    EXPECT_EQ(res.outputs, f.expected_for(rec.codes, rec.rows))
        << "replayed request " << rec.id << " diverged";
  }
  // New admissions continue past the recovered watermark.
  auto fresh = server->submit(f.codes_for(0), 1);
  EXPECT_EQ(fresh.get().request_id, kRequests);
  server->shutdown();

  // Ack CRCs in the journal audit the crashed run's acknowledged
  // responses to the bit: recompute each from the reference kernel.
  for (std::size_t id = 0; id < kRequests; ++id) {
    const auto it = rs.journal.completed_crc.find(id);
    if (it == rs.journal.completed_crc.end()) continue;
    const auto want = f.expected_for(payloads[id], 1);
    EXPECT_EQ(it->second,
              maddness::crc32(want.data(),
                              want.size() * sizeof(std::int16_t)))
        << "acknowledged output CRC mismatch for request " << id;
  }

  // The second run journaled its acks; a third read shows none left.
  const auto after = RequestJournal::read(journal_path);
  EXPECT_TRUE(after.unacknowledged.empty());
}

TEST(Recovery, UnsupervisedCrashFailsFuturesLoudly) {
  const ServeFixture f = ServeFixture::make();
  FaultInjector fault(test_seed());
  FaultPlan kill;
  kill.site = FaultSite::kExecute;
  kill.kind = FaultKind::kKillShard;
  kill.fire_at = 1;
  fault.arm(kill);

  ServerOptions opts;
  opts.num_workers = 1;
  opts.queue_capacity = 64;
  opts.batcher.max_batch_tokens = 1;
  opts.batcher.max_wait = std::chrono::microseconds(0);
  opts.recovery.fault = &fault;
  InferenceServer server(f.amm, opts);

  std::vector<std::future<InferenceResult>> futs;
  for (std::size_t id = 0; id < 4; ++id)
    futs.push_back(server.submit(f.codes_for(id), 1));
  server.shutdown();

  std::size_t failed = 0;
  for (auto& fut : futs) {
    try {
      fut.get();
    } catch (const std::runtime_error&) {
      failed++;  // a real error message, not std::future_error
    }
  }
  EXPECT_EQ(failed, 4u);
}

TEST(Recovery, CheckpointCadenceWritesVersions) {
  const ServeFixture f = ServeFixture::make();
  TmpDir dir("cadence");
  CheckpointManager ckpts(dir.str());

  ServerOptions opts;
  opts.num_workers = 2;
  opts.recovery.checkpoints = &ckpts;
  opts.recovery.checkpoint_every = 4;
  InferenceServer server(f.amm, opts);

  std::vector<std::future<InferenceResult>> futs;
  for (std::size_t id = 0; id < 12; ++id)
    futs.push_back(server.submit(f.codes_for(id), 1));
  for (auto& fut : futs) fut.get();
  server.shutdown();

  // Startup checkpoint + one per 4 accepted requests.
  EXPECT_GE(ckpts.versions().size(), 4u);
  std::uint64_t version = 0;
  const auto latest = ckpts.load_latest(&version);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->next_request_id, 12u);
  // A live server writes the v2 (registry) record; the operator comes
  // back as the implicitly-named default model, version 1.
  ASSERT_FALSE(latest->is_v1());
  engine::ModelRegistry registry;
  std::istringstream is(latest->registry_blob);
  registry.load(is);
  const engine::ModelRef replica = registry.resolve("default@1");
  EXPECT_EQ(replica->amm().apply_int16(f.pool), f.amm.apply_int16(f.pool));
}

// --------------------------------------------- golden checkpoint file

// Guards the on-disk checkpoint format against drift: a fixture
// checkpoint is committed to tests/data/ and must (a) load with the
// exact field values it was written with, (b) serve bit-identical
// outputs recorded next to it, and (c) re-encode byte-identically.
// Regenerate (format bumps only) by running test_recovery with
// --gtest_also_run_disabled_tests
// --gtest_filter='*RegenerateGoldenCheckpoint*'
namespace golden {
constexpr std::uint64_t kVersion = 1;
constexpr std::uint64_t kNextId = 77;
constexpr std::uint64_t kAccepted = 70;
constexpr std::uint64_t kCompleted = 66;
constexpr std::uint64_t kTokens = 132;
constexpr std::uint64_t kBatches = 17;
constexpr std::size_t kProbeRows = 8;

std::string checkpoint_path() {
  return std::string(SSMA_TEST_DATA_DIR) + "/checkpoint-000001.ssck";
}
std::string outputs_path() {
  return std::string(SSMA_TEST_DATA_DIR) + "/golden_outputs.txt";
}

/// The operator the golden fixture snapshots (deterministic train).
ServeFixture fixture() { return ServeFixture::make(4, 8, 64, 1234); }

/// Deterministic probe activations — integer pipeline from here on, so
/// the expected outputs are platform-stable.
maddness::QuantizedActivations probe(const maddness::Amm& amm) {
  maddness::QuantizedActivations q;
  q.rows = kProbeRows;
  q.cols = static_cast<std::size_t>(amm.cfg().total_dims());
  q.scale = amm.activation_scale();
  q.codes.resize(q.rows * q.cols);
  for (std::size_t i = 0; i < q.codes.size(); ++i)
    q.codes[i] = static_cast<std::uint8_t>((i * 37 + 11) & 0xFF);
  return q;
}
}  // namespace golden

TEST(Recovery, GoldenCheckpointFormatIsStable) {
  const CheckpointState st =
      CheckpointManager::load_file(golden::checkpoint_path());
  EXPECT_EQ(st.next_request_id, golden::kNextId);
  EXPECT_EQ(st.accepted_requests, golden::kAccepted);
  EXPECT_EQ(st.completed_requests, golden::kCompleted);
  EXPECT_EQ(st.tokens, golden::kTokens);
  EXPECT_EQ(st.batches, golden::kBatches);

  // The embedded operator still decodes the probe to the committed
  // bits (pure integer pipeline — platform independent).
  std::istringstream is(st.amm_blob);
  const maddness::Amm amm = maddness::Amm::load(is);
  const auto out = amm.apply_int16(golden::probe(amm));
  std::ifstream want(golden::outputs_path());
  ASSERT_TRUE(want.is_open()) << golden::outputs_path();
  std::size_t i = 0;
  int v = 0;
  while (want >> v) {
    ASSERT_LT(i, out.size());
    EXPECT_EQ(out[i], static_cast<std::int16_t>(v))
        << "golden output " << i << " drifted";
    i++;
  }
  EXPECT_EQ(i, out.size());

  // save -> load -> save is byte-identical (no serialization drift).
  TmpDir dir("golden");
  const std::string again = dir.file("rewrite.ssck");
  CheckpointManager::write_file(again, golden::kVersion, st);
  EXPECT_EQ(slurp(again), slurp(golden::checkpoint_path()))
      << "checkpoint re-encode changed bytes: format drift";
}

// ---------------------------------------- golden v2 (registry) record

// Same drift guard for the v2 record: a committed checkpoint holding a
// two-model registry ("alpha" at versions 1 and 2 — a hot-swap
// snapshot — and "beta" at 1) must load with exact registry contents,
// decode the probe bit-identically on BOTH alpha banks, and re-encode
// byte-identically. Regenerate (format bumps only) via
// --gtest_also_run_disabled_tests
// --gtest_filter='*RegenerateGoldenCheckpointV2*'
namespace golden_v2 {
constexpr std::uint64_t kVersion = 1;
constexpr std::uint64_t kNextId = 91;
constexpr std::uint64_t kAccepted = 88;
constexpr std::uint64_t kCompleted = 85;
constexpr std::uint64_t kTokens = 170;
constexpr std::uint64_t kBatches = 21;

std::string checkpoint_path() {
  return std::string(SSMA_TEST_DATA_DIR) + "/checkpoint-v2-000001.ssck";
}
std::string outputs_path() {
  return std::string(SSMA_TEST_DATA_DIR) + "/golden_outputs_v2.txt";
}

/// The two alpha banks (old and retrained) plus beta — deterministic
/// trains, distinct seeds.
ServeFixture alpha_v1() { return ServeFixture::make(4, 8, 64, 1234); }
ServeFixture alpha_v2() { return ServeFixture::make(4, 8, 64, 5678); }
ServeFixture beta() { return ServeFixture::make(8, 16, 64, 91); }

std::string registry_blob() {
  engine::ModelRegistry reg;
  reg.register_model("alpha", alpha_v1().amm);
  reg.register_model("alpha", alpha_v2().amm);
  reg.register_model("beta", beta().amm);
  std::ostringstream os;
  reg.save(os);
  return os.str();
}
}  // namespace golden_v2

TEST(Recovery, GoldenCheckpointV2FormatIsStable) {
  const CheckpointState st =
      CheckpointManager::load_file(golden_v2::checkpoint_path());
  EXPECT_FALSE(st.is_v1());
  EXPECT_TRUE(st.amm_blob.empty());
  EXPECT_EQ(st.next_request_id, golden_v2::kNextId);
  EXPECT_EQ(st.accepted_requests, golden_v2::kAccepted);
  EXPECT_EQ(st.completed_requests, golden_v2::kCompleted);
  EXPECT_EQ(st.tokens, golden_v2::kTokens);
  EXPECT_EQ(st.batches, golden_v2::kBatches);

  engine::ModelRegistry reg;
  std::istringstream is(st.registry_blob);
  reg.load(is);
  EXPECT_EQ(reg.names(), (std::vector<std::string>{"alpha", "beta"}));
  EXPECT_EQ(reg.versions("alpha"), (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(reg.latest_version("alpha"), 2u);
  EXPECT_EQ(reg.latest_version("beta"), 1u);

  // Both alpha banks decode the probe to the committed bits — the
  // hot-swap boundary's old AND new outputs are format-stable.
  const maddness::Amm& a1 = reg.resolve("alpha@1")->amm();
  const maddness::Amm& a2 = reg.resolve("alpha@2")->amm();
  std::vector<std::int16_t> got = a1.apply_int16(golden::probe(a1));
  const auto v2out = a2.apply_int16(golden::probe(a2));
  got.insert(got.end(), v2out.begin(), v2out.end());

  std::ifstream want(golden_v2::outputs_path());
  ASSERT_TRUE(want.is_open()) << golden_v2::outputs_path();
  std::size_t i = 0;
  int v = 0;
  while (want >> v) {
    ASSERT_LT(i, got.size());
    EXPECT_EQ(got[i], static_cast<std::int16_t>(v))
        << "golden v2 output " << i << " drifted";
    i++;
  }
  EXPECT_EQ(i, got.size());

  // load -> re-encode is byte-identical (registry ordering and framing
  // are deterministic).
  TmpDir dir("goldenv2");
  const std::string again = dir.file("rewrite.ssck");
  CheckpointManager::write_file(again, golden_v2::kVersion, st);
  EXPECT_EQ(slurp(again), slurp(golden_v2::checkpoint_path()))
      << "v2 checkpoint re-encode changed bytes: format drift";
}

TEST(Recovery, DISABLED_RegenerateGoldenCheckpointV2) {
  CheckpointState st;
  st.registry_blob = golden_v2::registry_blob();
  st.next_request_id = golden_v2::kNextId;
  st.accepted_requests = golden_v2::kAccepted;
  st.completed_requests = golden_v2::kCompleted;
  st.tokens = golden_v2::kTokens;
  st.batches = golden_v2::kBatches;
  CheckpointManager::write_file(golden_v2::checkpoint_path(),
                                golden_v2::kVersion, st);

  const maddness::Amm a1 = golden_v2::alpha_v1().amm;
  const maddness::Amm a2 = golden_v2::alpha_v2().amm;
  std::vector<std::int16_t> out = a1.apply_int16(golden::probe(a1));
  const auto v2out = a2.apply_int16(golden::probe(a2));
  out.insert(out.end(), v2out.begin(), v2out.end());
  std::ofstream os(golden_v2::outputs_path());
  for (std::size_t i = 0; i < out.size(); ++i)
    os << out[i] << ((i + 1) % 8 == 0 ? "\n" : " ");
}

// -------------------------------- replay across the hot-swap boundary

// A crash that straddles a version hot-swap: requests admitted before
// the swap pinned alpha@1, requests after it pinned alpha@2, and some
// of each were never acknowledged. The journal's model-tagged accept
// records must replay every lost request on the exact bank it pinned —
// old ids bit-exact vs the old bank, new ids vs the new — even though
// the restored server's "latest" is the new version.
TEST(Recovery, HardCrashReplayAcrossHotSwapBoundaryIsBitExact) {
  const std::uint64_t seed = test_seed();
  SCOPED_TRACE(seed_trace(seed));
  const ServeFixture old_fx = ServeFixture::make(4, 8, 256, 7);
  const ServeFixture new_fx = ServeFixture::make(4, 8, 256, 99);
  TmpDir dir("swap");
  const std::string journal_path = dir.file("requests.jnl");
  constexpr std::size_t kBeforeSwap = 12;
  constexpr std::size_t kAfterSwap = 12;

  const auto expected_on = [&](const maddness::Amm& amm,
                               const std::vector<std::uint8_t>& codes,
                               std::size_t rows) {
    maddness::QuantizedActivations q;
    q.rows = rows;
    q.cols = old_fx.pool.cols;
    q.scale = old_fx.pool.scale;
    q.codes = codes;
    return amm.apply_int16(q);
  };

  {
    FaultInjector fault(seed);
    CheckpointManager ckpts(dir.str(), &fault);
    RequestJournal journal(journal_path);

    // The single shard dies early: most requests stay unacknowledged.
    FaultPlan kill;
    kill.site = FaultSite::kExecute;
    kill.kind = FaultKind::kKillShard;
    kill.fire_at = 3;
    fault.arm(kill);

    ServerOptions opts;
    opts.num_workers = 1;
    opts.queue_capacity = 4 * (kBeforeSwap + kAfterSwap);
    opts.batcher.max_batch_tokens = 2;
    opts.batcher.max_wait = std::chrono::microseconds(0);
    opts.recovery.fault = &fault;
    opts.recovery.journal = &journal;
    opts.recovery.checkpoints = &ckpts;
    opts.recovery.supervise = false;  // a crash is a crash
    InferenceServer server(opts);
    server.register_model("alpha", old_fx.amm);

    std::vector<std::future<InferenceResult>> futs;
    for (std::size_t id = 0; id < kBeforeSwap; ++id)
      futs.push_back(server.submit("alpha", old_fx.codes_for(id), 1));
    // Hot-swap mid-journal: the registration checkpoint makes v2
    // durable before any v2-pinned request can be journaled.
    EXPECT_EQ(server.register_model("alpha", new_fx.amm), 2u);
    for (std::size_t id = 0; id < kAfterSwap; ++id)
      futs.push_back(server.submit("alpha", old_fx.codes_for(id), 1));
    server.shutdown();
    std::size_t failed = 0;
    for (auto& fut : futs) {
      try {
        fut.get();
      } catch (const std::runtime_error&) {
        failed++;
      }
    }
    EXPECT_GT(failed, 0u) << "the crash should strand requests";
  }

  // ----- restart -----
  CheckpointManager ckpts(dir.str());
  const auto rs = recovery::recover_state(ckpts, journal_path);
  ASSERT_TRUE(rs.has_checkpoint());
  ASSERT_FALSE(rs.checkpoint.is_v1());
  ASSERT_FALSE(rs.journal.unacknowledged.empty());

  RequestJournal journal(journal_path);
  ServerOptions opts;
  opts.num_workers = 2;
  opts.recovery.journal = &journal;
  opts.recovery.checkpoints = &ckpts;
  auto server = InferenceServer::restore(rs, opts);
  EXPECT_EQ(server->registry().latest_version("alpha"), 2u);
  EXPECT_EQ(server->registry().versions("alpha"),
            (std::vector<std::uint64_t>{1, 2}));

  auto futs = server->replay(rs.journal.unacknowledged);
  ASSERT_EQ(futs.size(), rs.journal.unacknowledged.size());
  std::size_t replayed_old = 0, replayed_new = 0;
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const AcceptedRecord& rec = rs.journal.unacknowledged[i];
    EXPECT_EQ(rec.model, "alpha");
    const bool pre_swap = rec.id < kBeforeSwap;
    EXPECT_EQ(rec.model_version, pre_swap ? 1u : 2u)
        << "journal lost the pinned version for request " << rec.id;
    const InferenceResult res = futs[i].get();
    EXPECT_EQ(res.model_version, rec.model_version);
    const maddness::Amm& bank = pre_swap ? old_fx.amm : new_fx.amm;
    EXPECT_EQ(res.outputs, expected_on(bank, rec.codes, rec.rows))
        << "replayed request " << rec.id
        << " diverged from its pinned bank";
    (pre_swap ? replayed_old : replayed_new)++;
  }
  // The crash landed inside the pre-swap stream, so everything after it
  // — including every post-swap request — replays.
  EXPECT_GT(replayed_old, 0u);
  EXPECT_EQ(replayed_new, kAfterSwap);
  server->shutdown();

  // Ack CRCs audit both sides of the boundary to the bit.
  const auto after = RequestJournal::read(journal_path);
  EXPECT_TRUE(after.unacknowledged.empty());
  for (std::size_t id = 0; id < kBeforeSwap + kAfterSwap; ++id) {
    const auto it = after.completed_crc.find(id);
    ASSERT_NE(it, after.completed_crc.end()) << "request " << id;
    const bool pre_swap = id < kBeforeSwap;
    const maddness::Amm& bank = pre_swap ? old_fx.amm : new_fx.amm;
    const auto want = expected_on(
        bank, old_fx.codes_for(pre_swap ? id : id - kBeforeSwap), 1);
    EXPECT_EQ(it->second,
              maddness::crc32(want.data(),
                              want.size() * sizeof(std::int16_t)))
        << "acknowledged output CRC mismatch for request " << id;
  }
}

// Two 2-stage dense pipelines with identical shapes (36 -> 36 -> 12)
// but different trained banks: the hot-swap pair for the pipeline
// replay test. Served through the fused ExecutionPlan (the server's
// default engine), so replay exercises the fused interior handoff.
struct SwapPipelines {
  maddness::Amm old_s0, old_s1, new_s0, new_s1;
  maddness::QuantizedActivations pool;

  static SwapPipelines make(std::uint64_t seed) {
    SwapPipelines p;
    const auto train = [](std::uint64_t s, maddness::Amm* s0,
                          maddness::Amm* s1) {
      Rng rng(s);
      Matrix calib(384, 36);
      for (std::size_t i = 0; i < calib.size(); ++i)
        calib.data()[i] = static_cast<float>(rng.next_double(0, 200));
      Matrix w0(36, 36), w1(36, 12);
      for (std::size_t i = 0; i < w0.size(); ++i)
        w0.data()[i] = static_cast<float>(rng.next_gaussian(0, 0.08));
      for (std::size_t i = 0; i < w1.size(); ++i)
        w1.data()[i] = static_cast<float>(rng.next_gaussian(0, 0.08));
      maddness::Config cfg;
      cfg.ncodebooks = 4;
      Matrix mid;
      *s0 = engine::train_chained_stage(cfg, calib, w0, &mid);
      *s1 = engine::train_chained_stage(cfg, mid, w1, nullptr);
    };
    train(seed, &p.old_s0, &p.old_s1);
    train(seed + 1000003, &p.new_s0, &p.new_s1);
    Rng rng(seed + 7);
    Matrix fresh(64, 36);
    for (std::size_t i = 0; i < fresh.size(); ++i)
      fresh.data()[i] = static_cast<float>(rng.next_double(0, 200));
    p.pool = maddness::quantize_activations(fresh,
                                            p.old_s0.activation_scale());
    return p;
  }

  std::vector<std::uint8_t> codes_for(std::size_t id) const {
    const std::size_t r = id % pool.rows;
    return std::vector<std::uint8_t>(pool.row(r),
                                     pool.row(r) + pool.cols);
  }
};

TEST(Recovery, PipelineReplayAcrossHotSwapIsBitExactThroughFusedPlan) {
  const std::uint64_t seed = test_seed();
  SCOPED_TRACE(seed_trace(seed));
  const SwapPipelines px = SwapPipelines::make(seed);
  // Reference handles mirroring the server's two registered versions;
  // pipeline_reference_apply is the materializing scalar oracle the
  // fused serve path must match bit for bit.
  const engine::ModelRef ref_v1 = engine::ModelHandle::from_stages(
      "pipe", 1, {&px.old_s0, &px.old_s1});
  const engine::ModelRef ref_v2 = engine::ModelHandle::from_stages(
      "pipe", 2, {&px.new_s0, &px.new_s1});
  const auto expected_on = [&](const engine::ModelHandle& model,
                               const std::vector<std::uint8_t>& codes,
                               std::size_t rows) {
    maddness::QuantizedActivations q;
    q.rows = rows;
    q.cols = px.pool.cols;
    q.scale = px.pool.scale;
    q.codes = codes;
    return engine::pipeline_reference_apply(model, q);
  };

  TmpDir dir("pipeswap");
  const std::string journal_path = dir.file("requests.jnl");
  constexpr std::size_t kBeforeSwap = 10;
  constexpr std::size_t kAfterSwap = 10;
  {
    FaultInjector fault(seed);
    CheckpointManager ckpts(dir.str(), &fault);
    RequestJournal journal(journal_path);
    FaultPlan kill;
    kill.site = FaultSite::kExecute;
    kill.kind = FaultKind::kKillShard;
    kill.fire_at = 3;
    fault.arm(kill);

    ServerOptions opts;
    opts.num_workers = 1;
    opts.queue_capacity = 4 * (kBeforeSwap + kAfterSwap);
    opts.batcher.max_batch_tokens = 2;
    opts.batcher.max_wait = std::chrono::microseconds(0);
    opts.recovery.fault = &fault;
    opts.recovery.journal = &journal;
    opts.recovery.checkpoints = &ckpts;
    opts.recovery.supervise = false;
    InferenceServer server(opts);
    server.register_pipeline("pipe", {&px.old_s0, &px.old_s1});

    std::vector<std::future<InferenceResult>> futs;
    for (std::size_t id = 0; id < kBeforeSwap; ++id)
      futs.push_back(server.submit("pipe", px.codes_for(id), 1));
    EXPECT_EQ(server.register_pipeline("pipe", {&px.new_s0, &px.new_s1}),
              2u);
    for (std::size_t id = 0; id < kAfterSwap; ++id)
      futs.push_back(server.submit("pipe", px.codes_for(id), 1));
    server.shutdown();
    std::size_t failed = 0;
    for (auto& fut : futs) {
      try {
        fut.get();
      } catch (const std::runtime_error&) {
        failed++;
      }
    }
    EXPECT_GT(failed, 0u) << "the crash should strand requests";
  }

  // ----- restart: replay every stranded request on its pinned bank -----
  CheckpointManager ckpts(dir.str());
  const auto rs = recovery::recover_state(ckpts, journal_path);
  ASSERT_TRUE(rs.has_checkpoint());
  ASSERT_FALSE(rs.journal.unacknowledged.empty());

  RequestJournal journal(journal_path);
  ServerOptions opts;
  opts.num_workers = 2;
  opts.recovery.journal = &journal;
  opts.recovery.checkpoints = &ckpts;
  auto server = InferenceServer::restore(rs, opts);
  EXPECT_EQ(server->registry().latest_version("pipe"), 2u);
  EXPECT_TRUE(server->registry().resolve("pipe@1")->is_pipeline());

  auto futs = server->replay(rs.journal.unacknowledged);
  ASSERT_EQ(futs.size(), rs.journal.unacknowledged.size());
  std::size_t replayed_new = 0;
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const AcceptedRecord& rec = rs.journal.unacknowledged[i];
    const bool pre_swap = rec.id < kBeforeSwap;
    EXPECT_EQ(rec.model_version, pre_swap ? 1u : 2u)
        << "journal lost the pinned version for request " << rec.id;
    const InferenceResult res = futs[i].get();
    EXPECT_EQ(res.model_version, rec.model_version);
    const engine::ModelHandle& model = pre_swap ? *ref_v1 : *ref_v2;
    EXPECT_EQ(res.outputs, expected_on(model, rec.codes, rec.rows))
        << "replayed pipeline request " << rec.id
        << " diverged from its pinned banks";
    if (!pre_swap) replayed_new++;
  }
  EXPECT_EQ(replayed_new, kAfterSwap);
  server->shutdown();

  // Ack CRCs audit both sides of the boundary against the reference.
  const auto after = RequestJournal::read(journal_path);
  EXPECT_TRUE(after.unacknowledged.empty());
  for (std::size_t id = 0; id < kBeforeSwap + kAfterSwap; ++id) {
    const auto it = after.completed_crc.find(id);
    ASSERT_NE(it, after.completed_crc.end()) << "request " << id;
    const bool pre_swap = id < kBeforeSwap;
    const auto want = expected_on(
        pre_swap ? *ref_v1 : *ref_v2,
        px.codes_for(pre_swap ? id : id - kBeforeSwap), 1);
    EXPECT_EQ(it->second,
              maddness::crc32(want.data(),
                              want.size() * sizeof(std::int16_t)))
        << "acknowledged output CRC mismatch for request " << id;
  }
}

// -------------------- cross-process leader-kill failover matrix

// The crash-at-every-point matrix, taken across the process boundary:
// a forked child process IS the leader (journal + checkpoints +
// ReplicationLog + serving loop), the parent runs the follower, and an
// armed kKillProcess fault std::_Exit(9)s the leader at each pipeline
// site in turn. The parent then promotes and proves the zero-RPO
// contract: in sync mode every request the dead leader acknowledged is
// answered byte-identically by the promoted follower; in window mode
// loss is bounded by the watermark; in async mode whatever replicated
// is still byte-exact. "Byte-identical" is checked two ways at once —
// the client-visible CRC the child logged must equal both the
// independently recomputed fault-free reference AND the promoted
// follower's completion record.
namespace failover {

/// Deterministic fixtures both processes reconstruct from constants.
ServeFixture fixture_v1() { return ServeFixture::make(4, 8, 64, 1234); }
ServeFixture fixture_v2() { return ServeFixture::make(4, 8, 64, 5678); }

std::vector<std::int16_t> expected_on(
    const maddness::Amm& amm, const maddness::QuantizedActivations& pool,
    const std::vector<std::uint8_t>& codes) {
  maddness::QuantizedActivations q;
  q.rows = 1;
  q.cols = pool.cols;
  q.scale = pool.scale;
  q.codes = codes;
  return amm.apply_int16(q);
}

struct AckedLine {
  std::uint64_t id = 0;
  std::uint64_t version = 0;
  std::uint32_t crc = 0;
};

/// Parses the child's ack log, dropping a torn (newline-less) tail the
/// way the journal reader drops a torn record.
std::vector<AckedLine> read_acked(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream oss;
  oss << is.rdbuf();
  std::string all = oss.str();
  const std::size_t last_nl = all.find_last_of('\n');
  if (last_nl == std::string::npos) return {};
  all.resize(last_nl);
  std::vector<AckedLine> out;
  std::istringstream lines(all);
  std::string line;
  while (std::getline(lines, line)) {
    std::istringstream ls(line);
    AckedLine a;
    if (ls >> a.id >> a.version >> a.crc) out.push_back(a);
  }
  return out;
}

}  // namespace failover

// The child's main: becomes a replicated leader, publishes its port,
// arms the kill, then serves until the fault takes the process down.
// Driver-only — the Failover matrix forks and execs this by filter.
TEST(Failover, DISABLED_LeaderChildMain) {
  const char* dir_env = std::getenv("SSMA_LEADER_DIR");
  if (dir_env == nullptr) GTEST_SKIP() << "driver-only child";
  const std::string dir = dir_env;
  const int site = std::atoi(std::getenv("SSMA_KILL_SITE"));
  const std::uint64_t fire_after =
      std::strtoull(std::getenv("SSMA_KILL_FIRE"), nullptr, 0);
  const int ack_mode = std::atoi(std::getenv("SSMA_ACK_MODE"));
  const bool swap = std::getenv("SSMA_HOT_SWAP") != nullptr;

  const ServeFixture f = failover::fixture_v1();
  FaultInjector fault(test_seed());
  CheckpointManager ckpts(dir + "/ckpts", &fault);
  RequestJournal journal(dir + "/journal.ssj");

  serve::replication::ReplicationOptions ropts;
  ropts.ack_mode = static_cast<serve::replication::AckMode>(ack_mode);
  ropts.window = 4;
  // Generous: with a live follower this never trips, and the matrix
  // must not let a slow sanitizer run degrade a sync ack (that would
  // forge an acked-but-unreplicated line and fail the parent).
  ropts.ack_timeout = std::chrono::milliseconds(20000);
  ropts.fault = &fault;
  serve::replication::ReplicationLog repl(journal, &ckpts, ropts);

  // Publish the port via atomic rename so the parent never reads a
  // half-written file.
  {
    const std::string tmp = dir + "/port.tmp";
    std::ofstream os(tmp);
    os << repl.port();
    os.close();
    std::filesystem::rename(tmp, dir + "/port");
  }

  ServerOptions opts;
  opts.num_workers = 1;  // serialized: the ack log order is the id order
  opts.queue_capacity = 1024;
  opts.batcher.max_batch_tokens = 1;
  opts.batcher.max_wait = std::chrono::microseconds(0);
  opts.recovery.journal = &journal;
  opts.recovery.checkpoints = &ckpts;
  opts.recovery.checkpoint_every = 4;
  opts.recovery.fault = &fault;
  opts.recovery.replication = &repl;
  InferenceServer server(opts);
  server.register_model("m", f.amm);

  if (!repl.wait_follower(1, std::chrono::milliseconds(20000)))
    std::_Exit(7);  // parent fails the scenario on any non-9 exit

  // Arm only now: the handshake's checkpoint ship polls kReplSend too,
  // and the matrix wants the kill inside the steady-state stream.
  FaultPlan kill;
  kill.site = static_cast<FaultSite>(site);
  kill.kind = FaultKind::kKillProcess;
  kill.fire_at = fault.polls(kill.site) + fire_after;
  fault.arm(kill);

  std::ofstream acked(dir + "/acked.txt", std::ios::binary);
  const ServeFixture v2 = failover::fixture_v2();
  for (std::size_t i = 0; i < 200; ++i) {
    if (swap && i == 8) server.register_model("m", v2.amm);
    const InferenceResult res =
        server.submit("m", f.codes_for(i), 1).get();
    const std::uint32_t crc = maddness::crc32(
        res.outputs.data(), res.outputs.size() * sizeof(std::int16_t));
    acked << res.request_id << ' ' << res.model_version << ' ' << crc
          << '\n'
          << std::flush;
  }
  std::_Exit(6);  // the armed fault never fired
}

TEST(Failover, KillLeaderAtEverySitePromoteByteIdentical) {
  const std::uint64_t seed = test_seed();
  SCOPED_TRACE(seed_trace(seed));
  using serve::replication::AckMode;
  const ServeFixture f = failover::fixture_v1();
  const ServeFixture v2 = failover::fixture_v2();

  struct Scenario {
    const char* name;
    FaultSite site;
    std::uint64_t fire_after;  ///< polls of `site` past the handshake
    AckMode ack;
    bool swap;
  };
  const Scenario scenarios[] = {
      {"enqueue/sync", FaultSite::kEnqueue, 13, AckMode::kSync, false},
      {"batch/sync", FaultSite::kBatchFormed, 13, AckMode::kSync, false},
      {"execute/sync", FaultSite::kExecute, 13, AckMode::kSync, false},
      {"ack/sync", FaultSite::kAck, 13, AckMode::kSync, false},
      {"checkpoint/sync", FaultSite::kCheckpointWrite, 3, AckMode::kSync,
       false},
      {"replsend/sync", FaultSite::kReplSend, 21, AckMode::kSync, false},
      {"execute/window", FaultSite::kExecute, 13, AckMode::kWindow, false},
      {"replsend/window", FaultSite::kReplSend, 21, AckMode::kWindow,
       false},
      {"execute/async", FaultSite::kExecute, 13, AckMode::kAsync, false},
      {"execute/sync/hotswap", FaultSite::kExecute, 25, AckMode::kSync,
       true},
  };

  for (const Scenario& sc : scenarios) {
    SCOPED_TRACE(sc.name);
    TmpDir dir("failover");
    const std::string leader_dir = dir.file("leader");
    std::filesystem::create_directories(leader_dir);

    const pid_t pid = ::fork();
    ASSERT_NE(pid, -1);
    if (pid == 0) {
      // Child: become the leader. exec replaces the image, so the
      // forked copy of this test never runs its assertions.
      ::setenv("SSMA_LEADER_DIR", leader_dir.c_str(), 1);
      ::setenv("SSMA_KILL_SITE",
               std::to_string(static_cast<int>(sc.site)).c_str(), 1);
      ::setenv("SSMA_KILL_FIRE", std::to_string(sc.fire_after).c_str(),
               1);
      ::setenv("SSMA_ACK_MODE",
               std::to_string(static_cast<int>(sc.ack)).c_str(), 1);
      if (sc.swap) ::setenv("SSMA_HOT_SWAP", "1", 1);
      ::execl("/proc/self/exe", "test_recovery",
              "--gtest_filter=Failover.DISABLED_LeaderChildMain",
              "--gtest_also_run_disabled_tests",
              static_cast<char*>(nullptr));
      std::_Exit(127);  // exec failed
    }

    // Wait for the leader to publish its port.
    const std::string port_file = leader_dir + "/port";
    std::uint16_t port = 0;
    for (int i = 0; i < 3000 && port == 0; ++i) {
      if (std::filesystem::exists(port_file)) {
        std::ifstream is(port_file);
        int p = 0;
        is >> p;
        port = static_cast<std::uint16_t>(p);
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    if (port == 0) ::kill(pid, SIGKILL);
    ASSERT_NE(port, 0) << "leader child never published a port";

    serve::replication::ApplierOptions aopts;
    aopts.leader_port = port;
    aopts.dir = dir.file("follower");
    aopts.server.num_workers = 2;
    serve::replication::ReplicaApplier applier(aopts);

    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 9)
        << "leader child did not die at the armed site (7 = follower "
           "never connected, 6 = fault never fired, 127 = exec failed)";

    // Drain: once the death of the connection is observed, everything
    // the follower received is already durable and applied.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (applier.stats().connected &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_TRUE(applier.wait_standby(std::chrono::milliseconds(10000)))
        << "no checkpoint ever reached the follower";

    serve::replication::PromotionReport rep;
    auto promoted = applier.promote(&rep);
    ASSERT_NE(promoted, nullptr);
    EXPECT_EQ(rep.crc_mismatches, 0u)
        << "replayed outputs diverged from the leader's replicated acks";
    EXPECT_EQ(rep.replay_failures, 0u);

    const auto acked = failover::read_acked(leader_dir + "/acked.txt");
    EXPECT_GT(acked.size(), 0u)
        << "the leader died before acknowledging anything; the "
           "scenario shows nothing";
    const auto follower_replay =
        RequestJournal::read(applier.journal_path());
    std::size_t missing = 0;
    for (const failover::AckedLine& a : acked) {
      // The client-visible bytes were the fault-free reference...
      const maddness::Amm& bank = a.version == 2 ? v2.amm : f.amm;
      const auto want = failover::expected_on(
          bank, f.pool, f.codes_for(static_cast<std::size_t>(a.id)));
      const std::uint32_t want_crc = maddness::crc32(
          want.data(), want.size() * sizeof(std::int16_t));
      ASSERT_EQ(a.crc, want_crc)
          << "leader acked non-reference bytes for id " << a.id;
      // ...and the promoted follower holds the identical CRC (replayed
      // or backfilled) for every replicated request.
      const auto it = follower_replay.completed_crc.find(a.id);
      if (it == follower_replay.completed_crc.end()) {
        missing++;
        continue;
      }
      EXPECT_EQ(it->second, want_crc)
          << "promoted follower diverged on acked id " << a.id;
    }
    if (sc.ack == AckMode::kSync) {
      EXPECT_EQ(missing, 0u)
          << "zero-RPO violated: " << missing << " of " << acked.size()
          << " acked requests lost in sync mode";
    } else if (sc.ack == AckMode::kWindow) {
      EXPECT_LE(missing, 4u)
          << "window mode lost more than the watermark bound";
    } else {
      // Async: loss is unbounded by contract but measured here.
      EXPECT_LE(missing, acked.size());
    }

    if (sc.swap) {
      EXPECT_EQ(promoted->registry().versions("m"),
                (std::vector<std::uint64_t>{1, 2}))
          << "hot-swap registry map did not replicate";
      EXPECT_EQ(promoted->registry().latest_version("m"), 2u);
    }

    // The promoted follower serves fresh traffic bit-exact on the
    // latest bank, with ids past the dead leader's watermark.
    const InferenceResult res =
        promoted->submit("m", f.codes_for(3), 1).get();
    const maddness::Amm& latest = sc.swap ? v2.amm : f.amm;
    EXPECT_EQ(res.outputs,
              failover::expected_on(latest, f.pool, f.codes_for(3)));
    if (sc.ack == AckMode::kSync && !acked.empty()) {
      EXPECT_GT(res.request_id, acked.back().id)
          << "promoted server reused an id the dead leader handed out";
    }
    promoted->shutdown();
  }
}

// Not a test: regenerates the golden fixture after a deliberate format
// bump. Keep the constants above in sync.
TEST(Recovery, DISABLED_RegenerateGoldenCheckpoint) {
  const ServeFixture f = golden::fixture();
  std::ostringstream blob;
  f.amm.save(blob);
  CheckpointState st;
  st.amm_blob = blob.str();
  st.next_request_id = golden::kNextId;
  st.accepted_requests = golden::kAccepted;
  st.completed_requests = golden::kCompleted;
  st.tokens = golden::kTokens;
  st.batches = golden::kBatches;
  CheckpointManager::write_file(golden::checkpoint_path(),
                                golden::kVersion, st);

  const auto out = f.amm.apply_int16(golden::probe(f.amm));
  std::ofstream os(golden::outputs_path());
  for (std::size_t i = 0; i < out.size(); ++i)
    os << out[i] << ((i + 1) % 8 == 0 ? "\n" : " ");
}

}  // namespace
}  // namespace ssma::serve
