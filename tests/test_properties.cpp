// Property-based and exhaustive/fuzz tests across module boundaries:
// exhaustive DLC truth table (all 65536 operand pairs), CSA/RCA
// arithmetic closure, tree-learner invariants, quantizer properties,
// scheduler stress, randomized macro shapes with all feature
// combinations (speculation x variation), and the timed write path.
#include <gtest/gtest.h>

#include "maddness/amm.hpp"
#include "maddness/tree_learner.hpp"
#include "ppa/delay_model.hpp"
#include "sim/adders.hpp"
#include "sim/dlc.hpp"
#include "sim/macro.hpp"
#include "sim/monte_carlo.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ssma {
namespace {

// ------------------------------------------------------ exhaustive DLC

TEST(PropertyDlc, ExhaustiveTruthTableAndDepth) {
  // All 256 x 256 operand pairs: functional result is (x >= t) and the
  // resolution depth equals 8 minus the highest differing bit.
  sim::SimContext ctx(ppa::nominal_05v());
  for (int t = 0; t < 256; ++t) {
    sim::Dlc dlc(static_cast<std::uint8_t>(t), 0.0);
    for (int x = 0; x < 256; ++x) {
      const auto r = dlc.evaluate(ctx, static_cast<std::uint8_t>(x));
      ASSERT_EQ(r.x_ge_t, x >= t) << "x=" << x << " t=" << t;
      int expect_depth = 8;
      for (int bit = 7; bit >= 0; --bit) {
        if (((x >> bit) & 1) != ((t >> bit) & 1)) {
          expect_depth = 8 - bit;
          break;
        }
      }
      ASSERT_EQ(r.depth, expect_depth) << "x=" << x << " t=" << t;
    }
  }
}

TEST(PropertyDlc, DelayMonotoneInDepthForAllVoltages) {
  for (double vdd : {0.5, 0.7, 1.0}) {
    ppa::DelayModel m({vdd, ppa::Corner::TTG, 25.0});
    for (int d = 1; d < 8; ++d)
      EXPECT_LT(m.dlc_eval_ns(d), m.dlc_eval_ns(d + 1));
  }
}

// ---------------------------------------------------- arithmetic closure

TEST(PropertyAdders, CsaClosureOverRandomChains) {
  // For arbitrary chain lengths and values, carry-save accumulation
  // resolves to the wrapped int16 sum (the pipeline's arithmetic
  // contract at any NS).
  Rng rng(1);
  for (int trial = 0; trial < 300; ++trial) {
    const int chain = rng.next_int(1, 300);
    sim::CarrySave acc;
    std::int32_t ref = 0;
    for (int i = 0; i < chain; ++i) {
      const auto w = static_cast<std::int8_t>(rng.next_int(-128, 127));
      acc = sim::csa_step(acc, w);
      ref += w;
    }
    ASSERT_EQ(acc.resolve(), static_cast<std::int16_t>(ref))
        << "chain=" << chain;
  }
}

TEST(PropertyAdders, RcaChainEqualsGeneratePlusPropagateRun) {
  // Settling-relevant ripple: a generate produces its carry locally
  // (one cell delay) and the ripple extends through the following
  // propagate bits; another generate mid-stream *restarts* the chain
  // because the downstream carry no longer waits for the upstream one.
  // The model must equal the longest (generate + trailing propagates)
  // block.
  Rng rng(2);
  for (int trial = 0; trial < 2000; ++trial) {
    sim::CarrySave cs{static_cast<std::uint16_t>(rng.next_u64()),
                      static_cast<std::uint16_t>(rng.next_u64())};
    const int model = sim::rca_carry_chain(cs);
    int longest = 0;
    for (int i = 0; i < 16; ++i) {
      const int si = (cs.s >> i) & 1, ci = (cs.c >> i) & 1;
      if (!(si & ci)) continue;  // needs a generate to start
      int chain = 1;
      for (int j = i + 1; j < 16; ++j) {
        const int sj = (cs.s >> j) & 1, cj = (cs.c >> j) & 1;
        if ((sj ^ cj) == 0) break;  // propagate ends (kill or generate)
        ++chain;
      }
      longest = std::max(longest, chain);
    }
    ASSERT_EQ(model, longest) << "s=" << cs.s << " c=" << cs.c;
  }
}

// ------------------------------------------------------ learner invariants

TEST(PropertyLearner, LearnedTreeIsHardwareRepresentable) {
  // All thresholds uint8, all split dims within the subvector — i.e.
  // directly loadable into DLC flops and input-buffer muxes.
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    Matrix x(rng.next_int(20, 300), 9);
    for (std::size_t i = 0; i < x.size(); ++i)
      x.data()[i] = static_cast<float>(rng.next_int(0, 255));
    const maddness::HashTree t = maddness::learn_hash_tree(x);
    for (int l = 0; l < 4; ++l) {
      EXPECT_GE(t.split_dim(l), 0);
      EXPECT_LT(t.split_dim(l), 9);
    }
    // Every training row lands in a valid leaf.
    for (std::size_t r = 0; r < x.rows(); ++r) {
      std::uint8_t v[9];
      for (int j = 0; j < 9; ++j)
        v[j] = static_cast<std::uint8_t>(x(r, j));
      const int leaf = t.encode(v);
      EXPECT_GE(leaf, 0);
      EXPECT_LT(leaf, 16);
    }
  }
}

TEST(PropertyLearner, SplitNeverIncreasesTotalSse) {
  Rng rng(4);
  Matrix x(150, 9);
  for (std::size_t i = 0; i < x.size(); ++i)
    x.data()[i] = static_cast<float>(rng.next_double(0, 255));
  std::vector<std::size_t> rows(x.rows());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  maddness::Bucket b(x, rows);
  const double parent_sse = b.sse(x);
  for (int dim = 0; dim < 9; ++dim) {
    const auto choice = maddness::best_split_on_dim(x, b, dim);
    EXPECT_LE(choice.loss, parent_sse + 1e-6) << "dim " << dim;
  }
}

// ---------------------------------------------------- quantizer properties

TEST(PropertyQuantize, MonotoneAndBounded) {
  // Quantization preserves order (monotone) and bounds the error by
  // half a step inside the clip range.
  Rng rng(5);
  const float scale = 0.37f;
  float prev_val = -1.0f;
  std::uint8_t prev_code = 0;
  for (int i = 0; i < 500; ++i) {
    const float v = static_cast<float>(i) * 0.18f;
    Matrix m(1, 1);
    m(0, 0) = v;
    const auto q = maddness::quantize_activations(m, scale);
    if (i > 0 && v > prev_val) {
      EXPECT_GE(q.codes[0], prev_code);
    }
    if (v <= 255.0f * scale) {
      EXPECT_NEAR(static_cast<float>(q.codes[0]) * scale, v,
                  scale * 0.5f + 1e-6f);
    }
    prev_val = v;
    prev_code = q.codes[0];
  }
}

// ------------------------------------------------------- scheduler stress

TEST(PropertyScheduler, ThousandsOfInterleavedEventsStayOrdered) {
  sim::Scheduler s;
  Rng rng(6);
  std::vector<sim::SimTime> fired;
  for (int i = 0; i < 5000; ++i) {
    const auto t = static_cast<sim::SimTime>(rng.next_below(100000));
    s.at(t, [&fired, &s] { fired.push_back(s.now()); });
  }
  s.run();
  ASSERT_EQ(fired.size(), 5000u);
  for (std::size_t i = 1; i < fired.size(); ++i)
    ASSERT_GE(fired[i], fired[i - 1]);
}

// ----------------------------------------------------------- macro fuzzing

struct FuzzCase {
  int ndec;
  int ns;
  bool speculative;
  bool variation;
  double vdd;
};

class MacroFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(MacroFuzz, RandomWorkloadMatchesReference) {
  const auto p = GetParam();
  Rng rng(1000 + p.ndec * 7 + p.ns * 31 + (p.speculative ? 3 : 0) +
          (p.variation ? 11 : 0));

  sim::MacroConfig cfg;
  cfg.ndec = p.ndec;
  cfg.ns = p.ns;
  cfg.op = {p.vdd, ppa::Corner::TTG, 25.0};
  cfg.speculative_encode = p.speculative;
  sim::Macro macro(cfg);
  if (p.variation) {
    Rng vr(rng.next_u64());
    macro.set_variation(
        sim::sample_variation(p.ns, p.ndec, sim::VariationConfig{}, vr));
  }

  std::vector<maddness::HashTree> trees(p.ns);
  for (auto& t : trees) {
    for (int l = 0; l < 4; ++l) t.set_split_dim(l, rng.next_int(0, 8));
    for (int l = 0; l < 4; ++l)
      for (int n = 0; n < (1 << l); ++n)
        t.set_threshold(l, n, static_cast<std::uint8_t>(rng.next_int(0, 255)));
  }
  std::vector<std::vector<std::array<std::int8_t, 16>>> luts(
      p.ns, std::vector<std::array<std::int8_t, 16>>(p.ndec));
  for (auto& b : luts)
    for (auto& tb : b)
      for (auto& e : tb)
        e = static_cast<std::int8_t>(rng.next_int(-128, 127));
  std::vector<std::int16_t> bias(p.ndec);
  for (auto& v : bias)
    v = static_cast<std::int16_t>(rng.next_int(-1000, 1000));
  macro.program(trees, luts, bias);

  const int ntok = rng.next_int(3, 15);
  std::vector<std::vector<sim::Subvec>> inputs(
      ntok, std::vector<sim::Subvec>(p.ns));
  for (auto& tok : inputs)
    for (auto& sv : tok)
      for (auto& v : sv) v = static_cast<std::uint8_t>(rng.next_int(0, 255));

  const auto res = macro.run(inputs);
  EXPECT_EQ(res.outputs, macro.reference_outputs(inputs));
  // Timing sanity: intervals within the analytic envelope (loosened for
  // variation runs, which may exceed the nominal worst case).
  if (!p.variation && res.stats.output_interval_ns.count() > 0) {
    ppa::DelayModel delay(cfg.op);
    const double lo = p.speculative
                          ? delay.decoder_path_ns(p.ndec) - 0.1
                          : delay.block_latency_best_ns(p.ndec) - 0.1;
    EXPECT_GE(res.stats.output_interval_ns.min(), lo);
    EXPECT_LE(res.stats.output_interval_ns.max(),
              delay.block_latency_worst_ns(p.ndec) + 0.1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Fuzz, MacroFuzz,
    ::testing::Values(FuzzCase{1, 1, false, false, 0.5},
                      FuzzCase{2, 5, false, false, 0.5},
                      FuzzCase{5, 2, true, false, 0.5},
                      FuzzCase{3, 3, false, true, 0.5},
                      FuzzCase{4, 4, true, true, 0.5},
                      FuzzCase{7, 3, false, false, 0.8},
                      FuzzCase{6, 2, true, false, 0.8},
                      FuzzCase{2, 6, true, true, 0.7},
                      FuzzCase{16, 2, false, false, 1.0},
                      FuzzCase{8, 8, true, false, 0.6}));

// --------------------------------------------------------- timed write path

TEST(WritePath, TimedProgrammingMatchesFunctionalAndScales) {
  Rng rng(7);
  auto make_trees = [&](int ns) {
    std::vector<maddness::HashTree> trees(ns);
    for (auto& t : trees)
      for (int l = 0; l < 4; ++l) t.set_split_dim(l, l);
    return trees;
  };
  auto make_luts = [&](int ns, int ndec) {
    std::vector<std::vector<std::array<std::int8_t, 16>>> luts(
        ns, std::vector<std::array<std::int8_t, 16>>(ndec));
    for (auto& b : luts)
      for (auto& tb : b)
        for (auto& e : tb)
          e = static_cast<std::int8_t>(rng.next_int(-127, 127));
    return luts;
  };

  sim::MacroConfig small;
  small.ndec = 2;
  small.ns = 2;
  sim::Macro m_small(small);
  const auto luts_small = make_luts(2, 2);
  const double t_small =
      m_small.program_timed(make_trees(2), luts_small, {0, 0});
  EXPECT_GT(t_small, 0.0);

  // Contents identical to functional programming.
  for (int b = 0; b < 2; ++b)
    for (int d = 0; d < 2; ++d)
      for (int row = 0; row < 16; ++row)
        EXPECT_EQ(m_small.block(b).decoder(d).lut_entry(row),
                  luts_small[b][d][row]);

  // Programming time scales with NS (serial blocks).
  sim::MacroConfig big = small;
  big.ns = 8;
  sim::Macro m_big(big);
  const double t_big =
      m_big.program_timed(make_trees(8), make_luts(8, 2), {0, 0});
  EXPECT_GT(t_big, 3.0 * t_small);

  // And inference still works after timed programming.
  std::vector<std::vector<sim::Subvec>> inputs(
      3, std::vector<sim::Subvec>(2, sim::Subvec{}));
  const auto res = m_small.run(inputs);
  EXPECT_EQ(res.outputs, m_small.reference_outputs(inputs));
}

TEST(WritePath, SlowerAtLowVoltage) {
  auto time_at = [&](double vdd) {
    sim::MacroConfig cfg;
    cfg.ndec = 2;
    cfg.ns = 2;
    cfg.op = {vdd, ppa::Corner::TTG, 25.0};
    sim::Macro m(cfg);
    std::vector<maddness::HashTree> trees(2);
    std::vector<std::vector<std::array<std::int8_t, 16>>> luts(
        2, std::vector<std::array<std::int8_t, 16>>(2));
    return m.program_timed(trees, luts, {0, 0});
  };
  EXPECT_GT(time_at(0.5), 2.0 * time_at(0.8));
}

}  // namespace
}  // namespace ssma
