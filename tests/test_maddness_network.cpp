// Tests for whole-network MADDNESS substitution: stage construction
// (conv+BN folding, residual recursion), exact-path equivalence with the
// source network, error-aware calibration, classifier fine-tuning, and
// the accuracy-preservation property on a trained model.
#include <gtest/gtest.h>

#include "nn/dataset.hpp"
#include "nn/loss.hpp"
#include "nn/maddness_network.hpp"
#include "nn/resnet.hpp"
#include "nn/trainer.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ssma::nn {
namespace {

/// A small conv net with BN and a residual block, trained a little so BN
/// running stats are meaningful.
Network make_trained_net(Rng& rng, const Dataset& data) {
  Network net;
  net.emplace<Conv2d>(3, 8, 3, 1, 1, rng);
  net.emplace<BatchNorm2d>(8);
  net.emplace<ReLU>();
  {
    std::vector<std::unique_ptr<Layer>> body;
    body.push_back(std::make_unique<Conv2d>(8, 8, 3, 1, 1, rng));
    body.push_back(std::make_unique<BatchNorm2d>(8));
    body.push_back(std::make_unique<ReLU>());
    net.add(std::make_unique<Residual>(std::move(body)));
  }
  net.emplace<MaxPool2d>(2);
  net.emplace<Flatten>();
  net.emplace<Linear>(8 * 4 * 4, 10, rng);

  TrainConfig tc;
  tc.epochs = 4;
  tc.batch_size = 20;
  tc.lr_max = 0.03;
  Rng trng(55);
  train(net, data, tc, trng);
  return net;
}

Tensor calibration_batch(const Dataset& data, std::size_t n) {
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < n; ++i) idx.push_back(i);
  return take_batch(data, idx).first;
}

TEST(MaddnessNetwork, ExactPathMatchesSourceNetwork) {
  Rng rng(1);
  Dataset data = make_synthetic_dataset(rng, 120, 8, 8);
  Network net = make_trained_net(rng, data);
  MaddnessNetwork mnet(net, calibration_batch(data, 40));

  auto [x, labels] = take_batch(data, {0, 1, 2, 3, 4});
  (void)labels;
  const Tensor ref = net.forward(x, /*train=*/false);
  const Tensor exact = mnet.forward(x, /*use_amm=*/false);
  ASSERT_TRUE(exact.same_shape(ref));
  for (std::size_t i = 0; i < ref.size(); ++i)
    EXPECT_NEAR(exact[i], ref[i], 5e-3) << "logit " << i;
}

TEST(MaddnessNetwork, SubstitutesAllConvsIncludingResidualBody) {
  Rng rng(3);
  Dataset data = make_synthetic_dataset(rng, 80, 8, 8);
  Network net = make_trained_net(rng, data);
  MaddnessNetwork mnet(net, calibration_batch(data, 30));
  EXPECT_EQ(mnet.num_substituted_convs(), 2u);  // stem + residual body
  EXPECT_EQ(mnet.substituted_conv(0).in_ch(), 3u);
  EXPECT_EQ(mnet.substituted_conv(1).in_ch(), 8u);
}

TEST(MaddnessNetwork, AmmPathPreservesMostAccuracy) {
  Rng rng(5);
  Dataset train_set = make_synthetic_dataset(rng, 300, 8, 8);
  Dataset test_set = make_synthetic_dataset(rng, 100, 8, 8);
  Network net = make_trained_net(rng, train_set);

  MaddnessNetwork mnet(net, calibration_batch(train_set, 60));
  mnet.fine_tune_classifier(train_set.images, train_set.labels, 25, 0.05);

  std::size_t correct = 0;
  for (std::size_t start = 0; start < test_set.size(); start += 25) {
    std::vector<std::size_t> idx;
    for (std::size_t i = start; i < std::min(test_set.size(), start + 25);
         ++i)
      idx.push_back(i);
    auto [x, labels] = take_batch(test_set, idx);
    const auto preds = predict(mnet.forward(x, /*use_amm=*/true));
    for (std::size_t i = 0; i < preds.size(); ++i)
      correct += (preds[i] == labels[i]);
  }
  const double acc =
      static_cast<double>(correct) / static_cast<double>(test_set.size());
  EXPECT_GT(acc, 0.6);  // far above 0.1 chance; small net, small data
}

TEST(MaddnessNetwork, ErrorAwareCalibrationOptionChangesCodebooks) {
  Rng rng(7);
  Dataset data = make_synthetic_dataset(rng, 100, 8, 8);
  Network net = make_trained_net(rng, data);
  const Tensor calib = calibration_batch(data, 30);

  MaddnessNetwork::Options aware;
  aware.error_aware_calibration = true;
  MaddnessNetwork::Options exact;
  exact.error_aware_calibration = false;
  MaddnessNetwork m1(net, calib, aware);
  MaddnessNetwork m2(net, calib, exact);

  // First-layer codebooks see identical inputs, deeper layers differ:
  // compare the *second* conv's LUT contents.
  const auto& l1 = m1.substituted_conv(1).amm().lut().q;
  const auto& l2 = m2.substituted_conv(1).amm().lut().q;
  EXPECT_NE(l1, l2);
}

TEST(MaddnessNetwork, FineTuneRequiresFinalLinear) {
  Rng rng(9);
  Network net;
  net.emplace<Conv2d>(3, 4, 3, 1, 1, rng);
  net.emplace<ReLU>();
  Dataset data = make_synthetic_dataset(rng, 20, 8, 8);
  MaddnessNetwork mnet(net, calibration_batch(data, 10));
  EXPECT_THROW(
      mnet.fine_tune_classifier(data.images, data.labels, 1, 0.01),
      CheckError);
}

TEST(MaddnessNetwork, RejectsNetworksWithoutConvs) {
  Rng rng(11);
  Network net;
  net.emplace<Flatten>();
  net.emplace<Linear>(3 * 8 * 8, 10, rng);
  Dataset data = make_synthetic_dataset(rng, 10, 8, 8);
  EXPECT_THROW(MaddnessNetwork(net, calibration_batch(data, 5)),
               CheckError);
}

TEST(MaddnessNetwork, FineTuneImprovesOrMaintainsTrainAccuracy) {
  Rng rng(13);
  Dataset data = make_synthetic_dataset(rng, 200, 8, 8);
  Network net = make_trained_net(rng, data);
  MaddnessNetwork mnet(net, calibration_batch(data, 50));

  auto acc_on_train = [&] {
    std::size_t correct = 0;
    for (std::size_t start = 0; start < data.size(); start += 50) {
      std::vector<std::size_t> idx;
      for (std::size_t i = start; i < std::min(data.size(), start + 50); ++i)
        idx.push_back(i);
      auto [x, labels] = take_batch(data, idx);
      const auto preds = predict(mnet.forward(x, true));
      for (std::size_t i = 0; i < preds.size(); ++i)
        correct += (preds[i] == labels[i]);
    }
    return static_cast<double>(correct) / static_cast<double>(data.size());
  };

  const double before = acc_on_train();
  mnet.fine_tune_classifier(data.images, data.labels, 25, 0.05);
  const double after = acc_on_train();
  EXPECT_GE(after, before - 0.02);
  EXPECT_GT(after, 0.6);
}

}  // namespace
}  // namespace ssma::nn
