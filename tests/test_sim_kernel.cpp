// Tests for the discrete-event kernel and the leaf circuit models:
// scheduler ordering/determinism, energy ledger, CSA/RCA arithmetic
// invariants, RCD trees, DLC truth table + data-dependent delay, SRAM
// read/write, and the four-phase handshake protocol checker.
#include <gtest/gtest.h>

#include <vector>

#include "maddness/hash_tree.hpp"
#include "sim/adders.hpp"
#include "sim/bdt_encoder.hpp"
#include "sim/context.hpp"
#include "sim/dlc.hpp"
#include "sim/handshake.hpp"
#include "sim/rcd_tree.hpp"
#include "sim/scheduler.hpp"
#include "sim/sram.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ssma::sim {
namespace {

ppa::OperatingPoint ref() { return ppa::nominal_05v(); }

// ------------------------------------------------------------- scheduler

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.at(300, [&] { order.push_back(3); });
  s.at(100, [&] { order.push_back(1); });
  s.at(200, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 300);
}

TEST(Scheduler, EqualTimesKeepInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) s.at(50, [&order, i] { order.push_back(i); });
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Scheduler, EventsMaySpawnEvents) {
  Scheduler s;
  int count = 0;
  std::function<void()> spawn = [&] {
    if (++count < 5) s.after(10, spawn);
  };
  s.at(0, spawn);
  s.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(s.now(), 40);
}

TEST(Scheduler, RejectsPastEvents) {
  Scheduler s;
  s.at(100, [] {});
  s.run();
  EXPECT_THROW(s.at(50, [] {}), CheckError);
  EXPECT_THROW(s.after(-1, [] {}), CheckError);
}

TEST(Scheduler, NsConversionRounds) {
  EXPECT_EQ(ps_from_ns(1.2345), 1235);  // rounds to nearest ps
  EXPECT_DOUBLE_EQ(ns_from_ps(1235), 1.235);
}

// ---------------------------------------------------------------- ledger

TEST(EnergyLedger, ChargesAndGroups) {
  EnergyLedger l;
  l.charge(EnergyCat::kSramRead, 10.0);
  l.charge(EnergyCat::kCsa, 5.0);
  l.charge(EnergyCat::kEncoderDlc, 2.0);
  l.charge(EnergyCat::kControl, 1.0);
  EXPECT_DOUBLE_EQ(l.total_fj(), 18.0);
  EXPECT_DOUBLE_EQ(l.decoder_fj(), 15.0);
  EXPECT_DOUBLE_EQ(l.encoder_fj(), 2.0);
  EXPECT_DOUBLE_EQ(l.other_fj(), 1.0);
  EXPECT_THROW(l.charge(EnergyCat::kCsa, -1.0), CheckError);
}

TEST(EnergyLedger, DeltaIsolatesRun) {
  EnergyLedger before;
  before.charge(EnergyCat::kWrite, 100.0);
  EnergyLedger after = before;
  after.charge(EnergyCat::kSramRead, 50.0);
  const EnergyLedger d = EnergyLedger::delta(after, before);
  EXPECT_DOUBLE_EQ(d.total_fj(), 50.0);
  EXPECT_DOUBLE_EQ(d.fj(EnergyCat::kWrite), 0.0);
}

// ---------------------------------------------------------------- adders

TEST(Adders, CsaPreservesSumInvariant) {
  // Property: S' + C' == S + C + L (mod 2^16), exhaustive over LUT word,
  // randomized over carry-save state.
  Rng rng(1);
  for (int w = -128; w <= 127; ++w) {
    CarrySave in;
    in.s = static_cast<std::uint16_t>(rng.next_u64());
    in.c = static_cast<std::uint16_t>(rng.next_u64());
    const CarrySave out = csa_step(in, static_cast<std::int8_t>(w));
    const std::uint16_t expect = static_cast<std::uint16_t>(
        in.s + in.c + static_cast<std::uint16_t>(static_cast<std::int16_t>(
                          static_cast<std::int8_t>(w))));
    EXPECT_EQ(static_cast<std::uint16_t>(out.s + out.c), expect)
        << "w=" << w << " s=" << in.s << " c=" << in.c;
  }
}

TEST(Adders, CsaChainEqualsPlainSum) {
  // A chain of 32 csa_steps followed by resolve() equals the wrapped
  // int16 sum — the arithmetic contract of the whole pipeline.
  Rng rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    CarrySave acc;
    acc.s = static_cast<std::uint16_t>(rng.next_int(-2000, 2000));
    std::int32_t ref = static_cast<std::int16_t>(acc.s);
    for (int i = 0; i < 32; ++i) {
      const auto w = static_cast<std::int8_t>(rng.next_int(-128, 127));
      acc = csa_step(acc, w);
      ref += w;
    }
    EXPECT_EQ(acc.resolve(), static_cast<std::int16_t>(ref));
  }
}

TEST(Adders, ToggleCountBounds) {
  CarrySave a{0x0000, 0x0000}, b{0xFFFF, 0xFFFF};
  EXPECT_EQ(csa_toggled_bits(a, a), 0);
  EXPECT_EQ(csa_toggled_bits(a, b), 32);
}

TEST(Adders, RcaCarryChainCases) {
  EXPECT_EQ(rca_carry_chain({0x0000, 0x0000}), 0);  // no generate
  // s=1, c=1 at bit0 generates; s^c=1 at bits 1..14 propagates.
  CarrySave long_chain{0x7FFF, 0x0001};
  EXPECT_EQ(rca_carry_chain(long_chain), 15);
  // Generate at bit 0, no propagation above.
  EXPECT_EQ(rca_carry_chain({0x0001, 0x0001}), 1);
}

TEST(Adders, RcaChainNeverExceeds16) {
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    CarrySave cs{static_cast<std::uint16_t>(rng.next_u64()),
                 static_cast<std::uint16_t>(rng.next_u64())};
    const int chain = rca_carry_chain(cs);
    EXPECT_GE(chain, 0);
    EXPECT_LE(chain, 16);
  }
}

// -------------------------------------------------------------- RCD tree

TEST(RcdTree, FiresOnlyAfterAllLeaves) {
  SimContext ctx(ref());
  RcdTree tree(4, 1.0);
  bool fired = false;
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(tree.fired());
    tree.leaf_done(ctx, [&] { fired = true; });
  }
  EXPECT_TRUE(tree.fired());
  EXPECT_FALSE(fired);  // propagation delay pending
  ctx.sched.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(ctx.sched.now(), ps_from_ns(1.0));
}

TEST(RcdTree, OverrunIsProtocolError) {
  SimContext ctx(ref());
  RcdTree tree(2, 0.5);
  tree.leaf_done(ctx, [] {});
  tree.leaf_done(ctx, [] {});
  EXPECT_THROW(tree.leaf_done(ctx, [] {}), CheckError);
  tree.reset();
  tree.leaf_done(ctx, [] {});  // fine after reset
}

// -------------------------------------------------------------------- DLC

TEST(Dlc, TruthTableExhaustive) {
  // Functional contract over the full 8-bit operand space (sampled rows,
  // exhaustive columns): output must equal (x >= t).
  SimContext ctx(ref());
  for (int t = 0; t < 256; t += 5) {
    Dlc dlc(static_cast<std::uint8_t>(t), 0.0);
    for (int x = 0; x < 256; ++x) {
      const DlcResult r = dlc.evaluate(ctx, static_cast<std::uint8_t>(x));
      EXPECT_EQ(r.x_ge_t, x >= t);
    }
  }
}

TEST(Dlc, DepthAgreesWithHashTreeModel) {
  // The circuit model and the software hash tree must agree on the
  // resolution depth for every operand pair (sampled).
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const auto x = static_cast<std::uint8_t>(rng.next_int(0, 255));
    const auto t = static_cast<std::uint8_t>(rng.next_int(0, 255));
    EXPECT_EQ(Dlc::compare_depth(x, t),
              maddness::HashTree::compare_depth(x, t));
  }
}

TEST(Dlc, DelayGrowsWithEqualHighBits) {
  SimContext ctx(ref());
  Dlc dlc(0b10000000, 0.0);
  const DlcResult fast = dlc.evaluate(ctx, 0b00000000);  // MSB differs
  const DlcResult slow = dlc.evaluate(ctx, 0b10000001);  // depth 8
  EXPECT_LT(fast.delay_ns, slow.delay_ns);
  EXPECT_EQ(fast.depth, 1);
  EXPECT_EQ(slow.depth, 8);
}

TEST(Dlc, VariationShiftsDelay) {
  SimContext ctx(ref());
  Dlc nominal(100, 0.0);
  Dlc slow(100, +0.015);
  Dlc fast(100, -0.015);
  const double d0 = nominal.evaluate(ctx, 30).delay_ns;
  EXPECT_GT(slow.evaluate(ctx, 30).delay_ns, d0);
  EXPECT_LT(fast.evaluate(ctx, 30).delay_ns, d0);
}

TEST(Dlc, EvaluationChargesEnergy) {
  SimContext ctx(ref());
  const double before = ctx.ledger.fj(EnergyCat::kEncoderDlc);
  Dlc dlc(50, 0.0);
  dlc.evaluate(ctx, 200);
  EXPECT_GT(ctx.ledger.fj(EnergyCat::kEncoderDlc), before);
}

// ------------------------------------------------------------------ SRAM

TEST(Sram, WriteReadRoundTrip) {
  SimContext ctx(ref());
  SramArray sram;
  for (int row = 0; row < 16; ++row)
    sram.write_row(ctx, row, static_cast<std::int8_t>(row * 17 - 128));
  for (int row = 0; row < 16; ++row)
    EXPECT_EQ(sram.read_word(row), static_cast<std::int8_t>(row * 17 - 128));
  EXPECT_THROW(sram.write_row(ctx, 16, 0), CheckError);
}

TEST(Sram, ColumnBitsComposeWord) {
  SimContext ctx(ref());
  SramArray sram;
  sram.write_row(ctx, 3, static_cast<std::int8_t>(0b10110101 - 256));
  int word = 0;
  for (int col = 0; col < 8; ++col)
    word |= sram.read_column(ctx, 3, col).bit << col;
  EXPECT_EQ(static_cast<std::int8_t>(word), sram.read_word(3));
}

TEST(Sram, ReadChargesEnergyAndHasDelay) {
  SimContext ctx(ref());
  SramArray sram;
  sram.write_row(ctx, 0, 77);
  const double e0 = ctx.ledger.fj(EnergyCat::kSramRead);
  const auto r = sram.read_column(ctx, 0, 0);
  EXPECT_GT(ctx.ledger.fj(EnergyCat::kSramRead), e0);
  EXPECT_NEAR(r.delay_ns, 2.5, 1e-9);  // reference RBL discharge
}

// ------------------------------------------------------------- handshake

TEST(Handshake, FourPhaseCycleCompletes) {
  SimContext ctx(ref());
  FourPhaseLink link;
  int delivered = -1;
  bool rtz = false;
  link.set_consumer([&](const Token& t) {
    delivered = static_cast<int>(t.index);
    return true;
  });
  link.set_producer([&] { rtz = true; });
  Token t;
  t.index = 7;
  link.offer(ctx, std::move(t));
  EXPECT_EQ(delivered, 7);
  EXPECT_FALSE(rtz);  // return-to-zero still in flight
  ctx.sched.run();
  EXPECT_TRUE(rtz);
  EXPECT_TRUE(link.idle());
  EXPECT_EQ(link.completed_cycles(), 1);
}

TEST(Handshake, BusyConsumerStallsProducer) {
  SimContext ctx(ref());
  FourPhaseLink link;
  bool accept = false;
  int deliveries = 0;
  link.set_consumer([&](const Token&) {
    ++deliveries;
    return accept;
  });
  link.set_producer([] {});
  Token t;
  t.index = 1;
  link.offer(ctx, std::move(t));
  ctx.sched.run();
  EXPECT_EQ(deliveries, 1);
  EXPECT_TRUE(link.has_pending());
  EXPECT_EQ(link.state(), FourPhaseLink::State::kReqHigh);
  // Consumer becomes ready: token re-offered and the cycle completes.
  accept = true;
  link.consumer_ready(ctx);
  ctx.sched.run();
  EXPECT_EQ(deliveries, 2);
  EXPECT_TRUE(link.idle());
}

TEST(Handshake, DoubleOfferIsProtocolError) {
  SimContext ctx(ref());
  FourPhaseLink link;
  link.set_consumer([](const Token&) { return false; });
  link.set_producer([] {});
  Token a, b;
  link.offer(ctx, std::move(a));
  EXPECT_THROW(link.offer(ctx, std::move(b)), CheckError);
}

TEST(Handshake, OfferDuringRtzIsProtocolError) {
  SimContext ctx(ref());
  FourPhaseLink link;
  link.set_consumer([](const Token&) { return true; });
  link.set_producer([] {});
  Token a;
  link.offer(ctx, std::move(a));
  // ACK is high; REQ has not fallen yet — offering now violates 4-phase.
  EXPECT_EQ(link.state(), FourPhaseLink::State::kAckHigh);
  Token b;
  EXPECT_THROW(link.offer(ctx, std::move(b)), CheckError);
  ctx.sched.run();
  Token c;
  link.offer(ctx, std::move(c));  // legal again after return-to-zero
  ctx.sched.run();
  EXPECT_EQ(link.completed_cycles(), 2);
}

}  // namespace
}  // namespace ssma::sim
