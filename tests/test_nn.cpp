// Tests for the DNN substrate: im2col round trips, conv correctness vs a
// direct loop, numerical gradient checks for every layer, BN folding
// equivalence, training convergence on a tiny task, and the MADDNESS
// conv substitution.
#include <gtest/gtest.h>

#include <cmath>

#include "maddness/amm.hpp"
#include "nn/dataset.hpp"
#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "nn/maddness_conv.hpp"
#include "nn/network.hpp"
#include "nn/optimizer.hpp"
#include "nn/resnet.hpp"
#include "nn/tensor.hpp"
#include "nn/trainer.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ssma::nn {
namespace {

Tensor random_tensor(Rng& rng, std::size_t n, std::size_t c, std::size_t h,
                     std::size_t w, double lo = -1.0, double hi = 1.0) {
  Tensor t(n, c, h, w);
  for (std::size_t i = 0; i < t.size(); ++i)
    t[i] = static_cast<float>(rng.next_double(lo, hi));
  return t;
}

/// Central-difference gradient check of dL/dx for an arbitrary layer,
/// where L = sum(forward(x) * seed) for a fixed random seed tensor.
void check_input_gradient(Layer& layer, const Tensor& x, Rng& rng,
                          double tol = 2e-2) {
  Tensor base = layer.forward(x, /*train=*/true);
  Tensor seed(base.n(), base.c(), base.h(), base.w());
  for (std::size_t i = 0; i < seed.size(); ++i)
    seed[i] = static_cast<float>(rng.next_double(-1, 1));

  // Analytic gradient.
  layer.forward(x, true);
  const Tensor dx = layer.backward(seed);

  // Numerical gradient on a sample of coordinates.
  const double eps = 1e-2;
  const std::size_t stride = std::max<std::size_t>(1, x.size() / 24);
  for (std::size_t i = 0; i < x.size(); i += stride) {
    Tensor xp = x, xm = x;
    xp[i] += static_cast<float>(eps);
    xm[i] -= static_cast<float>(eps);
    const Tensor yp = layer.forward(xp, true);
    const Tensor ym = layer.forward(xm, true);
    double lp = 0.0, lm = 0.0;
    for (std::size_t j = 0; j < yp.size(); ++j) {
      lp += static_cast<double>(yp[j]) * seed[j];
      lm += static_cast<double>(ym[j]) * seed[j];
    }
    const double num = (lp - lm) / (2 * eps);
    EXPECT_NEAR(dx[i], num, tol * std::max(1.0, std::abs(num)))
        << "input coord " << i;
  }
}

/// Central-difference check of a parameter gradient.
void check_param_gradient(Layer& layer, Param& p, const Tensor& x, Rng& rng,
                          double tol = 2e-2) {
  Tensor base = layer.forward(x, true);
  Tensor seed(base.n(), base.c(), base.h(), base.w());
  for (std::size_t i = 0; i < seed.size(); ++i)
    seed[i] = static_cast<float>(rng.next_double(-1, 1));

  p.grad.fill(0.0f);
  layer.forward(x, true);
  layer.backward(seed);
  const Tensor analytic = p.grad;

  const double eps = 1e-2;
  const std::size_t stride = std::max<std::size_t>(1, p.value.size() / 16);
  for (std::size_t i = 0; i < p.value.size(); i += stride) {
    const float save = p.value[i];
    p.value[i] = save + static_cast<float>(eps);
    const Tensor yp = layer.forward(x, true);
    p.value[i] = save - static_cast<float>(eps);
    const Tensor ym = layer.forward(x, true);
    p.value[i] = save;
    double lp = 0.0, lm = 0.0;
    for (std::size_t j = 0; j < yp.size(); ++j) {
      lp += static_cast<double>(yp[j]) * seed[j];
      lm += static_cast<double>(ym[j]) * seed[j];
    }
    const double num = (lp - lm) / (2 * eps);
    EXPECT_NEAR(analytic[i], num, tol * std::max(1.0, std::abs(num)))
        << "param coord " << i;
  }
}

// ----------------------------------------------------------------- tensor

TEST(Tensor, IndexingAndBounds) {
  Tensor t(2, 3, 4, 5);
  t.at(1, 2, 3, 4) = 7.0f;
  EXPECT_EQ(t.at(1, 2, 3, 4), 7.0f);
  EXPECT_EQ(t.size(), 2u * 3 * 4 * 5);
  EXPECT_THROW(t.at(2, 0, 0, 0), CheckError);
}

TEST(Tensor, Im2colKnownValues) {
  // 1x1x3x3 input, k=3, pad=1: center row of im2col equals the image.
  Tensor x(1, 1, 3, 3);
  for (int i = 0; i < 9; ++i) x[i] = static_cast<float>(i + 1);
  const Matrix cols = im2col(x, 3, 1, 1);
  EXPECT_EQ(cols.rows(), 9u);
  EXPECT_EQ(cols.cols(), 9u);
  // Output position (1,1) sees the full image.
  for (int i = 0; i < 9; ++i) EXPECT_EQ(cols(4, i), x[i]);
  // Corner (0,0): top-left patch has zeros from padding.
  EXPECT_EQ(cols(0, 0), 0.0f);
  EXPECT_EQ(cols(0, 4), 1.0f);  // center of patch = pixel (0,0)
}

TEST(Tensor, Im2colChannelBlocksAreContiguous) {
  // The accelerator mapping needs channel c's 3x3 patch at columns
  // [9c, 9c+9).
  Rng rng(3);
  Tensor x = random_tensor(rng, 1, 2, 4, 4);
  const Matrix cols = im2col(x, 3, 1, 1);
  EXPECT_EQ(cols.cols(), 18u);
  // Row for output (1,1): channel 1 patch center = x(0,1,1,1).
  const std::size_t row = 1 * 4 + 1;
  EXPECT_EQ(cols(row, 9 + 4), x.at(0, 1, 1, 1));
}

TEST(Tensor, Col2imIsAdjointOfIm2col) {
  // <im2col(x), y> == <x, col2im(y)> — the defining adjoint property,
  // which is exactly what conv backward relies on.
  Rng rng(5);
  Tensor x = random_tensor(rng, 2, 3, 5, 5);
  const Matrix cols = im2col(x, 3, 1, 1);
  Matrix y(cols.rows(), cols.cols());
  for (std::size_t i = 0; i < y.size(); ++i)
    y.data()[i] = static_cast<float>(rng.next_double(-1, 1));
  const Tensor xback = col2im(y, 2, 3, 5, 5, 3, 1, 1);
  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < cols.size(); ++i)
    lhs += static_cast<double>(cols.data()[i]) * y.data()[i];
  for (std::size_t i = 0; i < x.size(); ++i)
    rhs += static_cast<double>(x[i]) * xback[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

// ------------------------------------------------------------------ conv

TEST(Conv2d, MatchesDirectConvolution) {
  Rng rng(7);
  Conv2d conv(2, 3, 3, 1, 1, rng);
  Tensor x = random_tensor(rng, 2, 2, 6, 6);
  const Tensor y = conv.forward(x, false);
  ASSERT_EQ(y.c(), 3u);
  ASSERT_EQ(y.h(), 6u);

  for (std::size_t n = 0; n < 2; ++n)
    for (std::size_t o = 0; o < 3; ++o)
      for (std::size_t oy = 0; oy < 6; ++oy)
        for (std::size_t ox = 0; ox < 6; ++ox) {
          double acc = conv.bias().value[o];
          for (std::size_t c = 0; c < 2; ++c)
            for (int ky = 0; ky < 3; ++ky)
              for (int kx = 0; kx < 3; ++kx) {
                const long long iy = static_cast<long long>(oy) + ky - 1;
                const long long ix = static_cast<long long>(ox) + kx - 1;
                if (iy < 0 || ix < 0 || iy >= 6 || ix >= 6) continue;
                acc += static_cast<double>(conv.weight().value.at(o, c, ky, kx)) *
                       x.at(n, c, static_cast<std::size_t>(iy),
                            static_cast<std::size_t>(ix));
              }
          EXPECT_NEAR(y.at(n, o, oy, ox), acc, 1e-3);
        }
}

TEST(Conv2d, StrideTwoShapes) {
  Rng rng(9);
  Conv2d conv(1, 2, 3, 2, 1, rng);
  Tensor x = random_tensor(rng, 1, 1, 8, 8);
  const Tensor y = conv.forward(x, false);
  EXPECT_EQ(y.h(), 4u);
  EXPECT_EQ(y.w(), 4u);
}

TEST(Conv2d, InputGradient) {
  Rng rng(11);
  Conv2d conv(2, 2, 3, 1, 1, rng);
  Tensor x = random_tensor(rng, 1, 2, 4, 4);
  check_input_gradient(conv, x, rng);
}

TEST(Conv2d, WeightAndBiasGradient) {
  Rng rng(13);
  Conv2d conv(2, 2, 3, 1, 1, rng);
  Tensor x = random_tensor(rng, 2, 2, 4, 4);
  check_param_gradient(conv, conv.weight(), x, rng);
  check_param_gradient(conv, conv.bias(), x, rng);
}

TEST(Conv2d, WeightMatrixRoundTrip) {
  Rng rng(15);
  Conv2d conv(3, 4, 3, 1, 1, rng);
  const Matrix w = conv.weight_matrix();
  Conv2d conv2(3, 4, 3, 1, 1, rng);
  conv2.set_weight_matrix(w);
  EXPECT_LT(frobenius_diff(conv2.weight_matrix(), w), 1e-9);
}

// --------------------------------------------------------------------- BN

TEST(BatchNorm2d, NormalizesBatchStatistics) {
  Rng rng(17);
  BatchNorm2d bn(3);
  Tensor x = random_tensor(rng, 4, 3, 5, 5, -3.0, 9.0);
  const Tensor y = bn.forward(x, true);
  for (std::size_t c = 0; c < 3; ++c) {
    double s = 0.0, sq = 0.0;
    const std::size_t cnt = 4 * 5 * 5;
    for (std::size_t n = 0; n < 4; ++n)
      for (std::size_t h = 0; h < 5; ++h)
        for (std::size_t w = 0; w < 5; ++w) {
          s += y.at(n, c, h, w);
          sq += static_cast<double>(y.at(n, c, h, w)) * y.at(n, c, h, w);
        }
    EXPECT_NEAR(s / cnt, 0.0, 1e-4);
    EXPECT_NEAR(sq / cnt, 1.0, 1e-2);
  }
}

TEST(BatchNorm2d, InputGradient) {
  Rng rng(19);
  BatchNorm2d bn(2);
  Tensor x = random_tensor(rng, 2, 2, 3, 3);
  check_input_gradient(bn, x, rng, 5e-2);
}

TEST(BatchNorm2d, GammaBetaGradient) {
  Rng rng(21);
  BatchNorm2d bn(2);
  Tensor x = random_tensor(rng, 2, 2, 3, 3);
  auto params = bn.params();
  check_param_gradient(bn, *params[0], x, rng, 5e-2);
  check_param_gradient(bn, *params[1], x, rng, 5e-2);
}

TEST(BatchNorm2d, EvalUsesRunningStats) {
  Rng rng(23);
  BatchNorm2d bn(1);
  for (int i = 0; i < 50; ++i)
    bn.forward(random_tensor(rng, 8, 1, 4, 4, 2.0, 4.0), true);
  // Eval mode on fresh data must use running stats, not batch stats.
  Tensor probe(1, 1, 1, 1);
  probe[0] = 3.0f;  // near the running mean
  const Tensor y = bn.forward(probe, false);
  EXPECT_NEAR(y[0], 0.0, 0.5);
}

// ----------------------------------------------------------- other layers

TEST(ReLU, ForwardAndGradient) {
  Rng rng(25);
  ReLU relu;
  Tensor x = random_tensor(rng, 2, 2, 3, 3);
  const Tensor y = relu.forward(x, true);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_EQ(y[i], std::max(0.0f, x[i]));
  check_input_gradient(relu, x, rng);
}

TEST(MaxPool2d, ForwardKnownValues) {
  Tensor x(1, 1, 4, 4);
  for (int i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  MaxPool2d pool(2);
  const Tensor y = pool.forward(x, false);
  EXPECT_EQ(y.h(), 2u);
  EXPECT_EQ(y.at(0, 0, 0, 0), 5.0f);
  EXPECT_EQ(y.at(0, 0, 1, 1), 15.0f);
}

TEST(MaxPool2d, InputGradient) {
  Rng rng(27);
  MaxPool2d pool(2);
  Tensor x = random_tensor(rng, 1, 2, 4, 4);
  check_input_gradient(pool, x, rng);
}

TEST(Linear, ForwardAndGradients) {
  Rng rng(29);
  Linear lin(12, 5, rng);
  Tensor x = random_tensor(rng, 3, 12, 1, 1);
  check_input_gradient(lin, x, rng);
  check_param_gradient(lin, lin.weight(), x, rng);
  check_param_gradient(lin, lin.bias(), x, rng);
}

TEST(Residual, AddsIdentityAndBackpropagates) {
  Rng rng(31);
  std::vector<std::unique_ptr<Layer>> body;
  body.push_back(std::make_unique<Conv2d>(2, 2, 3, 1, 1, rng));
  body.push_back(std::make_unique<ReLU>());
  Residual res(std::move(body));
  Tensor x = random_tensor(rng, 1, 2, 4, 4);
  const Tensor y = res.forward(x, true);
  EXPECT_TRUE(y.same_shape(x));
  check_input_gradient(res, x, rng);
}

// ------------------------------------------------------------------- loss

TEST(Loss, UniformLogitsGiveLogK) {
  Tensor logits(2, 10, 1, 1, 0.0f);
  const LossResult r = softmax_cross_entropy(logits, {3, 7});
  EXPECT_NEAR(r.loss, std::log(10.0), 1e-6);
}

TEST(Loss, GradientMatchesNumerical) {
  Rng rng(33);
  Tensor logits = random_tensor(rng, 2, 5, 1, 1);
  std::vector<int> labels = {1, 4};
  const LossResult r = softmax_cross_entropy(logits, labels);
  const double eps = 1e-3;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    Tensor lp = logits, lm = logits;
    lp[i] += static_cast<float>(eps);
    lm[i] -= static_cast<float>(eps);
    const double num = (softmax_cross_entropy(lp, labels).loss -
                        softmax_cross_entropy(lm, labels).loss) /
                       (2 * eps);
    EXPECT_NEAR(r.grad[i], num, 1e-3);
  }
}

TEST(Loss, PredictsArgmax) {
  Tensor logits(1, 4, 1, 1);
  logits[2] = 5.0f;
  EXPECT_EQ(predict(logits), std::vector<int>{2});
}

// -------------------------------------------------------------- BN folding

TEST(Network, BatchNormFoldingPreservesOutputs) {
  Rng rng(35);
  Conv2d conv(2, 3, 3, 1, 1, rng);
  BatchNorm2d bn(3);
  // Give BN nontrivial running stats via training passes.
  for (int i = 0; i < 30; ++i)
    bn.forward(conv.forward(random_tensor(rng, 4, 2, 6, 6, 0.0, 1.0), true),
               true);

  Tensor x = random_tensor(rng, 2, 2, 6, 6, 0.0, 1.0);
  const Tensor ref = bn.forward(conv.forward(x, false), false);
  fold_batchnorm(conv, bn);
  const Tensor folded = conv.forward(x, false);
  ASSERT_TRUE(folded.same_shape(ref));
  for (std::size_t i = 0; i < ref.size(); ++i)
    EXPECT_NEAR(folded[i], ref[i], 2e-3);
}

// ---------------------------------------------------------------- training

TEST(Training, OverfitsTinyDataset) {
  Rng rng(37);
  Dataset data = make_synthetic_dataset(rng, 80, 8, 8);
  Network net;
  net.emplace<Conv2d>(3, 8, 3, 1, 1, rng);
  net.emplace<ReLU>();
  net.emplace<MaxPool2d>(2);
  net.emplace<Flatten>();
  net.emplace<Linear>(8 * 4 * 4, 10, rng);

  TrainConfig cfg;
  cfg.epochs = 14;
  cfg.batch_size = 16;
  cfg.lr_max = 0.05;
  Rng trng(38);
  const TrainHistory hist = train(net, data, cfg, trng);
  EXPECT_LT(hist.epoch_loss.back(), hist.epoch_loss.front());
  EXPECT_GT(evaluate(net, data), 0.8);
}

TEST(Training, Resnet9BuildsAndLearns) {
  Rng rng(39);
  ResnetConfig rc;
  rc.width = 4;
  rc.img_h = 8;
  rc.img_w = 8;
  Network net = make_resnet9(rc, rng);
  EXPECT_GT(net.num_parameters(), 1000u);

  Dataset data = make_synthetic_dataset(rng, 120, 8, 8);
  TrainConfig cfg;
  cfg.epochs = 6;
  cfg.batch_size = 20;
  cfg.lr_max = 0.03;
  Rng trng(40);
  train(net, data, cfg, trng);
  EXPECT_GT(evaluate(net, data), 0.5);  // well above the 0.1 chance level
}

TEST(Dataset, BalancedAndBounded) {
  Rng rng(41);
  Dataset data = make_synthetic_dataset(rng, 100, 8, 8);
  std::vector<int> counts(10, 0);
  for (int l : data.labels) ++counts[l];
  for (int c : counts) EXPECT_EQ(c, 10);
  for (std::size_t i = 0; i < data.images.size(); ++i) {
    EXPECT_GE(data.images[i], 0.0f);
    EXPECT_LE(data.images[i], 1.0f);
  }
}

TEST(Optimizer, CosineScheduleEndpoints) {
  EXPECT_NEAR(cosine_lr(0.1, 0.01, 0, 100), 0.1, 1e-12);
  EXPECT_NEAR(cosine_lr(0.1, 0.01, 100, 100), 0.01, 1e-12);
  EXPECT_NEAR(cosine_lr(0.1, 0.01, 50, 100), 0.055, 1e-12);
}

TEST(Optimizer, StepReducesLossOnQuadratic) {
  // Single linear layer fitting y = 2x: a few SGD steps reduce loss.
  Rng rng(43);
  Linear lin(1, 1, rng);
  SgdOptimizer opt({&lin.weight(), &lin.bias()}, 0.3, 0.0, 0.0);
  double first_loss = -1.0, last_loss = -1.0;
  for (int it = 0; it < 300; ++it) {
    Tensor x(4, 1, 1, 1);
    for (int i = 0; i < 4; ++i) x[i] = static_cast<float>(i) / 4.0f;
    const Tensor y = lin.forward(x, true);
    Tensor grad(4, 1, 1, 1);
    double loss = 0.0;
    for (int i = 0; i < 4; ++i) {
      const double target = 2.0 * x[i];
      loss += (y[i] - target) * (y[i] - target);
      grad[i] = static_cast<float>(2.0 * (y[i] - target) / 4.0);
    }
    lin.backward(grad);
    opt.step();
    if (it == 0) first_loss = loss;
    last_loss = loss;
  }
  EXPECT_LT(last_loss, 0.01 * first_loss);
}

// ----------------------------------------------------------- maddness conv

TEST(MaddnessConv, ApproximatesFoldedConv) {
  Rng rng(45);
  Conv2d conv(4, 6, 3, 1, 1, rng);
  // Calibration = realistic non-negative activations.
  Tensor calib = random_tensor(rng, 6, 4, 8, 8, 0.0, 1.0);
  MaddnessConv2d mconv(conv, calib);

  Tensor x = random_tensor(rng, 2, 4, 8, 8, 0.0, 1.0);
  const Tensor exact = mconv.forward_exact(x);
  const Tensor approx = mconv.forward(x);
  ASSERT_TRUE(approx.same_shape(exact));
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    num += (approx[i] - exact[i]) * (approx[i] - exact[i]);
    den += exact[i] * exact[i];
  }
  EXPECT_LT(std::sqrt(num / den), 0.6);  // coarse but informative
}

TEST(MaddnessConv, ExactPathMatchesConvLayer) {
  Rng rng(47);
  Conv2d conv(3, 5, 3, 1, 1, rng);
  Tensor calib = random_tensor(rng, 4, 3, 8, 8, 0.0, 1.0);
  MaddnessConv2d mconv(conv, calib);
  Tensor x = random_tensor(rng, 2, 3, 8, 8, 0.0, 1.0);
  const Tensor a = conv.forward(x, false);
  const Tensor b = mconv.forward_exact(x);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-3);
}

TEST(MaddnessConv, RejectsNon3x3) {
  Rng rng(49);
  Conv2d conv(2, 2, 5, 1, 2, rng);
  Tensor calib = random_tensor(rng, 1, 2, 8, 8, 0.0, 1.0);
  EXPECT_THROW(MaddnessConv2d(conv, calib), CheckError);
}

TEST(MaddnessConv, CodebookCountEqualsInputChannels) {
  Rng rng(51);
  Conv2d conv(5, 4, 3, 1, 1, rng);
  Tensor calib = random_tensor(rng, 2, 5, 8, 8, 0.0, 1.0);
  MaddnessConv2d mconv(conv, calib);
  EXPECT_EQ(mconv.amm().cfg().ncodebooks, 5);
  EXPECT_EQ(mconv.amm().lut().nout, 4);
}

}  // namespace
}  // namespace ssma::nn
