// Tests for the MADDNESS algorithm substrate: quantization round trips,
// bucket/split math, tree learning (SSE reduction, hardware
// representability), prototype optimization, LUT quantization, and
// end-to-end AMM error bounds.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "maddness/alt_encoders.hpp"
#include "maddness/amm.hpp"
#include "maddness/bucket.hpp"
#include "maddness/hash_tree.hpp"
#include "maddness/lut.hpp"
#include "maddness/prototypes.hpp"
#include "maddness/quantize.hpp"
#include "maddness/tree_learner.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ssma::maddness {
namespace {

/// Clustered synthetic activations: `nclusters` centers per subspace, so
/// PQ should approximate well.
Matrix clustered_data(Rng& rng, std::size_t n, int ncodebooks, int dim,
                      int nclusters, double noise = 4.0) {
  Matrix centers(static_cast<std::size_t>(nclusters) * ncodebooks, dim);
  for (std::size_t i = 0; i < centers.size(); ++i)
    centers.data()[i] = static_cast<float>(rng.next_double(20, 235));
  Matrix x(n, static_cast<std::size_t>(ncodebooks) * dim);
  for (std::size_t i = 0; i < n; ++i)
    for (int c = 0; c < ncodebooks; ++c) {
      const int k = rng.next_int(0, nclusters - 1);
      for (int j = 0; j < dim; ++j) {
        const double v =
            centers(static_cast<std::size_t>(c) * nclusters + k, j) +
            rng.next_gaussian(0.0, noise);
        x(i, static_cast<std::size_t>(c) * dim + j) =
            static_cast<float>(std::clamp(v, 0.0, 255.0));
      }
    }
  return x;
}

Matrix random_weights(Rng& rng, std::size_t rows, std::size_t cols) {
  Matrix w(rows, cols);
  for (std::size_t i = 0; i < w.size(); ++i)
    w.data()[i] = static_cast<float>(rng.next_gaussian(0.0, 0.05));
  return w;
}

// ------------------------------------------------------------- quantize

TEST(Quantize, RoundTripError) {
  Rng rng(1);
  Matrix x(50, 9);
  for (std::size_t i = 0; i < x.size(); ++i)
    x.data()[i] = static_cast<float>(rng.next_double(0, 10));
  const auto q = quantize_activations(x);
  const Matrix back = dequantize(q);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(back.data()[i], x.data()[i], q.scale * 0.5 + 1e-6);
}

TEST(Quantize, RejectsNegative) {
  Matrix x(1, 2);
  x(0, 0) = -1.0f;
  EXPECT_THROW(quantize_activations(x), CheckError);
}

TEST(Quantize, SaturatesAboveScaleRange) {
  Matrix x(1, 2);
  x(0, 0) = 100.0f;
  x(0, 1) = 50.0f;
  const auto q = quantize_activations(x, /*scale=*/0.1f);
  EXPECT_EQ(q.at(0, 0), 255);  // 1000 saturates
}

TEST(Quantize, ZeroMatrixUsesUnitScale) {
  Matrix x(3, 3, 0.0f);
  const auto q = quantize_activations(x);
  EXPECT_EQ(q.scale, 1.0f);
  for (auto c : q.codes) EXPECT_EQ(c, 0);
}

// --------------------------------------------------------------- buckets

TEST(Bucket, SseOfConstantBucketIsZero)
{
  Matrix x(4, 3, 2.5f);
  Bucket b(x, {0, 1, 2, 3});
  EXPECT_NEAR(b.sse(x), 0.0, 1e-9);
}

TEST(Bucket, SseMatchesDirectComputation) {
  Rng rng(3);
  Matrix x(20, 4);
  for (std::size_t i = 0; i < x.size(); ++i)
    x.data()[i] = static_cast<float>(rng.next_double(0, 100));
  std::vector<std::size_t> rows = {1, 4, 7, 9, 13, 19};
  Bucket b(x, rows);
  const auto mean = b.mean(x);
  double direct = 0.0;
  for (auto r : rows)
    for (std::size_t c = 0; c < 4; ++c) {
      const double d = x(r, c) - mean[c];
      direct += d * d;
    }
  EXPECT_NEAR(b.sse(x), direct, 1e-6 * direct + 1e-9);
}

TEST(Bucket, BestSplitSeparatesBimodalData) {
  // Dim 0 bimodal at 10 and 200; dim 1 constant. Split must pick a
  // threshold between the modes.
  Matrix x(40, 2);
  for (int i = 0; i < 40; ++i) {
    x(i, 0) = i < 20 ? 10.0f : 200.0f;
    x(i, 1) = 50.0f;
  }
  std::vector<std::size_t> rows(40);
  for (std::size_t i = 0; i < 40; ++i) rows[i] = i;
  Bucket b(x, rows);
  const SplitChoice s0 = best_split_on_dim(x, b, 0);
  EXPECT_GT(s0.threshold, 10.0);
  EXPECT_LE(s0.threshold, 200.0);
  EXPECT_NEAR(s0.loss, 0.0, 1e-9);
  EXPECT_EQ(s0.left_count, 20u);
  // Splitting on the constant dim cannot reduce SSE.
  const SplitChoice s1 = best_split_on_dim(x, b, 1);
  EXPECT_NEAR(s1.loss, b.sse(x), 1e-6);
}

TEST(Bucket, SplitRespectsGePredicate) {
  Matrix x(4, 1);
  x(0, 0) = 5;
  x(1, 0) = 10;
  x(2, 0) = 10;
  x(3, 0) = 20;
  Bucket b(x, {0, 1, 2, 3});
  auto [left, right] = split_bucket(x, b, 0, 10.0);
  EXPECT_EQ(left.size(), 1u);   // only 5 < 10
  EXPECT_EQ(right.size(), 3u);  // 10, 10, 20 >= 10
}

// ----------------------------------------------------------- hash tree

TEST(HashTree, EncodeWalksCorrectPath) {
  HashTree t;
  t.set_split_dim(0, 0);
  t.set_split_dim(1, 1);
  t.set_split_dim(2, 2);
  t.set_split_dim(3, 3);
  // All thresholds 128: leaf bits = (x_i >= 128).
  std::uint8_t v1[4] = {200, 10, 130, 127};
  EXPECT_EQ(t.encode(v1), 0b1010);
  std::uint8_t v2[4] = {0, 0, 0, 0};
  EXPECT_EQ(t.encode(v2), 0);
  std::uint8_t v3[4] = {255, 255, 255, 255};
  EXPECT_EQ(t.encode(v3), 15);
}

TEST(HashTree, ThresholdLayoutFlatVsLevelNode) {
  HashTree t;
  t.set_threshold(2, 3, 77);
  EXPECT_EQ(t.threshold_flat((1 << 2) - 1 + 3), 77);
  EXPECT_THROW(t.set_threshold(2, 4, 0), CheckError);
  EXPECT_THROW(t.set_threshold(4, 0, 0), CheckError);
}

TEST(HashTree, CompareDepthSemantics) {
  EXPECT_EQ(HashTree::compare_depth(0x80, 0x00), 1);  // MSB differs
  EXPECT_EQ(HashTree::compare_depth(0x40, 0x00), 2);
  EXPECT_EQ(HashTree::compare_depth(0x01, 0x00), 8);  // only LSB differs
  EXPECT_EQ(HashTree::compare_depth(0xAB, 0xAB), 8);  // equality: full ripple
  EXPECT_EQ(HashTree::compare_depth(0xFF, 0x7F), 1);
}

TEST(HashTree, EncodeDepthsConsistentWithEncode) {
  Rng rng(5);
  HashTree t;
  for (int l = 0; l < 4; ++l) t.set_split_dim(l, l);
  for (int l = 0; l < 4; ++l)
    for (int n = 0; n < (1 << l); ++n)
      t.set_threshold(l, n, static_cast<std::uint8_t>(rng.next_int(0, 255)));
  for (int i = 0; i < 200; ++i) {
    std::uint8_t v[4];
    for (auto& b : v) b = static_cast<std::uint8_t>(rng.next_int(0, 255));
    const auto depths = t.encode_depths(v);
    for (int d : depths) {
      EXPECT_GE(d, 1);
      EXPECT_LE(d, 8);
    }
  }
}

// --------------------------------------------------------- tree learner

TEST(TreeLearner, ReducesSseOnClusteredData) {
  Rng rng(7);
  Matrix x = clustered_data(rng, 600, 1, 9, 16, 2.0);
  TreeLearnStats stats;
  learn_hash_tree(x, &stats);
  EXPECT_LT(stats.final_sse, 0.35 * stats.initial_sse);
}

TEST(TreeLearner, PerfectlySeparableDataReachesZeroSse) {
  // 16 well-separated values on dim 2, constant elsewhere: the learner
  // should isolate every cluster (SSE -> 0).
  Matrix x(160, 9, 100.0f);
  for (int i = 0; i < 160; ++i)
    x(i, 2) = static_cast<float>(10 + (i % 16) * 15);
  TreeLearnStats stats;
  const HashTree t = learn_hash_tree(x, &stats);
  EXPECT_NEAR(stats.final_sse, 0.0, 1e-6);
  for (int l = 0; l < 4; ++l) EXPECT_EQ(t.split_dim(l), 2);
}

TEST(TreeLearner, ProducesBalancedLeafUsage) {
  Rng rng(9);
  Matrix x = clustered_data(rng, 1000, 1, 9, 16, 3.0);
  const HashTree t = learn_hash_tree(x);
  std::set<int> leaves;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    std::uint8_t v[9];
    for (int j = 0; j < 9; ++j)
      v[j] = static_cast<std::uint8_t>(std::lround(x(i, j)));
    leaves.insert(t.encode(v));
  }
  EXPECT_GE(leaves.size(), 12u);  // most of the 16 leaves in use
}

TEST(TreeLearner, SingleRowDegenerateInput) {
  Matrix x(1, 9, 42.0f);
  const HashTree t = learn_hash_tree(x);
  std::uint8_t v[9];
  for (auto& b : v) b = 42;
  EXPECT_GE(t.encode(v), 0);
  EXPECT_LT(t.encode(v), 16);
}

// ----------------------------------------------------------- prototypes

TEST(Prototypes, BucketMeansMatchManualAverages) {
  Config cfg;
  cfg.ncodebooks = 1;
  Rng rng(11);
  Matrix x = clustered_data(rng, 400, 1, 9, 8, 1.0);
  const auto q = quantize_activations(x);
  std::vector<HashTree> trees;
  {
    Matrix sub(q.rows, 9);
    for (std::size_t i = 0; i < q.rows; ++i)
      for (int j = 0; j < 9; ++j)
        sub(i, j) = static_cast<float>(q.at(i, j));
    trees.push_back(learn_hash_tree(sub));
  }
  const Prototypes protos = learn_prototypes(cfg, trees, q);
  const auto codes = encode_all(cfg, trees, q);

  // Check leaf 'codes[0]': its prototype equals the mean of its members.
  const int leaf = codes[0];
  std::vector<double> mean(9, 0.0);
  std::size_t count = 0;
  for (std::size_t i = 0; i < q.rows; ++i) {
    if (codes[i] != leaf) continue;
    ++count;
    for (int j = 0; j < 9; ++j)
      mean[j] += static_cast<double>(q.at(i, j)) * q.scale;
  }
  ASSERT_GT(count, 0u);
  for (int j = 0; j < 9; ++j)
    EXPECT_NEAR(protos.row(0, leaf)[j], mean[j] / count, 1e-3);
}

TEST(Prototypes, RidgeRefitLowersReconstructionError) {
  Config cfg;
  cfg.ncodebooks = 2;
  cfg.ridge_lambda = 1.0;
  Rng rng(13);
  Matrix x = clustered_data(rng, 500, 2, 9, 16, 6.0);
  const auto q = quantize_activations(x);
  std::vector<HashTree> trees;
  for (int c = 0; c < 2; ++c) {
    Matrix sub(q.rows, 9);
    for (std::size_t i = 0; i < q.rows; ++i)
      for (int j = 0; j < 9; ++j)
        sub(i, j) = static_cast<float>(q.at(i, 9 * c + j));
    trees.push_back(learn_hash_tree(sub));
  }
  const auto codes = encode_all(cfg, trees, q);

  auto recon_err = [&](const Prototypes& p) {
    double err = 0.0;
    for (std::size_t i = 0; i < q.rows; ++i)
      for (int d = 0; d < 18; ++d) {
        double approx = 0.0;
        for (int c = 0; c < 2; ++c)
          approx += p.row(c, codes[i * 2 + c])[d];
        const double truth = static_cast<double>(q.at(i, d)) * q.scale;
        err += (approx - truth) * (approx - truth);
      }
    return err;
  };

  // With a (near-)zero penalty the joint refit is the unrestricted least
  // squares optimum, which lower-bounds the bucket-means reconstruction.
  cfg.proto_opt = PrototypeOpt::kBucketMeans;
  const double err_means = recon_err(learn_prototypes(cfg, trees, q));
  cfg.proto_opt = PrototypeOpt::kRidgeJoint;
  cfg.ridge_lambda = 1e-4;
  const double err_ridge = recon_err(learn_prototypes(cfg, trees, q));
  EXPECT_LE(err_ridge, err_means * 1.001);
}

// ------------------------------------------------------------------ LUT

TEST(Lut, EntriesAreQuantizedDotProducts) {
  Config cfg;
  cfg.ncodebooks = 2;
  Rng rng(17);
  Matrix x = clustered_data(rng, 300, 2, 9, 8);
  Matrix w = random_weights(rng, 18, 3);
  const Amm amm = Amm::train(cfg, x, w);
  const LutBank& lut = amm.lut();
  EXPECT_EQ(lut.nout, 3);
  EXPECT_EQ(lut.q.size(), 2u * 16 * 3);
  // Reconstruction within half an LSB of the float entry.
  for (int c = 0; c < 2; ++c)
    for (int p = 0; p < 16; ++p)
      for (int o = 0; o < 3; ++o) {
        const std::size_t i = (static_cast<std::size_t>(c) * 16 + p) * 3 + o;
        EXPECT_NEAR(static_cast<double>(lut.q[i]) * lut.scale(o), lut.f[i],
                    lut.scale(o) * 0.5 + 1e-9);
      }
  EXPECT_LT(lut_quantization_error(lut), 0.5);
}

TEST(Lut, TableExtractionMatchesEntries) {
  Config cfg;
  cfg.ncodebooks = 1;
  Rng rng(19);
  Matrix x = clustered_data(rng, 200, 1, 9, 8);
  Matrix w = random_weights(rng, 9, 4);
  const Amm amm = Amm::train(cfg, x, w);
  const auto table = amm.lut().table(0, 2);
  ASSERT_EQ(table.size(), 16u);
  for (int k = 0; k < 16; ++k) EXPECT_EQ(table[k], amm.lut().at(0, k, 2));
}

// ------------------------------------------------------------------ AMM

TEST(Amm, ApproximatesClusteredMatmul) {
  Config cfg;
  cfg.ncodebooks = 4;
  Rng rng(23);
  Matrix x = clustered_data(rng, 800, 4, 9, 16, 3.0);
  Matrix w = random_weights(rng, 36, 8);
  const Amm amm = Amm::train(cfg, x, w);

  Matrix exact;
  gemm(x, w, exact);
  const Matrix approx = amm.apply(x);
  // MADDNESS's shared-split-dim tree cannot always isolate arbitrary
  // 16-cluster structure; ~0.2 relative error on this workload matches
  // what the original paper reports for comparable K/D.
  EXPECT_LT(relative_error(approx, exact), 0.20);
}

TEST(Amm, ExactOnSeparablePrototypeInputs) {
  // Clusters with distinct dim-0 values and zero noise: the shared-dim
  // tree isolates every cluster, every input sits exactly on its
  // prototype, and the only residual is INT8 LUT quantization.
  Config cfg;
  cfg.ncodebooks = 2;
  Rng rng(29);
  // All dims strictly increasing in the cluster index, so any split dim
  // produces contiguous cluster groups and 4 levels isolate all 16.
  Matrix centers(16, 9);
  for (int k = 0; k < 16; ++k)
    for (int j = 0; j < 9; ++j)
      centers(k, j) = static_cast<float>(10 + 14 * k + 3 * j);
  Matrix x(400, 18);
  for (int i = 0; i < 400; ++i)
    for (int c = 0; c < 2; ++c) {
      const int k = rng.next_int(0, 15);
      for (int j = 0; j < 9; ++j) x(i, 9 * c + j) = centers(k, j);
    }
  Matrix w = random_weights(rng, 18, 4);
  const Amm amm = Amm::train(cfg, x, w);
  Matrix exact;
  gemm(x, w, exact);
  const Matrix approx = amm.apply(x);
  EXPECT_LT(relative_error(approx, exact), 0.02);
}

TEST(Amm, Int16PathMatchesDequantizedFloat) {
  Config cfg;
  cfg.ncodebooks = 3;
  Rng rng(31);
  Matrix x = clustered_data(rng, 100, 3, 9, 8);
  Matrix w = random_weights(rng, 27, 5);
  const Amm amm = Amm::train(cfg, x, w);
  const auto q = quantize_activations(x, amm.activation_scale());
  const auto acc = amm.apply_int16(q);
  const Matrix y = amm.dequantize_result(acc, q.rows);
  const Matrix y2 = amm.apply(x);
  EXPECT_LT(frobenius_diff(y, y2), 1e-6);
}

TEST(Amm, EncodeRangeAndDeterminism) {
  Config cfg;
  cfg.ncodebooks = 2;
  Rng rng(37);
  Matrix x = clustered_data(rng, 150, 2, 9, 8);
  const Amm amm = Amm::train(cfg, x, random_weights(rng, 18, 2));
  const auto q = quantize_activations(x, amm.activation_scale());
  const auto codes1 = amm.encode(q);
  const auto codes2 = amm.encode(q);
  EXPECT_EQ(codes1, codes2);
  for (auto c : codes1) EXPECT_LT(c, 16);
}

TEST(Amm, MoreCodebooksReduceError) {
  // Property: finer subspace partitioning (more codebooks over the same
  // total dims) must not increase approximation error on smooth data.
  Rng rng(41);
  Matrix x = clustered_data(rng, 600, 4, 9, 4, 8.0);
  Matrix w = random_weights(rng, 36, 6);
  Matrix exact;
  gemm(x, w, exact);

  Config c2;
  c2.ncodebooks = 2;
  c2.subvec_dim = 18;
  const double e2 = relative_error(Amm::train(c2, x, w).apply(x), exact);
  Config c4;
  c4.ncodebooks = 4;
  c4.subvec_dim = 9;
  const double e4 = relative_error(Amm::train(c4, x, w).apply(x), exact);
  EXPECT_LT(e4, e2 * 1.1);
}

TEST(Amm, ConfigValidation) {
  Config bad;
  bad.ncodebooks = 0;
  EXPECT_THROW(bad.validate(), CheckError);
  // Since the decode accumulates in int32 and clamps once at the end,
  // codebook counts whose worst-case sum exceeds int16 are legal (they
  // saturate instead of wrapping); only implausible counts are rejected.
  Config saturating;
  saturating.ncodebooks = 300;  // 300*127 >= 2^15: clamps, no longer throws
  saturating.validate();
  Config implausible;
  implausible.ncodebooks = 5000;
  EXPECT_THROW(implausible.validate(), CheckError);
  Config wide;
  wide.lut_bits = 9;  // hardware columns are 8 bits
  EXPECT_THROW(wide.validate(), CheckError);
}

class LutPrecisionTest : public ::testing::TestWithParam<int> {};

TEST_P(LutPrecisionTest, EntriesRespectPrecisionAndWork) {
  // Adjustable LUT precision (Table II note 3 context): entries must fit
  // the signed range of the configured bit width, and lower precision
  // must still produce a working (merely coarser) operator.
  const int bits = GetParam();
  Config cfg;
  cfg.ncodebooks = 2;
  cfg.lut_bits = bits;
  Rng rng(57 + static_cast<std::uint64_t>(bits));
  Matrix x = clustered_data(rng, 400, 2, 9, 8, 2.0);
  Matrix w = random_weights(rng, 18, 4);
  const Amm amm = Amm::train(cfg, x, w);

  const int qmax = (1 << (bits - 1)) - 1;
  for (std::int8_t v : amm.lut().q) {
    EXPECT_LE(v, qmax);
    EXPECT_GE(v, -qmax);
  }
  Matrix exact;
  gemm(x, w, exact);
  EXPECT_LT(relative_error(amm.apply(x), exact), bits >= 6 ? 0.25 : 0.5);
}

INSTANTIATE_TEST_SUITE_P(BitWidths, LutPrecisionTest,
                         ::testing::Values(3, 4, 5, 6, 8));

TEST(Amm, LutErrorShrinksWithPrecision) {
  Rng rng(61);
  Matrix x = clustered_data(rng, 500, 2, 9, 8, 2.0);
  Matrix w = random_weights(rng, 18, 4);
  Matrix exact;
  gemm(x, w, exact);
  double prev = 1e9;
  for (int bits : {3, 5, 8}) {
    Config cfg;
    cfg.ncodebooks = 2;
    cfg.lut_bits = bits;
    const double err =
        relative_error(Amm::train(cfg, x, w).apply(x), exact);
    EXPECT_LE(err, prev * 1.05) << "bits=" << bits;
    prev = err;
  }
}

// ---------------------------------------------------------- alt encoders

TEST(AltEncoders, FullSearchFindsNearestPrototype) {
  Matrix protos(3, 2);
  protos(0, 0) = 0;
  protos(0, 1) = 0;
  protos(1, 0) = 10;
  protos(1, 1) = 0;
  protos(2, 0) = 0;
  protos(2, 1) = 10;
  const float v[2] = {9.0f, 1.0f};
  EXPECT_EQ(full_search_encode(protos, v, DistanceKind::kEuclidean), 1);
  const float v2[2] = {1.0f, 9.0f};
  EXPECT_EQ(full_search_encode(protos, v2, DistanceKind::kManhattan), 2);
}

TEST(AltEncoders, EuclideanAssignmentBeatsTreeOnSse) {
  // Full-search Euclidean assignment is the SSE-optimal assignment for
  // fixed prototypes, so it lower-bounds the BDT's assignment SSE.
  Config cfg;
  cfg.ncodebooks = 1;
  Rng rng(43);
  Matrix x = clustered_data(rng, 500, 1, 9, 16, 8.0);
  const auto q = quantize_activations(x);
  Matrix sub(q.rows, 9);
  for (std::size_t i = 0; i < q.rows; ++i)
    for (int j = 0; j < 9; ++j) sub(i, j) = static_cast<float>(q.at(i, j));
  std::vector<HashTree> trees{learn_hash_tree(sub)};
  const Prototypes protos = learn_prototypes(cfg, trees, q);

  // Prototype matrix in the quantized domain for codebook 0.
  Matrix p(16, 9);
  for (int k = 0; k < 16; ++k)
    for (int j = 0; j < 9; ++j)
      p(k, j) = protos.row(0, k)[j] / q.scale;

  const auto tree_codes = encode_all(cfg, trees, q);
  std::vector<std::uint8_t> tc(q.rows);
  for (std::size_t i = 0; i < q.rows; ++i) tc[i] = tree_codes[i];
  const auto full_codes =
      full_search_encode_all(p, sub, DistanceKind::kEuclidean);
  EXPECT_LE(assignment_sse(p, sub, full_codes),
            assignment_sse(p, sub, tc) + 1e-6);
}

TEST(AltEncoders, KmeansReducesSseVsRandomAssignment) {
  Rng rng(47);
  Matrix x = clustered_data(rng, 400, 1, 9, 8, 2.0);
  Rng krng(48);
  const Matrix centroids = kmeans(x, 8, 10, krng);
  const auto codes =
      full_search_encode_all(centroids, x, DistanceKind::kEuclidean);
  const double sse = assignment_sse(centroids, x, codes);
  // Compare against assigning everything to centroid 0.
  std::vector<std::uint8_t> all_zero(x.rows(), 0);
  EXPECT_LT(sse, 0.25 * assignment_sse(centroids, x, all_zero));
}

TEST(AltEncoders, KmeansDeterministicGivenSeed) {
  Rng rng(53);
  Matrix x = clustered_data(rng, 200, 1, 9, 4);
  Rng k1(99), k2(99);
  const Matrix c1 = kmeans(x, 4, 5, k1);
  const Matrix c2 = kmeans(x, 4, 5, k2);
  EXPECT_LT(frobenius_diff(c1, c2), 1e-9);
}

}  // namespace
}  // namespace ssma::maddness
